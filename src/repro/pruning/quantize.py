"""Residual-model quantization (Section III-C).

"When there are many workers, we can quantize each parameter in
residual models with fewer bits to further reduce the memory overhead.
The memory occupied by the residual model is only 10-20% of that by
the original model."

This module implements symmetric uniform quantization of a state dict
to ``bits`` bits per parameter (per-tensor scale), plus the memory
accounting the paper quotes.  Residuals are exactly zero at surviving
positions, so the quantizer preserves zeros exactly and the R2SP
identity degrades only at pruned positions by at most half a step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: Bytes per full-precision parameter (float32 in transit/memory).
FULL_PRECISION_BYTES = 4


@dataclass
class QuantizedState:
    """A quantized state dict: integer codes plus per-tensor scales."""

    bits: int
    codes: Dict[str, np.ndarray]      # signed integers
    scales: Dict[str, float]

    def dequantize(self) -> Dict[str, np.ndarray]:
        """Reconstruct the (lossy) float state dict."""
        return {
            key: self.codes[key].astype(np.float64) * self.scales[key]
            for key in self.codes
        }

    def memory_bytes(self) -> int:
        """Memory footprint of the quantized representation."""
        total_params = sum(code.size for code in self.codes.values())
        payload = (total_params * self.bits + 7) // 8
        scale_overhead = 8 * len(self.scales)
        return payload + scale_overhead


def quantize_array(values: np.ndarray, bits: int) -> Tuple[np.ndarray, float]:
    """Symmetric uniform quantization of one array to ``bits`` bits.

    Returns ``(codes, scale)`` with ``codes`` as ``int16`` and a scale
    that is always finite and strictly positive: an all-zero array gets
    the neutral scale 1.0, and a subnormal peak -- whose naive
    ``peak / levels`` underflows float64 to 0.0 and would turn the
    ``value / scale`` division into inf/NaN garbage codes -- is clamped
    to the smallest positive float64 instead.  Non-finite inputs are
    rejected: quantizing NaN/Inf cannot round-trip meaningfully.
    """
    if not 2 <= bits <= 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    values = np.asarray(values)
    levels = 2 ** (bits - 1) - 1
    peak = float(np.abs(values).max()) if values.size else 0.0
    if not np.isfinite(peak):
        raise ValueError(
            f"cannot quantize non-finite values (peak magnitude {peak})"
        )
    scale = peak / levels if peak > 0 else 1.0
    if scale <= 0.0:
        # peak is subnormal: peak / levels underflowed to exactly 0.0
        scale = float(np.finfo(np.float64).tiny)
    codes = np.clip(
        np.round(values / scale), -levels, levels
    ).astype(np.int16)
    return codes, scale


def quantize_state_dict(state: Dict[str, np.ndarray],
                        bits: int = 8) -> QuantizedState:
    """Symmetric uniform quantization of every tensor in ``state``.

    Each tensor gets a scale ``max|x| / (2**(bits-1) - 1)``; zero maps
    to code 0 exactly (residuals are mostly zeros and stay zeros).
    Degenerate scales are guarded per :func:`quantize_array`.
    """
    if not 2 <= bits <= 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    codes: Dict[str, np.ndarray] = {}
    scales: Dict[str, float] = {}
    for key, value in state.items():
        codes[key], scales[key] = quantize_array(value, bits)
    return QuantizedState(bits=bits, codes=codes, scales=scales)


def quantization_error(state: Dict[str, np.ndarray],
                       quantized: QuantizedState) -> float:
    """Max absolute reconstruction error over all tensors."""
    restored = quantized.dequantize()
    return max(
        float(np.abs(state[key] - restored[key]).max()) for key in state
    ) if state else 0.0


def state_memory_bytes(state: Dict[str, np.ndarray]) -> int:
    """Full-precision memory footprint of a state dict."""
    return sum(value.size for value in state.values()) * FULL_PRECISION_BYTES


def residual_memory_ratio(residual: Dict[str, np.ndarray],
                          global_state: Dict[str, np.ndarray],
                          bits: int = 8) -> Tuple[float, float]:
    """Residual memory as a fraction of the global model's memory.

    Returns ``(dense_ratio, quantized_ratio)``: the dense residual is
    the same size as the model; quantizing to ``bits`` bits brings it
    to roughly ``bits/32`` of it — the paper's 10-20% band at 4-6 bits.
    """
    model_bytes = state_memory_bytes(global_state)
    dense = state_memory_bytes(residual) / model_bytes
    quantized = quantize_state_dict(residual, bits).memory_bytes() / model_bytes
    return dense, quantized
