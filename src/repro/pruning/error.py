"""Pruning error ``Q_n^k`` from the convergence analysis (Section III-D).

``Q_n^k = E[||x^k - x_n^k||^2]`` measures how well the sparse model
approximates the global model after pruning; Theorem 1 shows the
convergence bound loosens linearly in the average pruning error, which
the bandit reward implicitly trades off against completion time.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.pruning.masks import sparse_state_dict
from repro.pruning.plan import PruningPlan


def pruning_error(full_state: Dict[str, np.ndarray],
                  plan: PruningPlan) -> float:
    """Squared l2 distance between the global and sparse models.

    Equals the sum of squares of every pruned parameter value, because
    the sparse model only differs from the global model at pruned
    positions.
    """
    sparse = sparse_state_dict(full_state, plan)
    total = 0.0
    for key, value in full_state.items():
        diff = value - sparse[key]
        total += float((diff ** 2).sum())
    return total


def relative_pruning_error(full_state: Dict[str, np.ndarray],
                           plan: PruningPlan) -> float:
    """Pruning error normalised by the global model's squared norm."""
    norm = sum(float((value ** 2).sum()) for value in full_state.values())
    if norm == 0.0:
        return 0.0
    return pruning_error(full_state, plan) / norm


def state_mass(state: Dict[str, np.ndarray]) -> float:
    """Sum of absolute values across a state dict, in float64.

    A cheap order-independent fingerprint of accumulated mass --
    the checkpoint round-trip tests use it to assert that a restored
    error-feedback memory carries exactly the mass the original did
    (complementing the per-array bitwise comparison).
    """
    return float(sum(
        np.abs(np.asarray(value, dtype=np.float64)).sum()
        for value in state.values()
    ))
