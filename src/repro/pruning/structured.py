"""Distributed structured pruning (Section III-B) and model recovery.

Three operations, all driven by a :class:`~repro.pruning.plan.PruningPlan`:

- :func:`build_pruning_plan` -- walk a global model, score every
  filter/neuron by l1 norm, and decide which units survive at a given
  pruning ratio (the same ratio in every layer, output layer protected);
- :func:`extract_submodel` -- physically construct the compact sub-model
  the PS sends to a worker, copying the surviving weights;
- :func:`recover_state_dict` -- zero-expand a trained sub-model back to
  the global shape (the "model recovery" step R2SP performs before
  aggregation).

The plan walk tracks which channels of the running activation survive,
so downstream layers drop the matching input connections: "when the
filters with their feature maps are pruned, the corresponding channels
of filters in the next layer are also removed [and] the weights of the
subsequent batch normalization layer are removed too."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.blocks import Bottleneck
from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.pruning.importance import (
    conv_filter_scores,
    linear_neuron_scores,
    top_indices,
)
from repro.pruning.plan import (
    KIND_PARAM_NAMES,
    LayerPrune,
    PruningPlan,
    keep_count,
)


@dataclass
class _TraceState:
    """Running activation description during the plan walk."""

    kept: Optional[np.ndarray]  # surviving channel/feature indices, None=all
    channels: int               # full channel/feature count
    spatial: Optional[Tuple[int, int]]  # (H, W), None once flattened

    def kept_indices(self) -> np.ndarray:
        if self.kept is None:
            return np.arange(self.channels, dtype=np.intp)
        return self.kept


def build_pruning_plan(model: Module, ratio: float) -> PruningPlan:
    """Build a structured pruning plan for ``model`` at ``ratio``.

    Every convolution / fully-connected layer is pruned at the same
    ratio (the paper avoids layer-wise hyper-parameters); the final
    classifier layer and residual-block boundary convolutions keep their
    full width.  ``ratio == 0`` yields an identity plan.
    """
    input_shape = getattr(model, "input_shape", None)
    if input_shape is None:
        raise ValueError(
            "model lacks an input_shape attribute; use the model zoo "
            "builders or set it manually"
        )
    if not isinstance(model, Sequential):
        raise TypeError("structured pruning expects a Sequential model")

    plan = PruningPlan(ratio=float(ratio))
    channels, height, width = input_shape
    state = _TraceState(kept=None, channels=channels, spatial=(height, width))

    last_linear = _last_linear_name(model)
    _walk_sequential(model, "", state, ratio, plan, last_linear)
    return plan


def _last_linear_name(model: Sequential) -> str:
    """Qualified name of the final Linear layer (the protected output)."""
    last = None
    for name, module in model.named_modules():
        if isinstance(module, Linear):
            last = name
    if last is None:
        raise ValueError("model has no Linear output layer")
    return last


def _walk_sequential(seq: Sequential, prefix: str, state: _TraceState,
                     ratio: float, plan: PruningPlan,
                     protected: str) -> _TraceState:
    for name, layer in seq.children():
        qual = f"{prefix}.{name}" if prefix else name
        state = _walk_layer(layer, qual, state, ratio, plan, protected)
    return state


def _walk_layer(layer: Module, qual: str, state: _TraceState, ratio: float,
                plan: PruningPlan, protected: str) -> _TraceState:
    if isinstance(layer, Sequential):
        return _walk_sequential(layer, qual, state, ratio, plan, protected)

    if isinstance(layer, Bottleneck):
        return _walk_bottleneck(layer, qual, state, ratio, plan)

    if isinstance(layer, Conv2d):
        kept_in = state.kept_indices()
        keep = keep_count(layer.out_channels, ratio)
        scores = conv_filter_scores(layer.params["weight"])
        kept_out = top_indices(scores, keep)
        plan.add(qual, LayerPrune(
            kind="conv", kept_out=kept_out, out_full=layer.out_channels,
            kept_in=kept_in, in_full=layer.in_channels,
        ))
        h, w = state.spatial
        out_h = F.conv_output_size(h, layer.kernel_size, layer.stride,
                                   layer.padding)
        out_w = F.conv_output_size(w, layer.kernel_size, layer.stride,
                                   layer.padding)
        return _TraceState(kept=kept_out, channels=layer.out_channels,
                           spatial=(out_h, out_w))

    if isinstance(layer, BatchNorm2d):
        kept = state.kept_indices()
        plan.add(qual, LayerPrune(
            kind="bn", kept_out=kept, out_full=layer.num_features,
        ))
        return state

    if isinstance(layer, Linear):
        kept_in = state.kept_indices()
        if qual == protected:
            kept_out = np.arange(layer.out_features, dtype=np.intp)
        else:
            keep = keep_count(layer.out_features, ratio)
            scores = linear_neuron_scores(layer.params["weight"])
            kept_out = top_indices(scores, keep)
        plan.add(qual, LayerPrune(
            kind="linear", kept_out=kept_out, out_full=layer.out_features,
            kept_in=kept_in, in_full=layer.in_features,
        ))
        return _TraceState(kept=kept_out, channels=layer.out_features,
                           spatial=None)

    if isinstance(layer, MaxPool2d):
        h, w = state.spatial
        out_h = F.conv_output_size(h, layer.kernel_size, layer.stride, 0)
        out_w = F.conv_output_size(w, layer.kernel_size, layer.stride, 0)
        return _TraceState(state.kept, state.channels, (out_h, out_w))

    if isinstance(layer, AvgPool2d):
        h, w = state.spatial
        if layer.kernel_size is None:
            return _TraceState(state.kept, state.channels, (1, 1))
        k = layer.kernel_size
        return _TraceState(state.kept, state.channels, (h // k, w // k))

    if isinstance(layer, Flatten):
        h, w = state.spatial
        area = h * w
        flat_full = state.channels * area
        if state.kept is None:
            flat_kept = None
        else:
            flat_kept = (
                state.kept[:, None] * area + np.arange(area)
            ).reshape(-1).astype(np.intp)
        return _TraceState(kept=flat_kept, channels=flat_full, spatial=None)

    if isinstance(layer, (ReLU, Dropout)):
        return state

    raise TypeError(f"cannot plan pruning for layer type {type(layer).__name__}")


def _walk_bottleneck(block: Bottleneck, qual: str, state: _TraceState,
                     ratio: float, plan: PruningPlan) -> _TraceState:
    """Plan a bottleneck block: prune conv1/conv2, keep boundaries full."""
    entry_kept = state.kept_indices()
    if not block.has_projection and entry_kept.size != block.in_channels:
        raise ValueError(
            f"bottleneck {qual!r} has an identity skip but a pruned input; "
            "give the first block of each stage a projection"
        )
    children = dict(block.children())
    mid1_full, mid2_full = block.mid_channels

    conv1 = children["conv1"]
    kept_mid1 = top_indices(conv_filter_scores(conv1.params["weight"]),
                            keep_count(mid1_full, ratio))
    plan.add(f"{qual}.conv1", LayerPrune(
        kind="conv", kept_out=kept_mid1, out_full=mid1_full,
        kept_in=entry_kept, in_full=block.in_channels,
    ))
    plan.add(f"{qual}.bn1", LayerPrune(
        kind="bn", kept_out=kept_mid1, out_full=mid1_full,
    ))

    conv2 = children["conv2"]
    kept_mid2 = top_indices(conv_filter_scores(conv2.params["weight"]),
                            keep_count(mid2_full, ratio))
    plan.add(f"{qual}.conv2", LayerPrune(
        kind="conv", kept_out=kept_mid2, out_full=mid2_full,
        kept_in=kept_mid1, in_full=mid1_full,
    ))
    plan.add(f"{qual}.bn2", LayerPrune(
        kind="bn", kept_out=kept_mid2, out_full=mid2_full,
    ))

    all_out = np.arange(block.out_channels, dtype=np.intp)
    plan.add(f"{qual}.conv3", LayerPrune(
        kind="conv", kept_out=all_out, out_full=block.out_channels,
        kept_in=kept_mid2, in_full=mid2_full,
    ))
    plan.add(f"{qual}.bn3", LayerPrune(
        kind="bn", kept_out=all_out, out_full=block.out_channels,
    ))

    if block.has_projection:
        plan.add(f"{qual}.downsample.conv", LayerPrune(
            kind="conv", kept_out=all_out, out_full=block.out_channels,
            kept_in=entry_kept, in_full=block.in_channels,
        ))
        plan.add(f"{qual}.downsample.bn", LayerPrune(
            kind="bn", kept_out=all_out, out_full=block.out_channels,
        ))

    h, w = state.spatial
    out_h = F.conv_output_size(h, 3, block.stride, 1)
    out_w = F.conv_output_size(w, 3, block.stride, 1)
    return _TraceState(kept=None, channels=block.out_channels,
                       spatial=(out_h, out_w))


# ----------------------------------------------------------------------
# sub-model extraction
# ----------------------------------------------------------------------
def extract_submodel(model: Module, plan: PruningPlan,
                     rng: Optional[np.random.Generator] = None) -> Module:
    """Physically construct the compact sub-model described by ``plan``.

    The returned model has reduced layer widths with the surviving
    weights copied in; it is what the PS transmits to a worker.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    sub = _extract_module(model, "", plan, rng)
    for attr in ("input_shape", "num_classes", "name"):
        if hasattr(model, attr):
            setattr(sub, attr, getattr(model, attr))
    return sub


def _extract_module(module: Module, prefix: str, plan: PruningPlan,
                    rng: np.random.Generator) -> Module:
    if isinstance(module, Sequential):
        children = []
        for name, child in module.children():
            qual = f"{prefix}.{name}" if prefix else name
            children.append((name, _extract_module(child, qual, plan, rng)))
        return Sequential(*children)

    if isinstance(module, Bottleneck):
        return _extract_bottleneck(module, prefix, plan, rng)

    if isinstance(module, Conv2d):
        entry = plan[prefix]
        sub = Conv2d(entry.kept_in.size, entry.kept_out.size,
                     module.kernel_size, stride=module.stride,
                     padding=module.padding, rng=rng)
        sub.requires_input_grad = module.requires_input_grad
        sub.params["weight"] = module.params["weight"][
            np.ix_(entry.kept_out, entry.kept_in)
        ].copy()
        sub.params["bias"] = module.params["bias"][entry.kept_out].copy()
        sub.grads["weight"] = np.zeros_like(sub.params["weight"])
        sub.grads["bias"] = np.zeros_like(sub.params["bias"])
        return sub

    if isinstance(module, Linear):
        entry = plan[prefix]
        sub = Linear(entry.kept_in.size, entry.kept_out.size, rng=rng)
        sub.params["weight"] = module.params["weight"][
            np.ix_(entry.kept_out, entry.kept_in)
        ].copy()
        sub.params["bias"] = module.params["bias"][entry.kept_out].copy()
        sub.grads["weight"] = np.zeros_like(sub.params["weight"])
        sub.grads["bias"] = np.zeros_like(sub.params["bias"])
        return sub

    if isinstance(module, BatchNorm2d):
        entry = plan[prefix]
        sub = BatchNorm2d(entry.kept_out.size, eps=module.eps,
                          momentum=module.momentum)
        for name in ("gamma", "beta"):
            sub.params[name] = module.params[name][entry.kept_out].copy()
            sub.grads[name] = np.zeros_like(sub.params[name])
        for name in ("running_mean", "running_var"):
            sub.buffers[name] = module.buffers[name][entry.kept_out].copy()
        return sub

    if isinstance(module, ReLU):
        return ReLU()
    if isinstance(module, Flatten):
        return Flatten()
    if isinstance(module, MaxPool2d):
        return MaxPool2d(module.kernel_size, module.stride)
    if isinstance(module, AvgPool2d):
        return AvgPool2d(module.kernel_size)
    if isinstance(module, Dropout):
        return Dropout(module.p, rng=np.random.default_rng(rng.integers(2 ** 31)))

    raise TypeError(f"cannot extract layer type {type(module).__name__}")


def _extract_bottleneck(block: Bottleneck, prefix: str, plan: PruningPlan,
                        rng: np.random.Generator) -> Bottleneck:
    conv1_entry = plan[f"{prefix}.conv1"]
    conv2_entry = plan[f"{prefix}.conv2"]
    sub = Bottleneck(
        in_channels=conv1_entry.kept_in.size,
        mid_channels=(conv1_entry.kept_out.size, conv2_entry.kept_out.size),
        out_channels=block.out_channels,
        stride=block.stride,
        project=block.has_projection,
        rng=rng,
    )
    source = dict(block.children())
    for name, child in list(sub.children()):
        qual = f"{prefix}.{name}"
        if isinstance(child, (Conv2d, BatchNorm2d)):
            sub._children[name] = _extract_module(source[name], qual, plan, rng)
        elif isinstance(child, Sequential):  # downsample
            sub._children[name] = _extract_module(source[name], qual, plan, rng)
    return sub


# ----------------------------------------------------------------------
# model recovery (zero expansion)
# ----------------------------------------------------------------------
def recover_state_dict(sub_state: Dict[str, np.ndarray], plan: PruningPlan,
                       template: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Zero-expand a trained sub-model state back to the global shape.

    ``template`` supplies the full shapes (typically the global model's
    ``state_dict()``); its values are never read, only their shapes.
    Entries not covered by the plan are copied through unchanged.
    """
    planned = _planned_param_names(plan)
    recovered: Dict[str, np.ndarray] = {}
    for key, full_value in template.items():
        if key in planned:
            layer_name, suffix = planned[key]
            entry = plan[layer_name]
            recovered[key] = _scatter_param(
                suffix, entry, sub_state[key], full_value.shape
            )
        else:
            sub_value = sub_state[key]
            if sub_value.shape != full_value.shape:
                raise ValueError(
                    f"unplanned entry {key!r} changed shape: "
                    f"{sub_value.shape} vs {full_value.shape}"
                )
            recovered[key] = sub_value.copy()
    return recovered


def _planned_param_names(plan: PruningPlan) -> Dict[str, Tuple[str, str]]:
    """Map full parameter key -> (layer name, param suffix)."""
    return plan.param_names()


def _gate_rows(kept: np.ndarray, hidden_full: int) -> np.ndarray:
    """Row indices owned by ISS components ``kept`` in a stacked-gate array."""
    return np.concatenate(
        [gate * hidden_full + kept for gate in range(4)]
    ).astype(np.intp)


def _kept_index(suffix: str, entry: LayerPrune):
    """Index object selecting the kept (surviving) positions of a full
    parameter — the positions a sub-model parameter maps onto."""
    kind = entry.kind
    if kind in ("conv", "linear") and suffix == "weight":
        return np.ix_(entry.kept_out, entry.kept_in)
    if kind in ("conv", "linear") and suffix == "bias":
        return entry.kept_out
    if kind == "bn":
        return entry.kept_out
    if kind == "lstm":
        rows = _gate_rows(entry.kept_out, entry.out_full)
        if suffix == "w_ih":
            return np.ix_(rows, entry.kept_in)
        if suffix == "w_hh":
            return np.ix_(rows, entry.kept_out)
        return rows  # bias
    if kind == "embedding" and suffix == "weight":
        return (slice(None), entry.kept_out)
    raise ValueError(f"no scatter rule for kind={kind!r} suffix={suffix!r}")


def gather_param(suffix: str, entry: LayerPrune,
                 full_value: np.ndarray) -> np.ndarray:
    """Extract the sub-model view of a full-shape parameter (the exact
    inverse of :func:`scatter_assign_param`).  Always returns a copy."""
    return full_value[_kept_index(suffix, entry)]


def scatter_assign_param(full: np.ndarray, suffix: str, entry: LayerPrune,
                         sub_value: np.ndarray) -> None:
    """Write ``sub_value`` into the kept positions of ``full`` in place;
    every other position is left untouched."""
    full[_kept_index(suffix, entry)] = sub_value


def scatter_add_param(acc: np.ndarray, suffix: str, entry: LayerPrune,
                      sub_value: np.ndarray, weight: float) -> None:
    """Accumulate ``weight * sub_value`` into the kept positions of
    ``acc`` in place — equivalent to ``acc += weight *
    _scatter_param(...)`` without allocating the zero-expanded array."""
    acc[_kept_index(suffix, entry)] += weight * sub_value


def scatter_add_residual(acc: np.ndarray, suffix: str, entry: LayerPrune,
                         full_value: np.ndarray, weight: float) -> None:
    """Accumulate ``weight * full_value`` at every *pruned* position of
    ``acc`` in place.

    For R2SP the residual of a sub-model against the global state is
    exactly the global value at pruned positions and exactly zero at
    kept positions, so this folds the residual model in without
    materialising ``global - sparse`` as a full array.  The pruned set
    of a 2-D weight is the disjoint union (pruned rows x all columns)
    u (kept rows x pruned columns); each position is touched once.
    """
    kind = entry.kind
    out_p = entry.out_pruned
    if kind in ("conv", "linear") and suffix == "weight":
        if out_p.size:
            acc[out_p] += weight * full_value[out_p]
        in_p = entry.in_pruned
        if in_p is not None and in_p.size:
            idx = np.ix_(entry.kept_out, in_p)
            acc[idx] += weight * full_value[idx]
    elif (kind in ("conv", "linear") and suffix == "bias") or kind == "bn":
        if out_p.size:
            acc[out_p] += weight * full_value[out_p]
    elif kind == "lstm":
        rows_p = _gate_rows(out_p, entry.out_full)
        if rows_p.size:
            acc[rows_p] += weight * full_value[rows_p]
        if suffix == "w_ih":
            in_p = entry.in_pruned
            if in_p is not None and in_p.size:
                idx = np.ix_(_gate_rows(entry.kept_out, entry.out_full), in_p)
                acc[idx] += weight * full_value[idx]
        elif suffix == "w_hh":
            if out_p.size:
                idx = np.ix_(_gate_rows(entry.kept_out, entry.out_full), out_p)
                acc[idx] += weight * full_value[idx]
    elif kind == "embedding" and suffix == "weight":
        if out_p.size:
            acc[:, out_p] += weight * full_value[:, out_p]
    else:
        raise ValueError(f"no scatter rule for kind={kind!r} suffix={suffix!r}")


def _scatter_param(suffix: str, entry: LayerPrune, sub_value: np.ndarray,
                   full_shape: Tuple[int, ...]) -> np.ndarray:
    """Place a sub-model parameter into a zero array of the full shape."""
    full = np.zeros(full_shape, dtype=sub_value.dtype)
    scatter_assign_param(full, suffix, entry, sub_value)
    return full
