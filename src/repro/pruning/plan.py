"""Pruning plan: the per-worker index record kept by the parameter server.

A :class:`PruningPlan` says, for every affected layer, which output
units (filters / neurons / hidden units) and which input connections
survive.  It is exactly the "binary vector storing the indexes of the
remaining parameters" that Section III-C describes, in index form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

#: Recognised layer kinds; each has its own scatter rule during recovery.
LAYER_KINDS = ("conv", "linear", "bn", "lstm", "embedding")

#: Parameter names owned by each layer kind (used by recovery/scatter).
KIND_PARAM_NAMES = {
    "conv": ("weight", "bias"),
    "linear": ("weight", "bias"),
    "bn": ("gamma", "beta", "running_mean", "running_var"),
    "lstm": ("w_ih", "w_hh", "bias"),
    "embedding": ("weight",),
}


@dataclass
class LayerPrune:
    """Kept indices for one layer.

    Attributes
    ----------
    kind:
        One of :data:`LAYER_KINDS`.
    kept_out:
        Sorted indices of surviving output units (filters, neurons,
        hidden units, or BN channels).
    kept_in:
        Sorted indices of surviving input connections (``None`` for
        layers without an input axis, e.g. batch norm).
    out_full / in_full:
        Full (unpruned) sizes of the respective axes, needed to allocate
        zero-expanded arrays during recovery.
    """

    kind: str
    kept_out: np.ndarray
    out_full: int
    kept_in: Optional[np.ndarray] = None
    in_full: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r}")
        self.kept_out = np.asarray(self.kept_out, dtype=np.intp)
        if self.kept_in is not None:
            self.kept_in = np.asarray(self.kept_in, dtype=np.intp)

    @property
    def out_pruned(self) -> np.ndarray:
        """Indices of removed output units."""
        mask = np.ones(self.out_full, dtype=bool)
        mask[self.kept_out] = False
        return np.flatnonzero(mask)

    @property
    def in_pruned(self) -> Optional[np.ndarray]:
        """Indices of removed input connections (``None`` when the layer
        has no input axis)."""
        if self.kept_in is None:
            return None
        mask = np.ones(self.in_full, dtype=bool)
        mask[self.kept_in] = False
        return np.flatnonzero(mask)

    def keeps_everything(self) -> bool:
        """True when no unit of this layer was removed."""
        out_all = self.kept_out.size == self.out_full
        in_all = self.kept_in is None or self.kept_in.size == self.in_full
        return out_all and in_all


@dataclass
class PruningPlan:
    """Mapping of layer qualified name -> :class:`LayerPrune`.

    ``ratio`` records the pruning ratio the plan was built from, for
    bookkeeping and reward computation.
    """

    ratio: float
    layers: Dict[str, LayerPrune] = field(default_factory=dict)
    #: lazily built full-parameter-key -> (layer, suffix) mapping; reset
    #: whenever a layer is added
    _param_names: Optional[Dict[str, Tuple[str, str]]] = field(
        default=None, init=False, repr=False, compare=False,
    )

    def __getitem__(self, name: str) -> LayerPrune:
        return self.layers[name]

    def __contains__(self, name: str) -> bool:
        return name in self.layers

    def get(self, name: str) -> Optional[LayerPrune]:
        return self.layers.get(name)

    def items(self) -> Iterator[Tuple[str, LayerPrune]]:
        return iter(self.layers.items())

    def add(self, name: str, entry: LayerPrune) -> None:
        if name in self.layers:
            raise ValueError(f"duplicate plan entry for layer {name!r}")
        self.layers[name] = entry
        self._param_names = None

    def param_names(self) -> Dict[str, Tuple[str, str]]:
        """Full-state-dict key -> ``(layer_name, param_suffix)`` for every
        parameter this plan touches.  Built once and cached; the mapping is
        pure index bookkeeping so it never depends on model values.
        """
        if self._param_names is None:
            mapping: Dict[str, Tuple[str, str]] = {}
            for layer_name, entry in self.layers.items():
                for suffix in KIND_PARAM_NAMES[entry.kind]:
                    mapping[f"{layer_name}.{suffix}"] = (layer_name, suffix)
            self._param_names = mapping
        return self._param_names

    def is_identity(self) -> bool:
        """True when the plan removes nothing (ratio effectively 0)."""
        return all(entry.keeps_everything() for entry in self.layers.values())


def plan_signature(plan: PruningPlan) -> Tuple:
    """Architecture signature of a plan: the kept sizes per layer.

    Two plans with the same signature produce structurally identical
    sub-models, so callers may share templates, cohort buckets and
    child-side caches across them.  Pure index bookkeeping -- never
    depends on model values.
    """
    return tuple(
        (name, entry.kind, int(entry.out_full), int(entry.kept_out.size),
         -1 if entry.in_full is None else int(entry.in_full),
         -1 if entry.kept_in is None else int(entry.kept_in.size))
        for name, entry in plan.items()
    )


def plan_signature_digest(plan: PruningPlan) -> str:
    """Short stable hex digest of :func:`plan_signature`.

    The tuple form is exact but unwieldy as a metric label or span
    attribute; the digest is the observability-friendly spelling (12
    hex chars of SHA-1 over the signature's repr).
    """
    import hashlib

    raw = repr(plan_signature(plan)).encode("utf-8")
    return hashlib.sha1(raw).hexdigest()[:12]


def keep_count(full: int, ratio: float) -> int:
    """Units kept in a layer of size ``full`` at pruning ratio ``ratio``.

    The paper removes the lowest-scoring fraction ``ratio`` per layer;
    at least one unit always survives.
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"pruning ratio must be in [0, 1), got {ratio}")
    return max(1, full - int(np.floor(full * ratio)))
