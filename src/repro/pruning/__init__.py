"""Structured model pruning and the R2SP residual machinery.

This subpackage implements Section III-B/C of the paper:

- :mod:`repro.pruning.importance` -- l1-norm importance scores for
  convolution filters, fully-connected neurons, and LSTM ISS components;
- :mod:`repro.pruning.plan` -- the :class:`PruningPlan` index record the
  parameter server stores per worker ("we can use a binary vector to
  store the indexes");
- :mod:`repro.pruning.structured` -- distributed structured pruning:
  building a plan from a global model at a pruning ratio, physically
  extracting the sub-model, and zero-expanding a trained sub-model back
  to the global shape (model recovery);
- :mod:`repro.pruning.masks` -- sparse models (pruned positions zeroed)
  and residual models (global minus sparse), the two auxiliary objects
  of R2SP;
- :mod:`repro.pruning.iss` -- Intrinsic Sparse Structure pruning for the
  LSTM language model (Section VI);
- :mod:`repro.pruning.error` -- the pruning error ``Q_n^k`` from the
  convergence analysis.
"""

from repro.pruning.plan import (
    LayerPrune,
    PruningPlan,
    plan_signature,
    plan_signature_digest,
)
from repro.pruning.importance import (
    conv_filter_scores,
    linear_neuron_scores,
    lstm_iss_scores,
)
from repro.pruning.structured import (
    build_pruning_plan,
    extract_submodel,
    gather_param,
    recover_state_dict,
    scatter_add_param,
    scatter_add_residual,
    scatter_assign_param,
)
from repro.pruning.masks import residual_state_dict, sparse_state_dict
from repro.pruning.iss import build_iss_plan, extract_iss_submodel
from repro.pruning.error import pruning_error

__all__ = [
    "LayerPrune",
    "PruningPlan",
    "conv_filter_scores",
    "linear_neuron_scores",
    "lstm_iss_scores",
    "build_pruning_plan",
    "extract_submodel",
    "gather_param",
    "recover_state_dict",
    "scatter_add_param",
    "scatter_add_residual",
    "scatter_assign_param",
    "sparse_state_dict",
    "residual_state_dict",
    "build_iss_plan",
    "extract_iss_submodel",
    "plan_signature",
    "plan_signature_digest",
    "pruning_error",
]
