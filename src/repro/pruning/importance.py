"""l1-norm importance scores (Section III-B).

"For each filter in the convolutional layers, we calculate the sum of
the absolute kernel weights as the filter's score. [...] for each neuron
in the fully-connected layers, we calculate the sum of the absolute
weights that the neuron is connected to as the neuron's score."
"""

from __future__ import annotations

import numpy as np


def conv_filter_scores(weight: np.ndarray) -> np.ndarray:
    """Per-filter l1 scores for a ``(out, in, kh, kw)`` conv weight."""
    if weight.ndim != 4:
        raise ValueError(f"expected 4-D conv weight, got shape {weight.shape}")
    return np.abs(weight).sum(axis=(1, 2, 3))


def linear_neuron_scores(weight: np.ndarray) -> np.ndarray:
    """Per-output-neuron l1 scores for a ``(out, in)`` linear weight."""
    if weight.ndim != 2:
        raise ValueError(f"expected 2-D linear weight, got shape {weight.shape}")
    return np.abs(weight).sum(axis=1)


def lstm_iss_scores(w_ih: np.ndarray, w_hh: np.ndarray) -> np.ndarray:
    """Per-hidden-unit l1 scores over an LSTM's ISS components.

    ISS component ``j`` owns rows ``{j, H+j, 2H+j, 3H+j}`` of ``w_ih``
    and ``w_hh`` plus column ``j`` of ``w_hh`` (Wen et al., 2017); its
    score sums absolute weights over all of those slices.
    """
    hidden = w_hh.shape[1]
    if w_ih.shape[0] != 4 * hidden or w_hh.shape[0] != 4 * hidden:
        raise ValueError(
            f"inconsistent LSTM shapes: w_ih {w_ih.shape}, w_hh {w_hh.shape}"
        )
    row_scores = np.zeros(hidden)
    for gate in range(4):
        block_ih = w_ih[gate * hidden:(gate + 1) * hidden]
        block_hh = w_hh[gate * hidden:(gate + 1) * hidden]
        row_scores += np.abs(block_ih).sum(axis=1)
        row_scores += np.abs(block_hh).sum(axis=1)
    col_scores = np.abs(w_hh).sum(axis=0)
    return row_scores + col_scores


def top_indices(scores: np.ndarray, keep: int) -> np.ndarray:
    """Sorted indices of the ``keep`` highest-scoring units.

    Ties break toward lower indices (stable), so plans are deterministic.
    """
    if keep <= 0:
        raise ValueError(f"must keep at least one unit, got keep={keep}")
    if keep >= scores.size:
        return np.arange(scores.size, dtype=np.intp)
    order = np.argsort(-scores, kind="stable")[:keep]
    return np.sort(order).astype(np.intp)
