"""Intrinsic Sparse Structure (ISS) pruning for LSTMs (Section VI).

"Following the intrinsic sparse structure method, we remove weights
associated with one component of intrinsic sparse structures, and then
the sizes/dimensions of basic structures are simultaneously reduced by
one."  An ISS component couples hidden unit ``j`` across all four gate
blocks of a layer, the recurrent column ``j``, and the matching input
column of the *next* layer, so removing it keeps the RNN schematic
dense but smaller.

The plans produced here reuse :class:`~repro.pruning.plan.PruningPlan`
with ``kind='lstm'`` entries, so R2SP recovery and the sparse/residual
machinery in :mod:`repro.pruning.masks` apply unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.lstm_lm import _SeqLinear
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Sequential
from repro.nn.recurrent import LSTM, Embedding
from repro.pruning.importance import lstm_iss_scores, top_indices
from repro.pruning.plan import LayerPrune, PruningPlan, keep_count
from repro.pruning.structured import _gate_rows


def build_iss_plan(model: Sequential, ratio: float) -> PruningPlan:
    """Plan ISS pruning of an LSTM language model at ``ratio``.

    Hidden units of every LSTM layer are scored and pruned; the
    embedding table and the decoder's output vocabulary stay intact
    (their *input* connections follow the surviving hidden units).
    """
    plan = PruningPlan(ratio=float(ratio))
    kept_prev: Optional[np.ndarray] = None
    prev_full: Optional[int] = None

    for name, layer in model.children():
        if isinstance(layer, Embedding):
            kept_prev = np.arange(layer.embedding_dim, dtype=np.intp)
            prev_full = layer.embedding_dim
        elif isinstance(layer, LSTM):
            if kept_prev is None:
                kept_prev = np.arange(layer.input_size, dtype=np.intp)
                prev_full = layer.input_size
            scores = lstm_iss_scores(layer.params["w_ih"], layer.params["w_hh"])
            kept = top_indices(scores, keep_count(layer.hidden_size, ratio))
            plan.add(name, LayerPrune(
                kind="lstm", kept_out=kept, out_full=layer.hidden_size,
                kept_in=kept_prev, in_full=prev_full,
            ))
            kept_prev = kept
            prev_full = layer.hidden_size
        elif isinstance(layer, _SeqLinear):
            inner = layer.linear
            plan.add(f"{name}.linear", LayerPrune(
                kind="linear",
                kept_out=np.arange(inner.out_features, dtype=np.intp),
                out_full=inner.out_features,
                kept_in=kept_prev if kept_prev is not None
                else np.arange(inner.in_features, dtype=np.intp),
                in_full=prev_full if prev_full is not None
                else inner.in_features,
            ))
        elif isinstance(layer, Dropout):
            continue
        else:
            raise TypeError(
                f"ISS pruning cannot handle layer {type(layer).__name__}"
            )
    return plan


def extract_iss_submodel(model: Sequential, plan: PruningPlan,
                         rng: Optional[np.random.Generator] = None) -> Sequential:
    """Physically construct the ISS-pruned language model."""
    rng = rng if rng is not None else np.random.default_rng(0)
    children = []
    for name, layer in model.children():
        children.append((name, _extract_layer(name, layer, plan, rng)))
    sub = Sequential(*children)
    for attr in ("vocab_size", "embedding_dim", "hidden_size", "name"):
        if hasattr(model, attr):
            setattr(sub, attr, getattr(model, attr))
    return sub


def _extract_layer(name: str, layer: Module, plan: PruningPlan,
                   rng: np.random.Generator) -> Module:
    if isinstance(layer, Embedding):
        sub = Embedding(layer.vocab_size, layer.embedding_dim, rng=rng)
        sub.params["weight"] = layer.params["weight"].copy()
        sub.grads["weight"] = np.zeros_like(sub.params["weight"])
        return sub

    if isinstance(layer, LSTM):
        entry = plan[name]
        sub = LSTM(entry.kept_in.size, entry.kept_out.size, rng=rng)
        rows = _gate_rows(entry.kept_out, entry.out_full)
        sub.params["w_ih"] = layer.params["w_ih"][
            np.ix_(rows, entry.kept_in)
        ].copy()
        sub.params["w_hh"] = layer.params["w_hh"][
            np.ix_(rows, entry.kept_out)
        ].copy()
        sub.params["bias"] = layer.params["bias"][rows].copy()
        for key in sub.params:
            sub.grads[key] = np.zeros_like(sub.params[key])
        return sub

    if isinstance(layer, _SeqLinear):
        entry = plan[f"{name}.linear"]
        sub = _SeqLinear(entry.kept_in.size, entry.kept_out.size, rng=rng)
        inner_src: Linear = layer.linear
        inner_dst: Linear = sub.linear
        inner_dst.params["weight"] = inner_src.params["weight"][
            np.ix_(entry.kept_out, entry.kept_in)
        ].copy()
        inner_dst.params["bias"] = inner_src.params["bias"][entry.kept_out].copy()
        for key in inner_dst.params:
            inner_dst.grads[key] = np.zeros_like(inner_dst.params[key])
        return sub

    if isinstance(layer, Dropout):
        return Dropout(layer.p, rng=np.random.default_rng(rng.integers(2 ** 31)))

    raise TypeError(f"ISS extraction cannot handle layer {type(layer).__name__}")
