"""Sparse and residual models (the R2SP auxiliary objects, Section III-C).

- The **sparse model** has the global structure with every logically
  pruned position set to zero.
- The **residual model** is ``global - sparse``: zeros at surviving
  positions, the original global values at pruned positions.

R2SP's aggregation identity: ``recovered + residual`` equals the trained
values at surviving positions and the untouched global values at pruned
positions, so "each model parameter has a chance to be trained".
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.pruning.plan import LayerPrune, PruningPlan
from repro.pruning.structured import _gate_rows, _planned_param_names


def keep_mask(suffix: str, entry: LayerPrune,
              shape: Tuple[int, ...]) -> np.ndarray:
    """Boolean mask of surviving positions for one parameter array.

    Public so the verification subsystem can reason about which
    positions of a global array a plan dispatches versus leaves to the
    residual model.
    """
    mask = np.zeros(shape, dtype=bool)
    kind = entry.kind
    if kind in ("conv", "linear") and suffix == "weight":
        mask[np.ix_(entry.kept_out, entry.kept_in)] = True
    elif kind in ("conv", "linear") and suffix == "bias":
        mask[entry.kept_out] = True
    elif kind == "bn":
        mask[entry.kept_out] = True
    elif kind == "lstm":
        rows = _gate_rows(entry.kept_out, entry.out_full)
        if suffix == "w_ih":
            mask[np.ix_(rows, entry.kept_in)] = True
        elif suffix == "w_hh":
            mask[np.ix_(rows, entry.kept_out)] = True
        else:
            mask[rows] = True
    elif kind == "embedding" and suffix == "weight":
        mask[:, entry.kept_out] = True
    else:
        raise ValueError(f"no mask rule for kind={kind!r} suffix={suffix!r}")
    return mask


#: pre-publication name, kept for in-tree callers
_keep_mask = keep_mask


def sparse_state_dict(full_state: Dict[str, np.ndarray],
                      plan: PruningPlan) -> Dict[str, np.ndarray]:
    """The sparse model: global values with pruned positions zeroed."""
    planned = _planned_param_names(plan)
    sparse: Dict[str, np.ndarray] = {}
    for key, value in full_state.items():
        if key in planned:
            layer_name, suffix = planned[key]
            mask = _keep_mask(suffix, plan[layer_name], value.shape)
            sparse[key] = np.where(mask, value, 0.0)
        else:
            sparse[key] = value.copy()
    return sparse


def residual_state_dict(full_state: Dict[str, np.ndarray],
                        plan: PruningPlan) -> Dict[str, np.ndarray]:
    """The residual model ``global - sparse`` (Eq. before (2))."""
    sparse = sparse_state_dict(full_state, plan)
    return {key: full_state[key] - sparse[key] for key in full_state}
