"""Synthetic class-prototype image datasets.

Each class gets a smooth random prototype image (a low-resolution
Gaussian field upsampled bilinearly); samples are the prototype plus
per-sample noise and a small random translation.  The resulting
datasets are genuinely learnable (not trivially separable at high
noise), support exact label-skew partitioning, and match the shapes and
class counts of the paper's datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.dtype import get_default_dtype


@dataclass
class ImageDataset:
    """A supervised image dataset split into train and test parts."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_x.shape[1:])

    def __post_init__(self) -> None:
        if self.train_x.shape[0] != self.train_y.shape[0]:
            raise ValueError("train_x / train_y length mismatch")
        if self.test_x.shape[0] != self.test_y.shape[0]:
            raise ValueError("test_x / test_y length mismatch")


def _smooth_prototype(shape: Tuple[int, int, int], rng: np.random.Generator,
                      coarse: int = 7) -> np.ndarray:
    """A smooth random image: coarse Gaussian field, bilinear upsample."""
    channels, height, width = shape
    field = rng.normal(size=(channels, coarse, coarse))
    ys = np.linspace(0, coarse - 1, height)
    xs = np.linspace(0, coarse - 1, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, coarse - 1)
    x1 = np.minimum(x0 + 1, coarse - 1)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    top = field[:, y0][:, :, x0] * (1 - wx) + field[:, y0][:, :, x1] * wx
    bottom = field[:, y1][:, :, x0] * (1 - wx) + field[:, y1][:, :, x1] * wx
    return top * (1 - wy) + bottom * wy


def _shift(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate an image with zero padding (cheap augmentation)."""
    out = np.zeros_like(image)
    _, height, width = image.shape
    ys_src = slice(max(0, -dy), min(height, height - dy))
    xs_src = slice(max(0, -dx), min(width, width - dx))
    ys_dst = slice(max(0, dy), min(height, height + dy))
    xs_dst = slice(max(0, dx), min(width, width + dx))
    out[:, ys_dst, xs_dst] = image[:, ys_src, xs_src]
    return out


def make_prototype_dataset(name: str, num_classes: int,
                           input_shape: Tuple[int, int, int],
                           train_per_class: int, test_per_class: int,
                           noise: float = 0.6, max_shift: int = 2,
                           rng: Optional[np.random.Generator] = None) -> ImageDataset:
    """Generic prototype-dataset generator; the dataset factories below
    call this with the per-dataset shapes and class counts."""
    rng = rng if rng is not None else np.random.default_rng(0)
    prototypes = [
        _smooth_prototype(input_shape, rng) for _ in range(num_classes)
    ]

    def _make_split(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        total = per_class * num_classes
        xs = np.empty((total,) + input_shape)
        ys = np.empty(total, dtype=np.int64)
        index = 0
        for label, proto in enumerate(prototypes):
            for _ in range(per_class):
                dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
                sample = _shift(proto, int(dy), int(dx))
                sample = sample + rng.normal(0.0, noise, size=input_shape)
                xs[index] = sample
                ys[index] = label
                index += 1
        order = rng.permutation(total)
        return xs[order], ys[order]

    dtype = get_default_dtype()
    train_x, train_y = _make_split(train_per_class)
    test_x, test_y = _make_split(test_per_class)
    train_x = train_x.astype(dtype)
    test_x = test_x.astype(dtype)
    return ImageDataset(name, train_x, train_y, test_x, test_y, num_classes)


def make_synthetic_mnist(train_per_class: int = 200, test_per_class: int = 50,
                         rng: Optional[np.random.Generator] = None,
                         noise: float = 0.6) -> ImageDataset:
    """28x28 greyscale, 10 classes (MNIST stand-in)."""
    return make_prototype_dataset("mnist", 10, (1, 28, 28),
                                  train_per_class, test_per_class,
                                  noise=noise, rng=rng)


def make_synthetic_cifar10(train_per_class: int = 200, test_per_class: int = 50,
                           rng: Optional[np.random.Generator] = None,
                           noise: float = 0.8) -> ImageDataset:
    """32x32 RGB, 10 classes (CIFAR-10 stand-in; noisier than MNIST so
    the relative task difficulty ordering of the paper is preserved)."""
    return make_prototype_dataset("cifar10", 10, (3, 32, 32),
                                  train_per_class, test_per_class,
                                  noise=noise, rng=rng)


def make_synthetic_emnist(train_per_class: int = 40, test_per_class: int = 10,
                          num_classes: int = 62,
                          rng: Optional[np.random.Generator] = None,
                          noise: float = 0.7) -> ImageDataset:
    """28x28 greyscale, 62 classes (EMNIST stand-in)."""
    return make_prototype_dataset("emnist", num_classes, (1, 28, 28),
                                  train_per_class, test_per_class,
                                  noise=noise, rng=rng)


def make_synthetic_tiny_imagenet(train_per_class: int = 10,
                                 test_per_class: int = 3,
                                 num_classes: int = 200,
                                 rng: Optional[np.random.Generator] = None,
                                 noise: float = 0.9) -> ImageDataset:
    """64x64 RGB, 200 classes (Tiny-ImageNet stand-in; defaults are
    scaled down from 500/50 per class for CPU tractability)."""
    return make_prototype_dataset("tiny_imagenet", num_classes, (3, 64, 64),
                                  train_per_class, test_per_class,
                                  noise=noise, rng=rng)
