"""Mini-batch iteration over a worker's local shard."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class BatchIterator:
    """Endless shuffled mini-batches from a fixed (x, y) shard.

    Workers draw ``tau`` batches per round; the iterator reshuffles
    whenever an epoch is exhausted, using its own generator so every
    worker's sampling is independent and reproducible.
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray,
                 batch_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs / targets length mismatch")
        if inputs.shape[0] == 0:
            raise ValueError("cannot iterate over an empty shard")
        self.inputs = inputs
        self.targets = targets
        self.batch_size = min(batch_size, inputs.shape[0])
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._order = self.rng.permutation(inputs.shape[0])
        self._cursor = 0

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """The next mini-batch, reshuffling at epoch boundaries."""
        if self._cursor + self.batch_size > self._order.shape[0]:
            self._order = self.rng.permutation(self.inputs.shape[0])
            self._cursor = 0
        picked = self._order[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.inputs[picked], self.targets[picked]

    def batches(self, count: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``count`` consecutive mini-batches."""
        for _ in range(count):
            yield self.next_batch()
