"""Datasets and partitioners.

The paper evaluates on MNIST, CIFAR-10, EMNIST, Tiny-ImageNet and Penn
TreeBank; none can be downloaded offline, so :mod:`repro.data.synthetic`
generates class-prototype image datasets with the same shapes and class
counts, and :mod:`repro.data.text` generates a Markov-chain corpus for
the language-model task (see DESIGN.md, substitution table).

:mod:`repro.data.partition` implements both of the paper's non-IID
constructions: label-skew ("y% of the data on each worker belong to one
label") for MNIST/CIFAR-10, and missing classes ("each worker lacks y
classes") for EMNIST/Tiny-ImageNet.
"""

from repro.data.synthetic import (
    ImageDataset,
    make_synthetic_cifar10,
    make_synthetic_emnist,
    make_synthetic_mnist,
    make_synthetic_tiny_imagenet,
)
from repro.data.text import TextDataset, make_synthetic_ptb
from repro.data.partition import (
    iid_partition,
    label_skew_partition,
    missing_classes_partition,
    partition_dataset,
)
from repro.data.loader import BatchIterator

__all__ = [
    "ImageDataset",
    "make_synthetic_mnist",
    "make_synthetic_cifar10",
    "make_synthetic_emnist",
    "make_synthetic_tiny_imagenet",
    "TextDataset",
    "make_synthetic_ptb",
    "iid_partition",
    "label_skew_partition",
    "missing_classes_partition",
    "partition_dataset",
    "BatchIterator",
]
