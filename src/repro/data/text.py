"""Synthetic language-model corpus (Penn TreeBank stand-in).

A first-order Markov chain over a Zipf-distributed vocabulary: each
token's successor distribution concentrates on a few likely followers,
so the corpus has real sequential structure an LSTM can learn (its
perplexity falls well below the uniform baseline) while remaining fully
offline and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class TextDataset:
    """Token-id streams for language modelling."""

    name: str
    vocab_size: int
    train_tokens: np.ndarray
    valid_tokens: np.ndarray
    test_tokens: np.ndarray

    def batchify(self, split: str, seq_len: int,
                 batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Shape a token stream into ``(num_batches, T, B)`` id tensors.

        Returns ``(inputs, targets)`` where targets are inputs shifted
        by one token, the standard next-token objective.
        """
        stream = {
            "train": self.train_tokens,
            "valid": self.valid_tokens,
            "test": self.test_tokens,
        }[split]
        usable = (stream.shape[0] - 1) // (seq_len * batch_size)
        if usable == 0:
            raise ValueError(
                f"split {split!r} too short for seq_len={seq_len}, "
                f"batch_size={batch_size}"
            )
        count = usable * seq_len * batch_size
        inputs = stream[:count].reshape(usable, batch_size, seq_len)
        targets = stream[1:count + 1].reshape(usable, batch_size, seq_len)
        # (num_batches, T, B) layout for the LSTM layers
        return inputs.transpose(0, 2, 1), targets.transpose(0, 2, 1)


def make_synthetic_ptb(vocab_size: int = 500, train_tokens: int = 40_000,
                       valid_tokens: int = 4_000, test_tokens: int = 4_000,
                       branching: int = 8,
                       rng: Optional[np.random.Generator] = None) -> TextDataset:
    """Generate the Markov-chain corpus.

    Parameters
    ----------
    branching:
        Number of likely successors per token; smaller values make the
        corpus more predictable (lower achievable perplexity).
    """
    rng = rng if rng is not None else np.random.default_rng(0)

    # Zipf-ish unigram prior over the vocabulary.
    ranks = np.arange(1, vocab_size + 1)
    unigram = (1.0 / ranks) / (1.0 / ranks).sum()

    # Per-token successor sets drawn from the unigram prior.
    successors = np.empty((vocab_size, branching), dtype=np.int64)
    weights = np.empty((vocab_size, branching))
    for token in range(vocab_size):
        successors[token] = rng.choice(vocab_size, size=branching,
                                       replace=False, p=unigram)
        raw = rng.dirichlet(np.ones(branching) * 0.5)
        weights[token] = raw

    def _generate(length: int) -> np.ndarray:
        tokens = np.empty(length, dtype=np.int64)
        current = int(rng.choice(vocab_size, p=unigram))
        for index in range(length):
            tokens[index] = current
            current = int(
                rng.choice(successors[current], p=weights[current])
            )
        return tokens

    return TextDataset(
        name="ptb",
        vocab_size=vocab_size,
        train_tokens=_generate(train_tokens),
        valid_tokens=_generate(valid_tokens),
        test_tokens=_generate(test_tokens),
    )
