"""Data partitioning across workers: IID and the paper's non-IID levels.

Section V-F defines non-IIDness by a level ``y``:

- MNIST / CIFAR-10: "y% of the data on each worker belong to one label
  and the remaining data belong to other labels"; y = 0 is IID.
- EMNIST / Tiny-ImageNet: "each worker lacks y classes of data samples".
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.synthetic import ImageDataset


def iid_partition(labels: np.ndarray, num_workers: int,
                  rng: np.random.Generator) -> List[np.ndarray]:
    """Uniformly random equal-size split of sample indices."""
    if num_workers <= 0:
        raise ValueError(f"need at least one worker, got {num_workers}")
    order = rng.permutation(labels.shape[0])
    return [np.sort(part) for part in np.array_split(order, num_workers)]


def label_skew_partition(labels: np.ndarray, num_workers: int, skew_percent: float,
                         rng: np.random.Generator) -> List[np.ndarray]:
    """Label-skew non-IID split (MNIST / CIFAR-10 construction).

    Each worker is assigned a dominant label (round-robin over classes);
    ``skew_percent`` of its samples come from that label, the rest are
    drawn uniformly from the other classes.
    """
    if not 0.0 <= skew_percent <= 100.0:
        raise ValueError(f"skew must be in [0, 100], got {skew_percent}")
    if skew_percent == 0.0:
        return iid_partition(labels, num_workers, rng)

    classes = np.unique(labels)
    pools: Dict[int, List[int]] = {
        int(c): list(rng.permutation(np.flatnonzero(labels == c)))
        for c in classes
    }
    per_worker = labels.shape[0] // num_workers
    dominant_count = int(round(per_worker * skew_percent / 100.0))

    parts: List[List[int]] = [[] for _ in range(num_workers)]
    # dominant-label pass
    for worker in range(num_workers):
        dominant = int(classes[worker % classes.size])
        take = min(dominant_count, len(pools[dominant]))
        parts[worker].extend(pools[dominant][:take])
        del pools[dominant][:take]
    # fill the remainder uniformly from whatever is left
    leftovers = [idx for pool in pools.values() for idx in pool]
    leftovers = list(rng.permutation(leftovers))
    for worker in range(num_workers):
        need = per_worker - len(parts[worker])
        if need > 0:
            parts[worker].extend(leftovers[:need])
            del leftovers[:need]
    return [np.sort(np.asarray(part, dtype=np.intp)) for part in parts]


def missing_classes_partition(labels: np.ndarray, num_workers: int,
                              missing: int,
                              rng: np.random.Generator) -> List[np.ndarray]:
    """Missing-classes non-IID split (EMNIST / Tiny-ImageNet construction).

    Each worker lacks ``missing`` classes (chosen independently at
    random); its samples are drawn from the remaining classes only.
    """
    classes = np.unique(labels)
    if missing < 0 or missing >= classes.size:
        raise ValueError(
            f"missing must be in [0, {classes.size - 1}], got {missing}"
        )
    if missing == 0:
        return iid_partition(labels, num_workers, rng)

    by_class = {int(c): np.flatnonzero(labels == c) for c in classes}
    per_worker = labels.shape[0] // num_workers
    parts: List[np.ndarray] = []
    for _ in range(num_workers):
        banned = set(
            int(c) for c in rng.choice(classes, size=missing, replace=False)
        )
        allowed = np.concatenate(
            [by_class[int(c)] for c in classes if int(c) not in banned]
        )
        chosen = rng.choice(allowed, size=min(per_worker, allowed.size),
                            replace=False)
        parts.append(np.sort(chosen.astype(np.intp)))
    return parts


def partition_dataset(dataset: ImageDataset, num_workers: int,
                      rng: np.random.Generator,
                      non_iid_level: float = 0.0) -> List[np.ndarray]:
    """Dispatch to the paper's partitioning rule for this dataset.

    ``non_iid_level`` is the paper's ``y``: a percentage for
    MNIST/CIFAR-10, a class count for EMNIST/Tiny-ImageNet; 0 = IID.
    """
    labels = dataset.train_y
    if non_iid_level == 0:
        return iid_partition(labels, num_workers, rng)
    if dataset.name in ("mnist", "cifar10"):
        return label_skew_partition(labels, num_workers, non_iid_level, rng)
    return missing_classes_partition(labels, num_workers, int(non_iid_level), rng)


def partition_sizes(parts: Sequence[np.ndarray]) -> List[int]:
    """Sample counts per worker, for reporting."""
    return [int(part.size) for part in parts]
