"""Transport semantics over the worker pool: timeouts, retry, stragglers.

Two transports share one request/response surface:

- :class:`LocalTransport` hands the message to an in-process handler
  (zero-copy: no serialization, no pipe);
- :class:`ProcessTransport` speaks the pipe protocol of
  :mod:`repro.runtime.pool` with per-call timeouts and bounded,
  backoff-paced retry.

Retry discipline: pipes do not lose messages, so only *idempotent*
control messages (pings) are ever resent -- :meth:`ProcessTransport.
request` resends with exponential backoff and discards duplicate
replies by sequence number.  Training requests must never be resent
(a replay would double-consume the child's iterator RNG and break
parity); the executor's gather loop instead polls with the same
backoff schedule, counts each empty poll slice in ``retries_total``,
and escalates to :class:`TransportTimeoutError` /
:class:`WorkerCrashError`.

:class:`StragglerDetector` is the wall-clock heartbeat: it applies the
*same* quorum-deadline rule the schedulers use on simulated times
(:class:`repro.simulation.faults.DeadlinePolicy`) to the observed
completion times of one parallel batch, flagging pool members that are
materially slower than the fleet.  Detection is observability-only --
it feeds telemetry (``stragglers_total``, ``straggler_detected``
events), never the simulated schedule, so parallel runs stay
bitwise-identical to serial ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.simulation.faults import DeadlinePolicy

__all__ = [
    "TransportError",
    "TransportTimeoutError",
    "WorkerCrashError",
    "RetryPolicy",
    "RetryClock",
    "Transport",
    "LocalTransport",
    "ProcessTransport",
    "StragglerDetector",
]


class TransportError(RuntimeError):
    """Base class for transport failures."""


class TransportTimeoutError(TransportError):
    """No reply arrived within the retry budget."""


class WorkerCrashError(TransportError):
    """A pool process died with requests outstanding."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-call timeout and backoff-paced retry budget.

    ``backoff(attempt)`` yields the poll/resend interval for the given
    zero-based attempt; a call fails with
    :class:`TransportTimeoutError` after ``max_retries`` consecutive
    empty intervals or once ``timeout_s`` of total waiting elapses,
    whichever comes first.
    """

    timeout_s: float = 600.0
    max_retries: int = 10
    backoff_s: float = 0.25
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        return self.backoff_s * self.backoff_factor ** attempt

    def clock(self, timeout_s: Optional[float] = None,
              start: Optional[float] = None) -> "RetryClock":
        """Start one call's retry accounting under this policy."""
        return RetryClock(self, timeout_s, start=start)


class RetryClock:
    """One call's worth of retry/backoff accounting.

    Every retrying call site -- :meth:`ProcessTransport.request`, the
    executor's gather loop, :class:`~repro.runtime.sockets.
    SocketTransport` -- used to inline the same four lines of budget
    arithmetic; this hoists them behind two methods:

    - :meth:`interval` -- the poll/resend interval for the current
      attempt, clamped so the call never sleeps past its budget;
    - :meth:`tick` -- record one empty interval; returns ``False`` once
      the attempt count or the wall-clock budget is exhausted, at which
      point the caller raises :class:`TransportTimeoutError`.
    """

    def __init__(self, policy: RetryPolicy,
                 timeout_s: Optional[float] = None,
                 start: Optional[float] = None) -> None:
        self.policy = policy
        self.budget_s = timeout_s if timeout_s is not None \
            else policy.timeout_s
        self.attempts = 0
        self._start = start if start is not None else time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def reset(self) -> None:
        """A reply arrived: consecutive-empty-interval count restarts."""
        self.attempts = 0

    def remaining(self) -> float:
        return self.budget_s - self.elapsed()

    def interval(self) -> float:
        return min(self.policy.backoff(self.attempts),
                   max(self.remaining(), 0.0))

    def tick(self) -> bool:
        self.attempts += 1
        if self.attempts > self.policy.max_retries:
            return False
        return self.elapsed() < self.budget_s


class Transport:
    """One request/response channel to a training endpoint."""

    name = "base"
    metrics = None

    def request(self, message, timeout_s: Optional[float] = None):
        raise NotImplementedError

    def _count_retry(self) -> None:
        if self.metrics is not None:
            self.metrics.counter("retries_total",
                                 transport=self.name).inc()

    def close(self) -> None:
        """Release channel resources (no-op by default)."""


class LocalTransport(Transport):
    """Zero-copy in-process transport: the message object is handed to
    the handler directly, the reply object is returned directly."""

    name = "local"

    def __init__(self, handler: Callable) -> None:
        self._handler = handler

    def request(self, message, timeout_s: Optional[float] = None):
        return self._handler(message)


class ProcessTransport(Transport):
    """Pipe transport to one :class:`~repro.runtime.pool.PoolMember`."""

    name = "process"

    def __init__(self, member, retry: Optional[RetryPolicy] = None,
                 metrics=None) -> None:
        self.member = member
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics

    # -- primitives (used by the executor's gather loop) ---------------
    def alive(self) -> bool:
        return self.member.proc.is_alive()

    def send(self, message) -> None:
        try:
            self.member.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(
                f"pool member {self.member.index} is gone: {exc}"
            ) from exc

    def poll(self, timeout_s: float) -> bool:
        return self.member.conn.poll(timeout_s)

    def receive(self):
        try:
            return self.member.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(
                f"pool member {self.member.index} closed its pipe "
                f"mid-conversation"
            ) from exc

    # -- idempotent round trip -----------------------------------------
    def request(self, message, timeout_s: Optional[float] = None):
        """Send an **idempotent** control message and await its reply.

        Resends with exponential backoff (each resend counts in
        ``retries_total``); replies whose sequence number does not
        match -- duplicates provoked by an earlier resend -- are
        discarded.  Never use this for training requests: replaying
        one would double-consume the child's RNG streams.
        """
        seq = message[1]
        clock = self.retry.clock(timeout_s)
        self.send(message)
        while True:
            if self.poll(clock.interval()):
                reply = self.receive()
                if len(reply) >= 2 and reply[1] == seq:
                    if reply[0] == "err":
                        # the child answered with a traceback; returning
                        # it as if it were the reply would let callers
                        # treat the failure as success
                        raise TransportError(
                            f"pool member {self.member.index} raised "
                            f"while handling {message[0]!r}:\n{reply[2]}"
                        )
                    return reply
                continue  # stale duplicate from an earlier resend
            if not self.alive():
                raise WorkerCrashError(
                    f"pool member {self.member.index} died while a "
                    f"{message[0]!r} request was outstanding"
                )
            self._count_retry()
            if not clock.tick():
                raise TransportTimeoutError(
                    f"no reply to {message[0]!r} from pool member "
                    f"{self.member.index} after {clock.attempts} "
                    f"attempt(s) ({clock.budget_s:.1f}s budget)"
                )
            self.send(message)

    def close(self) -> None:
        try:
            self.member.conn.close()
        except OSError:
            pass


class StragglerDetector:
    """Wall-clock straggler heartbeat over one parallel batch.

    Applies :class:`~repro.simulation.faults.DeadlinePolicy` -- the
    exact rule the semi-sync/deadline schedulers apply to *simulated*
    completion times -- to the *observed* per-worker wall times of a
    pool round: record the time ``d`` at which the quorum fraction of
    replies is in, then flag whoever is slower than
    ``deadline_multiplier * d``.
    """

    def __init__(self, quorum_fraction: float = 0.85,
                 deadline_multiplier: float = 1.5) -> None:
        self.policy = DeadlinePolicy(quorum_fraction, deadline_multiplier)

    def flag(self, completion_s: Dict[int, float]) -> List[int]:
        """Worker ids whose observed completion breached the deadline."""
        if len(completion_s) < 2:
            return []
        return list(self.policy.apply(completion_s).discarded)
