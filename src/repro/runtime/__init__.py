"""Parallel execution runtime: process-pool workers behind a wire codec.

The FL engine historically ran every ``Worker.local_train`` inline; this
package is the execution substrate that actually parallelises it:

- :mod:`repro.runtime.codec` -- a versioned binary wire format for
  dispatches and contributions (pruning plans as packed ``uint32``
  indices, contiguous ``float32`` tensor payloads, optional quantized
  payload mode, CRC32 integrity, strict decode-time validation);
- :mod:`repro.runtime.pool` -- persistent worker processes rebuilt from
  picklable :class:`~repro.runtime.pool.WorkerSpec` records so the
  child-side RNG streams are bitwise-identical to in-process execution;
- :mod:`repro.runtime.transport` -- ``LocalTransport`` (zero-copy) and
  ``ProcessTransport`` (pipes + codec) behind one interface, with
  per-call timeouts, bounded retry with backoff, and wall-clock
  straggler detection that composes with
  :mod:`repro.simulation.faults`;
- :mod:`repro.runtime.executor` -- the ``Engine``'s ``executor=`` seam:
  :class:`~repro.runtime.executor.SerialExecutor` (default, inline) and
  :class:`~repro.runtime.executor.ProcessExecutor` (the pool).

The headline guarantee is **0-ULP parity**: a run with
``executor="process"`` produces bitwise-identical global states and a
byte-identical history JSON to the serial path (see DESIGN.md 3.5 and
``repro verify --executor process``).
"""

from repro.runtime.codec import (
    WIRE_VERSION,
    ContributionPayload,
    DispatchPayload,
    TrainHyper,
    WireFormatError,
    decode_contribution,
    decode_dispatch,
    encode_contribution,
    encode_dispatch,
)
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TrainRequest,
    TrainResult,
    make_executor,
)
from repro.runtime.pool import ProcessPool, WorkerSpec
from repro.runtime.transport import (
    LocalTransport,
    ProcessTransport,
    RetryPolicy,
    StragglerDetector,
    TransportError,
    TransportTimeoutError,
    WorkerCrashError,
)

__all__ = [
    "WIRE_VERSION",
    "ContributionPayload",
    "DispatchPayload",
    "Executor",
    "LocalTransport",
    "ProcessExecutor",
    "ProcessPool",
    "ProcessTransport",
    "RetryPolicy",
    "SerialExecutor",
    "StragglerDetector",
    "TrainHyper",
    "TrainRequest",
    "TrainResult",
    "TransportError",
    "TransportTimeoutError",
    "WireFormatError",
    "WorkerCrashError",
    "WorkerSpec",
    "decode_contribution",
    "decode_dispatch",
    "encode_contribution",
    "encode_dispatch",
    "make_executor",
]
