"""Persistent worker processes rebuilt from picklable specs.

The parity problem this module solves: the engine's workers own live
RNG streams (the shared iterator/worker generator and the timing
model's jitter generator) that are derived from ``config.seed`` in a
fixed construction order, so a worker cannot simply be pickled into a
child -- generator state would fork and the runs would diverge.
Instead the engine records, per worker, the *seed* its generator was
built from plus everything else construction needs
(:class:`WorkerSpec`), and the child re-runs the exact construction
sequence:

1. ``rng = np.random.default_rng(seed)``;
2. the data iterator is built first (a ``BatchIterator`` draws its
   epoch permutation *at construction*);
3. ``Worker.__init__`` then draws the :class:`~repro.simulation.timing.
   TimingModel` seed from the same generator.

Step order is load-bearing: swapping 2 and 3 shifts every subsequent
draw.  ``tests/test_runtime/test_pool.py`` pins that a spec-rebuilt
worker reproduces both the identical jitter stream and the identical
batch stream.

Each pool child owns a *group* of workers (round-robin over sorted
worker ids, so the assignment is a pure function of the fleet) and
serves ``train`` requests off one duplex pipe: decode the dispatch
frame, materialise the sub-model, run ``local_train``, reply with a
contribution frame encoded under the dispatch's negotiated wire
profile.  Sub-model templates arrive out-of-band through shared
memory (see :mod:`repro.runtime.shm`) and are cached per plan
signature, so steady-state dispatches ship only the codec frame --
the pipe never carries a module graph except on the explicit
``pickle_submodels`` path.  The parent bounds its template store and
piggybacks eviction notices on train messages so child caches track
the parent's.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.codec import (
    decode_dispatch,
    encode_contribution,
)
from repro.runtime.shm import read_segment
from repro.simulation.device import DeviceProfile

if TYPE_CHECKING:  # cycle guard: repro.fl.engine imports this package
    from repro.fl.worker import Worker

__all__ = ["ITERATOR_KINDS", "WorkerSpec", "PoolMember", "ProcessPool"]

#: iterator families a spec can rebuild ("batch" draws an epoch
#: permutation at construction; "sequence" draws only per batch)
ITERATOR_KINDS = ("batch", "sequence")


@dataclass
class WorkerSpec:
    """Everything a child process needs to rebuild one worker exactly.

    Picklable by construction: arrays, a frozen
    :class:`~repro.simulation.device.DeviceProfile` and plain scalars.
    """

    worker_id: int
    seed: int
    shard_inputs: np.ndarray
    shard_targets: np.ndarray
    batch_size: int
    device: DeviceProfile
    jitter_sigma: float
    num_samples: int
    iterator_kind: str = "batch"
    task_name: str = ""
    #: restored runtime state from a checkpoint (see
    #: :meth:`repro.fl.worker.Worker.capture_runtime_state`); when set,
    #: :meth:`build` fast-forwards the freshly constructed worker's RNG
    #: streams and iterator position to the captured point, so a
    #: resumed pool replays the exact stream position rather than the
    #: construction-time seed's round-0 position
    runtime_state: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.iterator_kind not in ITERATOR_KINDS:
            raise ValueError(
                f"iterator_kind must be one of {ITERATOR_KINDS}, "
                f"got {self.iterator_kind!r}"
            )

    def build(self) -> Worker:
        """Reconstruct the worker with bitwise-identical RNG streams.

        Mirrors ``Engine.__init__`` exactly: one generator seeded from
        ``seed``, consumed first by the iterator's construction and
        then by ``Worker.__init__``'s timing-seed draw.
        """
        # imported here, not at module scope: repro.fl.engine imports
        # this package, so a top-level repro.fl import would be a cycle
        from repro.fl.tasks import _SequenceBatchIterator
        from repro.fl.worker import Worker

        rng = np.random.default_rng(self.seed)
        if self.iterator_kind == "batch":
            from repro.data.loader import BatchIterator
            iterator = BatchIterator(self.shard_inputs, self.shard_targets,
                                     self.batch_size, rng=rng)
        else:
            iterator = _SequenceBatchIterator(self.shard_inputs,
                                              self.shard_targets, rng)
        worker = Worker(self.worker_id, iterator, self.device,
                        jitter_sigma=self.jitter_sigma, rng=rng,
                        num_samples=self.num_samples)
        if self.runtime_state is not None:
            worker.restore_runtime_state(self.runtime_state)
        return worker


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
def _handle_train(workers: Dict[int, Worker], templates: Dict[object, object],
                  frame: bytes, template: Tuple,
                  drops: Tuple) -> bytes:
    for key in drops:
        templates.pop(key, None)
    payload = decode_dispatch(frame)
    mode = template[0]
    if mode == "blob":
        submodel = pickle.loads(template[1])
    elif mode == "shm":
        _, key, name, size = template
        cached = read_segment(name, size)
        templates[key] = cached
        submodel = copy.deepcopy(cached)
    elif mode == "cached":
        cached = templates.get(template[1])
        if cached is None:
            raise RuntimeError(
                f"no cached sub-model template for key {template[1]!r}"
            )
        submodel = copy.deepcopy(cached)
    else:
        raise RuntimeError(f"unknown template reference {mode!r}")
    # load_state_dict copies every array, so payload.state stays the
    # pristine dispatched base the sparse reply encoder diffs against
    submodel.load_state_dict(payload.state)
    worker = workers[payload.worker_id]
    hyper = payload.hyper
    start = time.perf_counter()
    if payload.emulate_s > 0.0:
        # device-time emulation: occupy real wall-clock for the
        # simulated device latency (see DESIGN.md 3.5)
        time.sleep(payload.emulate_s)
    train_loss = worker.local_train(
        submodel, tau=payload.tau, lr=hyper.lr, momentum=hyper.momentum,
        weight_decay=hyper.weight_decay, prox_mu=hyper.prox_mu,
        clip_norm=hyper.clip_norm, anchor=payload.state,
    )
    wall_s = time.perf_counter() - start
    profile = payload.reply_profile
    return encode_contribution(
        payload.worker_id, submodel.state_dict(),
        train_loss=float(train_loss), wall_time_s=wall_s,
        num_samples=worker.num_samples, profile=profile,
        base=payload.state if profile != "exact" else None,
        keep_fraction=(
            0.25 if payload.reply_keep_fraction is None
            else payload.reply_keep_fraction
        ),
        quantize_bits=(
            payload.reply_quantize_bits
            if profile == "sparse+quantized" else None
        ),
    )


def _child_main(conn, specs_blob: bytes) -> None:
    """Serve one pipe until shutdown.

    Message grammar (tuples; ``seq`` correlates replies to requests):

    - ``("ping", seq, delay_s)`` -> ``("pong", seq)`` after sleeping
      ``delay_s`` (the delay exists so tests can provoke timeouts);
    - ``("train", seq, frame, template, drops)``
      -> ``("ok", seq, contribution_frame)`` or
      ``("err", seq, traceback_text)``, where ``template`` references
      the sub-model graph as ``("cached", key)`` (clone the child's
      cache), ``("shm", key, name, size)`` (attach the named
      shared-memory segment, cache under ``key``, clone) or
      ``("blob", pickle_bytes)`` (one-shot module, never cached), and
      ``drops`` lists template keys to evict before handling;
    - ``("capture", seq)`` -> ``("state", seq, blob)`` where ``blob``
      pickles ``{worker_id: capture_runtime_state()}`` for this child's
      workers (the checkpoint subsystem merges these into the parent's
      view, since in process mode the data/RNG streams advance here);
    - ``("shutdown",)`` -> exit.
    """
    specs: List[WorkerSpec] = pickle.loads(specs_blob)
    workers = {spec.worker_id: spec.build() for spec in specs}
    templates: Dict[object, object] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "shutdown":
                break
            if op == "ping":
                _, seq, delay_s = message
                if delay_s:
                    time.sleep(delay_s)
                conn.send(("pong", seq))
            elif op == "train":
                _, seq, frame, template, drops = message
                try:
                    reply = _handle_train(workers, templates, frame,
                                          template, drops)
                except Exception:
                    conn.send(("err", seq, traceback.format_exc()))
                else:
                    conn.send(("ok", seq, reply))
            elif op == "capture":
                _, seq = message
                try:
                    states = {
                        worker_id: worker.capture_runtime_state()
                        for worker_id, worker in workers.items()
                    }
                except Exception:
                    conn.send(("err", seq, traceback.format_exc()))
                else:
                    conn.send(("state", seq, pickle.dumps(states)))
            # unknown ops are dropped silently: the parent's sequence
            # numbers make lost requests visible as timeouts
    except KeyboardInterrupt:
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class PoolMember:
    """One child process and the parent's end of its pipe."""

    index: int
    proc: mp.process.BaseProcess
    conn: object
    worker_ids: List[int] = field(default_factory=list)


def _pick_start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ProcessPool:
    """A fixed fleet of persistent worker processes.

    Workers are assigned round-robin over their sorted ids, so the
    worker -> child mapping is deterministic for a given fleet and
    pool size.  Children are daemonic: an abnormal parent exit cannot
    leave them behind.
    """

    def __init__(self, specs: List[WorkerSpec],
                 num_procs: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if not specs:
            raise ValueError("a process pool needs at least one WorkerSpec")
        specs = sorted(specs, key=lambda spec: spec.worker_id)
        count = num_procs if num_procs is not None else (mp.cpu_count() or 1)
        count = max(1, min(int(count), len(specs)))
        ctx = mp.get_context(start_method or _pick_start_method())
        self.members: List[PoolMember] = []
        self.by_worker: Dict[int, PoolMember] = {}
        for index in range(count):
            group = specs[index::count]
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_child_main,
                args=(child_conn, pickle.dumps(group)),
                name=f"repro-pool-{index}", daemon=True,
            )
            proc.start()
            child_conn.close()
            member = PoolMember(
                index=index, proc=proc, conn=parent_conn,
                worker_ids=[spec.worker_id for spec in group],
            )
            self.members.append(member)
            for spec in group:
                self.by_worker[spec.worker_id] = member

    def __len__(self) -> int:
        return len(self.members)

    def close(self, join_timeout_s: float = 5.0) -> None:
        """Ask every child to exit; terminate any that do not."""
        for member in self.members:
            try:
                member.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for member in self.members:
            member.proc.join(timeout=join_timeout_s)
            if member.proc.is_alive():
                member.proc.terminate()
                member.proc.join(timeout=join_timeout_s)
            try:
                member.conn.close()
            except OSError:
                pass
