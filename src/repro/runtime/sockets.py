"""Length-prefixed socket framing and the client-side socket transport.

The service protocol reuses the pipe grammar's shape -- pickled
``(op, seq, *args)`` tuples -- but crosses host boundaries, so each
message is framed as a 4-byte big-endian length prefix followed by the
pickled payload.  Binary training payloads stay in the CRC-checked
:mod:`repro.runtime.codec` frames and ride inside the pickled tuple as
``bytes``, exactly as they do over the pipe transport; the socket layer
adds framing only, never re-encodes, so the wire profiles (exact /
sparse / sparse+quantized) and their parity guarantees carry over
unchanged.

Two consumption styles:

- :func:`send_message` / :func:`recv_message` -- blocking helpers for
  the client side and for tests;
- :class:`FrameBuffer` -- an incremental decoder for the service's
  non-blocking ``selectors`` loop: feed it whatever ``recv`` returned,
  pop every complete message.

:class:`SocketTransport` is the worker-side
:class:`~repro.runtime.transport.Transport`: one TCP connection to the
service, request/response with the shared
:class:`~repro.runtime.transport.RetryPolicy` backoff accounting.
Unlike the pipe transport it never *resends* (TCP does not drop
messages mid-connection); each empty poll interval counts in
``retries_total{transport="socket"}`` and the call escalates to
:class:`~repro.runtime.transport.TransportTimeoutError` /
:class:`~repro.runtime.transport.WorkerCrashError` on the same
schedule.
"""

from __future__ import annotations

import pickle
import select
import socket
import struct
import time
from typing import Iterator, List, Optional, Tuple

from repro.runtime.transport import (
    RetryPolicy,
    Transport,
    TransportError,
    TransportTimeoutError,
    WorkerCrashError,
)

__all__ = [
    "SocketClosedError",
    "FrameBuffer",
    "encode_message",
    "send_message",
    "recv_message",
    "SocketTransport",
]

_LENGTH = struct.Struct("!I")

#: hard sanity cap on one framed message (a corrupt or misaligned
#: length prefix must fail loudly, not allocate gigabytes)
MAX_MESSAGE_BYTES = 1 << 30


class SocketClosedError(TransportError):
    """The peer closed the connection mid-conversation."""


def encode_message(message) -> bytes:
    """Frame one message for the wire (length prefix + pickle)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise TransportError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame cap"
        )
    return _LENGTH.pack(len(payload)) + payload


def send_message(sock: socket.socket, message) -> None:
    """Frame and send one message (blocking)."""
    try:
        sock.sendall(encode_message(message))
    except (BrokenPipeError, ConnectionError, OSError) as exc:
        raise SocketClosedError(f"peer went away mid-send: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionError, OSError) as exc:
            raise SocketClosedError(
                f"peer went away mid-receive: {exc}"
            ) from exc
        if not chunk:
            raise SocketClosedError(
                f"connection closed with {remaining} of {count} "
                f"byte(s) unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket):
    """Receive one framed message (blocking)."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_MESSAGE_BYTES:
        raise TransportError(
            f"frame announces {length} bytes, over the "
            f"{MAX_MESSAGE_BYTES}-byte cap -- stream corrupt?"
        )
    return pickle.loads(_recv_exact(sock, length))


class FrameBuffer:
    """Incremental frame decoder for non-blocking reads.

    ``feed`` whatever bytes ``recv`` produced (possibly a partial
    frame, possibly several frames), then drain ``pop_messages``.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def pending_bytes(self) -> int:
        return len(self._buffer)

    def pop_messages(self) -> Iterator[object]:
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack(self._buffer[:_LENGTH.size])
            if length > MAX_MESSAGE_BYTES:
                raise TransportError(
                    f"frame announces {length} bytes, over the "
                    f"{MAX_MESSAGE_BYTES}-byte cap -- stream corrupt?"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            yield pickle.loads(payload)


class SocketTransport(Transport):
    """One TCP request/response channel to the parameter-server service.

    The message grammar mirrors the pipe transport: pickled
    ``(op, seq, *args)`` tuples, replies carrying the same ``seq``,
    ``("err", seq, traceback)`` raising :class:`TransportError`.
    Replies whose sequence number does not match the outstanding
    request are discarded (they can only be late replies to an earlier
    abandoned call).
    """

    name = "socket"

    def __init__(self, address: Tuple[str, int],
                 retry: Optional[RetryPolicy] = None,
                 metrics=None,
                 connect_timeout_s: float = 10.0) -> None:
        self.address = address
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics
        self._sock: Optional[socket.socket] = None
        self._frames = FrameBuffer()
        self._connect_timeout_s = connect_timeout_s

    # -- connection lifecycle ------------------------------------------
    def connect(self) -> "SocketTransport":
        sock = socket.create_connection(
            self.address, timeout=self._connect_timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        self._sock = sock
        return self

    def alive(self) -> bool:
        return self._sock is not None

    def send(self, message) -> None:
        if self._sock is None:
            raise WorkerCrashError("socket transport is not connected")
        try:
            send_message(self._sock, message)
        except SocketClosedError:
            self.close()
            raise

    # -- idempotent round trip -----------------------------------------
    def request(self, message, timeout_s: Optional[float] = None):
        """Send one control message and await its reply.

        TCP never drops messages mid-connection, so nothing is resent;
        each empty poll interval counts as one retry in
        ``retries_total`` and exhausting the
        :class:`~repro.runtime.transport.RetryPolicy` budget raises
        :class:`~repro.runtime.transport.TransportTimeoutError`.  A
        connection that closes with the request outstanding raises
        :class:`~repro.runtime.transport.WorkerCrashError`.
        """
        seq = message[1]
        clock = self.retry.clock(timeout_s)
        self.send(message)
        while True:
            for reply in self._frames.pop_messages():
                if len(reply) >= 2 and reply[1] == seq:
                    if reply[0] == "err":
                        raise TransportError(
                            f"service raised while handling "
                            f"{message[0]!r}:\n{reply[2]}"
                        )
                    return reply
                # stale reply to an earlier abandoned call: discard
            if self._sock is None:
                raise WorkerCrashError(
                    f"connection to {self.address} lost while a "
                    f"{message[0]!r} request was outstanding"
                )
            ready, _, _ = select.select(
                [self._sock], [], [], clock.interval()
            )
            if ready:
                try:
                    chunk = self._sock.recv(1 << 20)
                except (ConnectionError, OSError) as exc:
                    self.close()
                    raise WorkerCrashError(
                        f"connection to {self.address} broke while a "
                        f"{message[0]!r} request was outstanding: {exc}"
                    ) from exc
                if not chunk:
                    self.close()
                    raise WorkerCrashError(
                        f"service at {self.address} closed the "
                        f"connection while a {message[0]!r} request "
                        f"was outstanding"
                    )
                self._frames.feed(chunk)
                clock.reset()
                continue
            self._count_retry()
            if not clock.tick():
                raise TransportTimeoutError(
                    f"no reply to {message[0]!r} from {self.address} "
                    f"after {clock.attempts} attempt(s) "
                    f"({clock.budget_s:.1f}s budget)"
                )

    def next_message(self, timeout_s: Optional[float] = None):
        """The next inbound message in arrival order (None on timeout).

        Unlike :meth:`request` this never discards anything -- it is the
        read primitive for serve-style loops that must see *every*
        message, whatever its sequence number.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            for message in self._frames.pop_messages():
                return message
            if self._sock is None:
                raise SocketClosedError(
                    f"connection to {self.address} is closed"
                )
            if deadline is None:
                wait = None
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    return None
            ready, _, _ = select.select([self._sock], [], [], wait)
            if not ready:
                return None
            try:
                chunk = self._sock.recv(1 << 20)
            except (ConnectionError, OSError) as exc:
                self.close()
                raise SocketClosedError(
                    f"connection to {self.address} broke: {exc}"
                ) from exc
            if not chunk:
                self.close()
                raise SocketClosedError(
                    f"service at {self.address} closed the connection"
                )
            self._frames.feed(chunk)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
