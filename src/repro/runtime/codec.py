"""Versioned binary wire format for dispatches and contributions.

Every frame is little-endian and self-delimiting::

    magic b"FMPW" | version u16 | kind u8 | flags u8 | body | crc32 u32

``kind`` distinguishes the two frame types (PS -> worker dispatch,
worker -> PS contribution); ``flags`` bit 0 marks a quantized tensor
payload.  The CRC32 (:func:`zlib.crc32`) covers everything before the
trailer, so a flipped bit anywhere in the frame is caught before any
payload is interpreted.

A **dispatch** body carries the worker id, the local-iteration budget,
the training hyper-parameters, the :class:`~repro.pruning.plan.
PruningPlan` (kept indices packed as ``uint32`` per layer) and the
dispatched sub-model state (per-tensor records with contiguous
``float32`` payloads).  A **contribution** body carries the worker id,
its sample count, the training loss, the child-side wall time and the
trained state.

The optional quantized payload mode reuses
:mod:`repro.pruning.quantize`: each tensor is shipped as ``int16``
codes plus one ``float64`` scale (the paper's Section III-C residual
trick).  Quantization is lossy, so the engine's 0-ULP parity path never
enables it; the codec round-trips the *codes* exactly.

Decoding validates strictly: truncated frames, bad magic, unsupported
versions, CRC mismatches, unknown layer kinds or dtype codes, kept
indices out of range and trailing garbage all raise the typed
:class:`WireFormatError` -- never a silent wrong decode.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.pruning.plan import LAYER_KINDS, LayerPrune, PruningPlan
from repro.pruning.quantize import quantize_state_dict

__all__ = [
    "WIRE_VERSION",
    "KIND_DISPATCH",
    "KIND_CONTRIBUTION",
    "FLAG_QUANTIZED",
    "WireFormatError",
    "TrainHyper",
    "DispatchPayload",
    "ContributionPayload",
    "encode_dispatch",
    "decode_dispatch",
    "encode_contribution",
    "decode_contribution",
    "frame_kind",
]

MAGIC = b"FMPW"
WIRE_VERSION = 1

KIND_DISPATCH = 1
KIND_CONTRIBUTION = 2

FLAG_QUANTIZED = 0x01

#: wire dtype code -> numpy little-endian dtype string
_DTYPE_CODES: Dict[int, str] = {0: "<f4", 1: "<f8"}
_DTYPE_TO_CODE = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}

_HEADER = struct.Struct("<4sHBB")
_CRC = struct.Struct("<I")


class WireFormatError(ValueError):
    """A frame failed decode-time validation (truncated, corrupt,
    version-mismatched, or structurally invalid)."""


@dataclass(frozen=True)
class TrainHyper:
    """The local-SGD hyper-parameters a dispatch ships to its worker."""

    lr: float
    momentum: float = 0.0
    weight_decay: float = 0.0
    prox_mu: float = 0.0
    clip_norm: Optional[float] = None


@dataclass
class DispatchPayload:
    """A decoded dispatch frame."""

    worker_id: int
    tau: int
    emulate_s: float
    hyper: TrainHyper
    plan: PruningPlan
    state: Dict[str, np.ndarray]


@dataclass
class ContributionPayload:
    """A decoded contribution frame."""

    worker_id: int
    num_samples: int
    train_loss: float
    wall_time_s: float
    state: Dict[str, np.ndarray]


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class _Writer:
    def __init__(self) -> None:
        self._parts = [b""]  # placeholder for the header

    def header(self, kind: int, flags: int) -> None:
        self._parts[0] = _HEADER.pack(MAGIC, WIRE_VERSION, kind, flags)

    def pack(self, fmt: str, *values) -> None:
        self._parts.append(struct.pack("<" + fmt, *values))

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        if len(data) > 0xFFFF:
            raise WireFormatError(f"name too long for the wire: {text!r}")
        self.pack("H", len(data))
        self._parts.append(data)

    def array(self, values: np.ndarray, dtype: str) -> None:
        self._parts.append(np.ascontiguousarray(values, dtype=dtype).tobytes())

    def finish(self) -> bytes:
        body = b"".join(self._parts)
        return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
class _Reader:
    """Bounds-checked sequential reader over one frame's body."""

    def __init__(self, buf: memoryview) -> None:
        self._buf = buf
        self._pos = 0

    def take(self, count: int) -> memoryview:
        end = self._pos + count
        if count < 0 or end > len(self._buf):
            raise WireFormatError(
                f"truncated frame: wanted {count} byte(s) at offset "
                f"{self._pos}, {len(self._buf) - self._pos} available"
            )
        view = self._buf[self._pos:end]
        self._pos = end
        return view

    def unpack(self, fmt: str) -> Tuple:
        layout = struct.Struct("<" + fmt)
        return layout.unpack(self.take(layout.size))

    def string(self) -> str:
        (length,) = self.unpack("H")
        try:
            return bytes(self.take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid utf-8 name: {exc}") from exc

    def array(self, dtype: str, count: int) -> np.ndarray:
        itemsize = np.dtype(dtype).itemsize
        view = self.take(count * itemsize)
        return np.frombuffer(view, dtype=dtype).copy()

    def expect_exhausted(self) -> None:
        if self._pos != len(self._buf):
            raise WireFormatError(
                f"trailing garbage: {len(self._buf) - self._pos} "
                f"unread byte(s) after the body"
            )


# ----------------------------------------------------------------------
# plan block
# ----------------------------------------------------------------------
def _write_plan(writer: _Writer, plan: PruningPlan) -> None:
    layers = list(plan.items())
    writer.pack("I", len(layers))
    for name, entry in layers:
        writer.string(name)
        writer.pack("B", LAYER_KINDS.index(entry.kind))
        writer.pack("II", int(entry.out_full), int(entry.kept_out.size))
        writer.array(entry.kept_out, "<u4")
        if entry.kept_in is None:
            writer.pack("B", 0)
        else:
            writer.pack("B", 1)
            writer.pack("II", int(entry.in_full), int(entry.kept_in.size))
            writer.array(entry.kept_in, "<u4")


def _read_kept(reader: _Reader, full: int, count: int,
               axis: str, layer: str) -> np.ndarray:
    if count > full:
        raise WireFormatError(
            f"layer {layer!r}: {count} kept {axis} indices exceed the "
            f"full size {full}"
        )
    kept = reader.array("<u4", count).astype(np.intp)
    if count and int(kept.max()) >= full:
        raise WireFormatError(
            f"layer {layer!r}: kept {axis} index {int(kept.max())} out of "
            f"range for full size {full}"
        )
    return kept


def _read_plan(reader: _Reader, ratio: float) -> PruningPlan:
    (num_layers,) = reader.unpack("I")
    plan = PruningPlan(ratio=ratio)
    for _ in range(num_layers):
        name = reader.string()
        (kind_index,) = reader.unpack("B")
        if kind_index >= len(LAYER_KINDS):
            raise WireFormatError(
                f"layer {name!r}: unknown layer-kind code {kind_index}"
            )
        out_full, out_count = reader.unpack("II")
        kept_out = _read_kept(reader, out_full, out_count, "output", name)
        (has_in,) = reader.unpack("B")
        kept_in = None
        in_full = None
        if has_in:
            in_full, in_count = reader.unpack("II")
            kept_in = _read_kept(reader, in_full, in_count, "input", name)
        try:
            plan.add(name, LayerPrune(
                kind=LAYER_KINDS[kind_index], kept_out=kept_out,
                out_full=out_full, kept_in=kept_in, in_full=in_full,
            ))
        except ValueError as exc:
            raise WireFormatError(f"invalid plan entry: {exc}") from exc
    return plan


# ----------------------------------------------------------------------
# tensor block
# ----------------------------------------------------------------------
def _write_state(writer: _Writer, state: Dict[str, np.ndarray],
                 quantize_bits: Optional[int]) -> None:
    quantized = (
        quantize_state_dict(state, bits=quantize_bits)
        if quantize_bits is not None else None
    )
    writer.pack("I", len(state))
    for key, value in state.items():
        value = np.asarray(value)
        code = _DTYPE_TO_CODE.get(value.dtype)
        if code is None:
            raise WireFormatError(
                f"tensor {key!r}: unsupported wire dtype {value.dtype}"
            )
        writer.string(key)
        writer.pack("BB", code, value.ndim)
        writer.pack("I" * value.ndim, *value.shape)
        if quantized is None:
            writer.array(value, _DTYPE_CODES[code])
        else:
            writer.pack("Bd", quantized.bits, quantized.scales[key])
            writer.array(quantized.codes[key], "<i2")


def _read_state(reader: _Reader,
                quantized: bool) -> Dict[str, np.ndarray]:
    (num_tensors,) = reader.unpack("I")
    state: Dict[str, np.ndarray] = {}
    for _ in range(num_tensors):
        key = reader.string()
        if key in state:
            raise WireFormatError(f"duplicate tensor {key!r}")
        code, ndim = reader.unpack("BB")
        if code not in _DTYPE_CODES:
            raise WireFormatError(
                f"tensor {key!r}: unknown dtype code {code}"
            )
        shape = reader.unpack("I" * ndim) if ndim else ()
        count = 1
        for dim in shape:
            count *= dim
        if quantized:
            bits, scale = reader.unpack("Bd")
            if not 2 <= bits <= 16:
                raise WireFormatError(
                    f"tensor {key!r}: quantization bits {bits} out of range"
                )
            codes = reader.array("<i2", count)
            value = (codes.astype(np.float64) * scale).astype(
                _DTYPE_CODES[code]
            )
        else:
            value = reader.array(_DTYPE_CODES[code], count)
        state[key] = value.reshape(shape)
    return state


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def _clip_to_wire(clip_norm: Optional[float]) -> float:
    return float("nan") if clip_norm is None else float(clip_norm)


def _clip_from_wire(value: float) -> Optional[float]:
    return None if np.isnan(value) else float(value)


def encode_dispatch(worker_id: int, plan: PruningPlan,
                    state: Dict[str, np.ndarray], *, tau: int,
                    hyper: TrainHyper, emulate_s: float = 0.0,
                    quantize_bits: Optional[int] = None) -> bytes:
    """Encode one PS -> worker dispatch frame."""
    writer = _Writer()
    flags = FLAG_QUANTIZED if quantize_bits is not None else 0
    writer.header(KIND_DISPATCH, flags)
    writer.pack("II", worker_id, tau)
    writer.pack("d", float(emulate_s))
    writer.pack("ddddd", hyper.lr, hyper.momentum, hyper.weight_decay,
                hyper.prox_mu, _clip_to_wire(hyper.clip_norm))
    writer.pack("d", float(plan.ratio))
    _write_plan(writer, plan)
    _write_state(writer, state, quantize_bits)
    return writer.finish()


def encode_contribution(worker_id: int, state: Dict[str, np.ndarray], *,
                        train_loss: float, wall_time_s: float,
                        num_samples: int = 1,
                        quantize_bits: Optional[int] = None) -> bytes:
    """Encode one worker -> PS contribution frame."""
    writer = _Writer()
    flags = FLAG_QUANTIZED if quantize_bits is not None else 0
    writer.header(KIND_CONTRIBUTION, flags)
    writer.pack("II", worker_id, num_samples)
    writer.pack("dd", float(train_loss), float(wall_time_s))
    _write_state(writer, state, quantize_bits)
    return writer.finish()


def _open_frame(frame: bytes, expected_kind: int) -> Tuple[_Reader, int]:
    if len(frame) < _HEADER.size + _CRC.size:
        raise WireFormatError(
            f"frame too short: {len(frame)} byte(s), need at least "
            f"{_HEADER.size + _CRC.size}"
        )
    (stored_crc,) = _CRC.unpack(frame[-_CRC.size:])
    actual_crc = zlib.crc32(frame[:-_CRC.size]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise WireFormatError(
            f"CRC mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    magic, version, kind, flags = _HEADER.unpack(frame[:_HEADER.size])
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this codec speaks "
            f"{WIRE_VERSION})"
        )
    if kind != expected_kind:
        raise WireFormatError(
            f"wrong frame kind {kind} (expected {expected_kind})"
        )
    body = memoryview(frame)[_HEADER.size:-_CRC.size]
    return _Reader(body), flags


def frame_kind(frame: bytes) -> int:
    """The kind code of a frame, after validating magic and version
    (but not the CRC)."""
    if len(frame) < _HEADER.size:
        raise WireFormatError("frame shorter than the header")
    magic, version, kind, _ = _HEADER.unpack(frame[:_HEADER.size])
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    return kind


def decode_dispatch(frame: bytes) -> DispatchPayload:
    """Decode and validate one dispatch frame."""
    reader, flags = _open_frame(frame, KIND_DISPATCH)
    worker_id, tau = reader.unpack("II")
    (emulate_s,) = reader.unpack("d")
    lr, momentum, weight_decay, prox_mu, clip = reader.unpack("ddddd")
    (ratio,) = reader.unpack("d")
    plan = _read_plan(reader, ratio)
    state = _read_state(reader, bool(flags & FLAG_QUANTIZED))
    reader.expect_exhausted()
    return DispatchPayload(
        worker_id=worker_id, tau=tau, emulate_s=emulate_s,
        hyper=TrainHyper(lr=lr, momentum=momentum,
                         weight_decay=weight_decay, prox_mu=prox_mu,
                         clip_norm=_clip_from_wire(clip)),
        plan=plan, state=state,
    )


def decode_contribution(frame: bytes) -> ContributionPayload:
    """Decode and validate one contribution frame."""
    reader, flags = _open_frame(frame, KIND_CONTRIBUTION)
    worker_id, num_samples = reader.unpack("II")
    train_loss, wall_time_s = reader.unpack("dd")
    state = _read_state(reader, bool(flags & FLAG_QUANTIZED))
    reader.expect_exhausted()
    return ContributionPayload(
        worker_id=worker_id, num_samples=num_samples,
        train_loss=train_loss, wall_time_s=wall_time_s, state=state,
    )
