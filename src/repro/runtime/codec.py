"""Versioned binary wire format for dispatches and contributions.

Every frame is little-endian and self-delimiting::

    magic b"FMPW" | version u16 | kind u8 | flags u8 | body | crc32 u32

``kind`` distinguishes the two frame types (PS -> worker dispatch,
worker -> PS contribution).  ``flags`` describe the tensor payload and
carry the negotiated wire profile:

- bit 0 (``FLAG_QUANTIZED``): tensor payloads are quantized ``int16``
  codes plus a ``float64`` scale per tensor;
- bit 1 (``FLAG_SPARSE``): tensor payloads are sparse deltas at kept
  indices (contribution frames only -- a sparse dispatch is rejected);
- bits 2-3: on a dispatch, the **negotiated reply profile** the worker
  must use for its contribution (0 = ``exact``, 1 = ``sparse``,
  2 = ``sparse+quantized``); always 0 on contributions.

The CRC32 (:func:`zlib.crc32`) covers everything before the trailer,
so a flipped bit anywhere in the frame is caught before any payload is
interpreted.  Unknown flag bits are rejected, never ignored.

A **dispatch** body carries the worker id, the local-iteration budget,
the training hyper-parameters, the :class:`~repro.pruning.plan.
PruningPlan` (kept indices packed as ``uint32`` per layer) and the
dispatched sub-model state (per-tensor records with contiguous
``float32`` payloads).  When a non-exact reply profile is negotiated
the body additionally carries the top-k keep fraction and (for
``sparse+quantized``) the code width in bits.  A **contribution** body
carries the worker id, its sample count, the training loss, the
child-side wall time and the trained state -- dense, or as a sparse
block when ``FLAG_SPARSE`` is set.

A sparse block ships, per tensor, the flat C-order indices (packed
``uint32``, strictly increasing) where the trained state moved most
(top-k of ``|trained - dispatched|`` via the same selection rule as
:func:`repro.fl.compression.top_k_sparsify`) plus either the exact
trained values at those positions (``sparse``) or quantized *delta*
codes (``sparse+quantized``, reusing :mod:`repro.pruning.quantize`,
the paper's Section III-C trick).  The receiver materialises a dense
state by overlaying the block onto the dispatched base state it
already holds; positions not shipped keep their dispatched values.
Both sparse profiles are lossy, so the engine's 0-ULP parity path
never negotiates them; the codec round-trips indices/codes exactly.

Decoding validates strictly: truncated frames, bad magic, unsupported
versions, CRC mismatches, unknown flag bits, unknown layer kinds or
dtype codes, kept indices out of range, non-increasing sparse indices,
out-of-range quantization scales or codes and trailing garbage all
raise the typed :class:`WireFormatError` -- never a silent wrong
decode.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.pruning.plan import LAYER_KINDS, LayerPrune, PruningPlan
from repro.pruning.quantize import quantize_array, quantize_state_dict

__all__ = [
    "WIRE_VERSION",
    "KIND_DISPATCH",
    "KIND_CONTRIBUTION",
    "FLAG_QUANTIZED",
    "FLAG_SPARSE",
    "WIRE_PROFILES",
    "WireFormatError",
    "TrainHyper",
    "DispatchPayload",
    "ContributionPayload",
    "SparseTensor",
    "encode_dispatch",
    "decode_dispatch",
    "encode_contribution",
    "decode_contribution",
    "frame_kind",
]

MAGIC = b"FMPW"
WIRE_VERSION = 1

KIND_DISPATCH = 1
KIND_CONTRIBUTION = 2

FLAG_QUANTIZED = 0x01
FLAG_SPARSE = 0x02

#: negotiated wire profiles, in ascending-compression order
WIRE_PROFILES = ("exact", "sparse", "sparse+quantized")
_PROFILE_CODES = {name: code for code, name in enumerate(WIRE_PROFILES)}
_PROFILE_SHIFT = 2
_PROFILE_MASK = 0x0C
_KNOWN_FLAGS = FLAG_QUANTIZED | FLAG_SPARSE | _PROFILE_MASK

#: wire dtype code -> numpy little-endian dtype string
_DTYPE_CODES: Dict[int, str] = {0: "<f4", 1: "<f8"}
_DTYPE_TO_CODE = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}

_HEADER = struct.Struct("<4sHBB")
_CRC = struct.Struct("<I")


class WireFormatError(ValueError):
    """A frame failed decode-time validation (truncated, corrupt,
    version-mismatched, or structurally invalid)."""


@dataclass(frozen=True)
class TrainHyper:
    """The local-SGD hyper-parameters a dispatch ships to its worker."""

    lr: float
    momentum: float = 0.0
    weight_decay: float = 0.0
    prox_mu: float = 0.0
    clip_norm: Optional[float] = None


@dataclass
class DispatchPayload:
    """A decoded dispatch frame."""

    worker_id: int
    tau: int
    emulate_s: float
    hyper: TrainHyper
    plan: PruningPlan
    state: Dict[str, np.ndarray]
    #: profile the contribution reply must be encoded with
    reply_profile: str = "exact"
    #: top-k keep fraction for sparse replies (None when exact)
    reply_keep_fraction: Optional[float] = None
    #: quantization code width for sparse+quantized replies
    reply_quantize_bits: Optional[int] = None


@dataclass
class SparseTensor:
    """One tensor of a sparse contribution block.

    ``indices`` are flat C-order positions into the tensor.  Exactly
    one of ``values`` (exact trained values, ``sparse`` profile) and
    ``codes``/``scale`` (quantized deltas, ``sparse+quantized``) is
    populated.
    """

    shape: Tuple[int, ...]
    dtype: np.dtype
    indices: np.ndarray
    values: Optional[np.ndarray] = None
    codes: Optional[np.ndarray] = None
    scale: Optional[float] = None

    def overlay(self, base: np.ndarray) -> np.ndarray:
        """Dense tensor: ``base`` with this block applied on top."""
        base = np.asarray(base)
        if tuple(base.shape) != tuple(self.shape):
            raise WireFormatError(
                f"sparse overlay base shape {tuple(base.shape)} does not "
                f"match wire shape {tuple(self.shape)}"
            )
        out = base.astype(self.dtype, copy=True)
        flat = out.reshape(-1)
        if self.values is not None:
            flat[self.indices] = self.values
        else:
            flat[self.indices] = (
                flat[self.indices].astype(np.float64)
                + self.codes.astype(np.float64) * self.scale
            ).astype(self.dtype)
        return out


@dataclass
class ContributionPayload:
    """A decoded contribution frame.

    Dense frames populate ``state`` directly.  Sparse frames populate
    ``sparse`` instead; call :meth:`materialise` with the dispatched
    base state to obtain the dense trained state.
    """

    worker_id: int
    num_samples: int
    train_loss: float
    wall_time_s: float
    state: Optional[Dict[str, np.ndarray]] = None
    sparse: Optional[Dict[str, SparseTensor]] = field(
        default=None, repr=False)
    profile: str = "exact"

    def materialise(
        self, base: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Dense trained state; sparse frames need the dispatched base.

        The base is never mutated -- every tensor is copied before the
        sparse block is overlaid (callers routinely share one base dict
        across a whole cohort).
        """
        if self.sparse is None:
            return self.state
        if base is None:
            raise WireFormatError(
                f"a {self.profile!r} contribution needs the dispatched "
                f"base state to materialise"
            )
        missing = [key for key in self.sparse if key not in base]
        if missing:
            raise WireFormatError(
                f"sparse contribution references tensors absent from the "
                f"base state: {missing[:3]}"
            )
        return {
            key: entry.overlay(base[key])
            for key, entry in self.sparse.items()
        }


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class _Writer:
    def __init__(self) -> None:
        self._parts = [b""]  # placeholder for the header

    def header(self, kind: int, flags: int) -> None:
        self._parts[0] = _HEADER.pack(MAGIC, WIRE_VERSION, kind, flags)

    def pack(self, fmt: str, *values) -> None:
        self._parts.append(struct.pack("<" + fmt, *values))

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        if len(data) > 0xFFFF:
            raise WireFormatError(f"name too long for the wire: {text!r}")
        self.pack("H", len(data))
        self._parts.append(data)

    def array(self, values: np.ndarray, dtype: str) -> None:
        self._parts.append(np.ascontiguousarray(values, dtype=dtype).tobytes())

    def finish(self) -> bytes:
        body = b"".join(self._parts)
        return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
class _Reader:
    """Bounds-checked sequential reader over one frame's body."""

    def __init__(self, buf: memoryview) -> None:
        self._buf = buf
        self._pos = 0

    def take(self, count: int) -> memoryview:
        end = self._pos + count
        if count < 0 or end > len(self._buf):
            raise WireFormatError(
                f"truncated frame: wanted {count} byte(s) at offset "
                f"{self._pos}, {len(self._buf) - self._pos} available"
            )
        view = self._buf[self._pos:end]
        self._pos = end
        return view

    def unpack(self, fmt: str) -> Tuple:
        layout = struct.Struct("<" + fmt)
        return layout.unpack(self.take(layout.size))

    def string(self) -> str:
        (length,) = self.unpack("H")
        try:
            return bytes(self.take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid utf-8 name: {exc}") from exc

    def array(self, dtype: str, count: int) -> np.ndarray:
        itemsize = np.dtype(dtype).itemsize
        view = self.take(count * itemsize)
        return np.frombuffer(view, dtype=dtype).copy()

    def expect_exhausted(self) -> None:
        if self._pos != len(self._buf):
            raise WireFormatError(
                f"trailing garbage: {len(self._buf) - self._pos} "
                f"unread byte(s) after the body"
            )


# ----------------------------------------------------------------------
# plan block
# ----------------------------------------------------------------------
def _write_plan(writer: _Writer, plan: PruningPlan) -> None:
    layers = list(plan.items())
    writer.pack("I", len(layers))
    for name, entry in layers:
        writer.string(name)
        writer.pack("B", LAYER_KINDS.index(entry.kind))
        writer.pack("II", int(entry.out_full), int(entry.kept_out.size))
        writer.array(entry.kept_out, "<u4")
        if entry.kept_in is None:
            writer.pack("B", 0)
        else:
            writer.pack("B", 1)
            writer.pack("II", int(entry.in_full), int(entry.kept_in.size))
            writer.array(entry.kept_in, "<u4")


def _read_kept(reader: _Reader, full: int, count: int,
               axis: str, layer: str) -> np.ndarray:
    if count > full:
        raise WireFormatError(
            f"layer {layer!r}: {count} kept {axis} indices exceed the "
            f"full size {full}"
        )
    kept = reader.array("<u4", count).astype(np.intp)
    if count and int(kept.max()) >= full:
        raise WireFormatError(
            f"layer {layer!r}: kept {axis} index {int(kept.max())} out of "
            f"range for full size {full}"
        )
    return kept


def _read_plan(reader: _Reader, ratio: float) -> PruningPlan:
    (num_layers,) = reader.unpack("I")
    plan = PruningPlan(ratio=ratio)
    for _ in range(num_layers):
        name = reader.string()
        (kind_index,) = reader.unpack("B")
        if kind_index >= len(LAYER_KINDS):
            raise WireFormatError(
                f"layer {name!r}: unknown layer-kind code {kind_index}"
            )
        out_full, out_count = reader.unpack("II")
        kept_out = _read_kept(reader, out_full, out_count, "output", name)
        (has_in,) = reader.unpack("B")
        kept_in = None
        in_full = None
        if has_in:
            in_full, in_count = reader.unpack("II")
            kept_in = _read_kept(reader, in_full, in_count, "input", name)
        try:
            plan.add(name, LayerPrune(
                kind=LAYER_KINDS[kind_index], kept_out=kept_out,
                out_full=out_full, kept_in=kept_in, in_full=in_full,
            ))
        except ValueError as exc:
            raise WireFormatError(f"invalid plan entry: {exc}") from exc
    return plan


# ----------------------------------------------------------------------
# tensor block
# ----------------------------------------------------------------------
def _write_state(writer: _Writer, state: Dict[str, np.ndarray],
                 quantize_bits: Optional[int]) -> None:
    quantized = (
        quantize_state_dict(state, bits=quantize_bits)
        if quantize_bits is not None else None
    )
    writer.pack("I", len(state))
    for key, value in state.items():
        value = np.asarray(value)
        code = _DTYPE_TO_CODE.get(value.dtype)
        if code is None:
            raise WireFormatError(
                f"tensor {key!r}: unsupported wire dtype {value.dtype}"
            )
        writer.string(key)
        writer.pack("BB", code, value.ndim)
        writer.pack("I" * value.ndim, *value.shape)
        if quantized is None:
            writer.array(value, _DTYPE_CODES[code])
        else:
            writer.pack("Bd", quantized.bits, quantized.scales[key])
            writer.array(quantized.codes[key], "<i2")


def _check_quant_params(key: str, bits: int, scale: float) -> int:
    """Validate a quantized record's parameters; returns the level cap.

    Scales are produced by :func:`repro.pruning.quantize.quantize_array`
    and are finite and strictly positive by construction -- anything
    else on the wire is corruption and must not silently dequantize to
    NaN/Inf garbage.
    """
    if not 2 <= bits <= 16:
        raise WireFormatError(
            f"tensor {key!r}: quantization bits {bits} out of range"
        )
    if not (np.isfinite(scale) and scale > 0.0):
        raise WireFormatError(
            f"tensor {key!r}: quantization scale {scale!r} out of range "
            f"(must be finite and > 0)"
        )
    return 2 ** (bits - 1) - 1


def _check_codes(key: str, codes: np.ndarray, levels: int) -> None:
    if codes.size and int(np.abs(codes).max()) > levels:
        raise WireFormatError(
            f"tensor {key!r}: quantization code "
            f"{int(np.abs(codes).max())} exceeds the {levels}-level cap"
        )


def _read_state(reader: _Reader,
                quantized: bool) -> Dict[str, np.ndarray]:
    (num_tensors,) = reader.unpack("I")
    state: Dict[str, np.ndarray] = {}
    for _ in range(num_tensors):
        key = reader.string()
        if key in state:
            raise WireFormatError(f"duplicate tensor {key!r}")
        code, ndim = reader.unpack("BB")
        if code not in _DTYPE_CODES:
            raise WireFormatError(
                f"tensor {key!r}: unknown dtype code {code}"
            )
        shape = reader.unpack("I" * ndim) if ndim else ()
        count = 1
        for dim in shape:
            count *= dim
        if quantized:
            bits, scale = reader.unpack("Bd")
            levels = _check_quant_params(key, bits, scale)
            codes = reader.array("<i2", count)
            _check_codes(key, codes, levels)
            value = (codes.astype(np.float64) * scale).astype(
                _DTYPE_CODES[code]
            )
        else:
            value = reader.array(_DTYPE_CODES[code], count)
        state[key] = value.reshape(shape)
    return state


# ----------------------------------------------------------------------
# sparse delta block (contribution frames)
# ----------------------------------------------------------------------
def _sparse_select(state: Dict[str, np.ndarray],
                   base: Dict[str, np.ndarray],
                   keep_fraction: float) -> Dict[str, np.ndarray]:
    """Flat C-order indices of the top-k moved positions, per tensor.

    Reuses the FlexCom top-k selection (global magnitude threshold over
    the concatenated delta, deterministic positional tie-break) so the
    wire's kept count agrees with the engine's upload pricing.
    """
    # function-level import: repro.fl pulls in the engine, which imports
    # this module -- a top-level import would be a cycle
    from repro.fl.compression import top_k_sparsify

    if set(state) != set(base):
        raise WireFormatError(
            f"sparse encode: trained and base states carry different "
            f"tensors ({sorted(set(state) ^ set(base))[:3]})"
        )
    delta = {}
    for key, value in state.items():
        value = np.asarray(value)
        anchor = np.asarray(base[key])
        if value.shape != anchor.shape:
            raise WireFormatError(
                f"sparse encode: tensor {key!r} shape {value.shape} does "
                f"not match its base {anchor.shape}"
            )
        delta[key] = value.astype(np.float64) - anchor.astype(np.float64)
    sparsified, _ = top_k_sparsify(delta, keep_fraction)
    return {
        key: np.flatnonzero(sparsified[key].reshape(-1))
        for key in state
    }


def _write_sparse_state(writer: _Writer, state: Dict[str, np.ndarray],
                        base: Dict[str, np.ndarray], *,
                        keep_fraction: float,
                        quantize_bits: Optional[int]) -> None:
    if not 0.0 < keep_fraction <= 1.0:
        raise WireFormatError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    kept = _sparse_select(state, base, keep_fraction)
    writer.pack("I", len(state))
    for key, value in state.items():
        value = np.asarray(value)
        code = _DTYPE_TO_CODE.get(value.dtype)
        if code is None:
            raise WireFormatError(
                f"tensor {key!r}: unsupported wire dtype {value.dtype}"
            )
        indices = kept[key]
        writer.string(key)
        writer.pack("BB", code, value.ndim)
        writer.pack("I" * value.ndim, *value.shape)
        writer.pack("I", int(indices.size))
        writer.array(indices, "<u4")
        if quantize_bits is None:
            writer.array(value.reshape(-1)[indices], _DTYPE_CODES[code])
        else:
            deltas = (
                value.reshape(-1)[indices].astype(np.float64)
                - np.asarray(base[key]).reshape(-1)[indices]
                .astype(np.float64)
            )
            codes, scale = quantize_array(deltas, quantize_bits)
            writer.pack("Bd", quantize_bits, scale)
            writer.array(codes, "<i2")


def _read_sparse_state(reader: _Reader,
                       quantized: bool) -> Dict[str, SparseTensor]:
    (num_tensors,) = reader.unpack("I")
    out: Dict[str, SparseTensor] = {}
    for _ in range(num_tensors):
        key = reader.string()
        if key in out:
            raise WireFormatError(f"duplicate tensor {key!r}")
        code, ndim = reader.unpack("BB")
        if code not in _DTYPE_CODES:
            raise WireFormatError(
                f"tensor {key!r}: unknown dtype code {code}"
            )
        shape = reader.unpack("I" * ndim) if ndim else ()
        count = 1
        for dim in shape:
            count *= dim
        (kept,) = reader.unpack("I")
        if kept > count:
            raise WireFormatError(
                f"tensor {key!r}: {kept} sparse indices exceed the "
                f"tensor's {count} element(s)"
            )
        indices = reader.array("<u4", kept).astype(np.intp)
        if kept:
            if int(indices[-1]) >= count:
                raise WireFormatError(
                    f"tensor {key!r}: sparse index {int(indices[-1])} out "
                    f"of range for {count} element(s)"
                )
            if kept > 1 and not np.all(np.diff(indices) > 0):
                raise WireFormatError(
                    f"tensor {key!r}: sparse indices are not strictly "
                    f"increasing"
                )
        entry = SparseTensor(
            shape=tuple(int(dim) for dim in shape),
            dtype=np.dtype(_DTYPE_CODES[code]), indices=indices,
        )
        if quantized:
            bits, scale = reader.unpack("Bd")
            levels = _check_quant_params(key, bits, scale)
            entry.codes = reader.array("<i2", kept)
            _check_codes(key, entry.codes, levels)
            entry.scale = float(scale)
        else:
            entry.values = reader.array(_DTYPE_CODES[code], kept)
        out[key] = entry
    return out


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def _clip_to_wire(clip_norm: Optional[float]) -> float:
    return float("nan") if clip_norm is None else float(clip_norm)


def _clip_from_wire(value: float) -> Optional[float]:
    return None if np.isnan(value) else float(value)


def encode_dispatch(worker_id: int, plan: PruningPlan,
                    state: Dict[str, np.ndarray], *, tau: int,
                    hyper: TrainHyper, emulate_s: float = 0.0,
                    quantize_bits: Optional[int] = None,
                    reply_profile: str = "exact",
                    reply_keep_fraction: Optional[float] = None,
                    reply_quantize_bits: Optional[int] = None) -> bytes:
    """Encode one PS -> worker dispatch frame.

    ``reply_profile`` negotiates how the worker must encode its
    contribution; non-exact profiles additionally ship the top-k keep
    fraction and (for ``sparse+quantized``) the code width.  An exact
    dispatch is byte-identical to a pre-negotiation frame.
    """
    if reply_profile not in _PROFILE_CODES:
        raise WireFormatError(
            f"unknown wire profile {reply_profile!r} "
            f"(expected one of {WIRE_PROFILES})"
        )
    writer = _Writer()
    flags = FLAG_QUANTIZED if quantize_bits is not None else 0
    flags |= _PROFILE_CODES[reply_profile] << _PROFILE_SHIFT
    writer.header(KIND_DISPATCH, flags)
    writer.pack("II", worker_id, tau)
    writer.pack("d", float(emulate_s))
    writer.pack("ddddd", hyper.lr, hyper.momentum, hyper.weight_decay,
                hyper.prox_mu, _clip_to_wire(hyper.clip_norm))
    if reply_profile != "exact":
        keep = 0.25 if reply_keep_fraction is None else reply_keep_fraction
        if not 0.0 < keep <= 1.0:
            raise WireFormatError(
                f"reply_keep_fraction must be in (0, 1], got {keep}"
            )
        bits = 8 if reply_quantize_bits is None else reply_quantize_bits
        if not 2 <= bits <= 16:
            raise WireFormatError(
                f"reply_quantize_bits must be in [2, 16], got {bits}"
            )
        writer.pack("dB", float(keep), bits)
    writer.pack("d", float(plan.ratio))
    _write_plan(writer, plan)
    _write_state(writer, state, quantize_bits)
    return writer.finish()


def encode_contribution(worker_id: int, state: Dict[str, np.ndarray], *,
                        train_loss: float, wall_time_s: float,
                        num_samples: int = 1,
                        quantize_bits: Optional[int] = None,
                        profile: str = "exact",
                        base: Optional[Dict[str, np.ndarray]] = None,
                        keep_fraction: float = 0.25) -> bytes:
    """Encode one worker -> PS contribution frame.

    Sparse profiles need ``base`` -- the dispatched state the receiver
    also holds -- to pick the top-k moved positions (and, for
    ``sparse+quantized``, to form the delta codes).  ``quantize_bits``
    selects dense quantization under ``exact`` and the delta code
    width under ``sparse+quantized``.
    """
    if profile not in _PROFILE_CODES:
        raise WireFormatError(
            f"unknown wire profile {profile!r} "
            f"(expected one of {WIRE_PROFILES})"
        )
    writer = _Writer()
    if profile == "exact":
        flags = FLAG_QUANTIZED if quantize_bits is not None else 0
    else:
        if base is None:
            raise WireFormatError(
                f"a {profile!r} contribution needs the dispatched base "
                f"state to encode"
            )
        flags = FLAG_SPARSE
        if profile == "sparse+quantized":
            flags |= FLAG_QUANTIZED
    writer.header(KIND_CONTRIBUTION, flags)
    writer.pack("II", worker_id, num_samples)
    writer.pack("dd", float(train_loss), float(wall_time_s))
    if profile == "exact":
        _write_state(writer, state, quantize_bits)
    else:
        _write_sparse_state(
            writer, state, base, keep_fraction=keep_fraction,
            quantize_bits=(
                (8 if quantize_bits is None else quantize_bits)
                if profile == "sparse+quantized" else None
            ),
        )
    return writer.finish()


def _open_frame(frame: bytes, expected_kind: int) -> Tuple[_Reader, int]:
    if len(frame) < _HEADER.size + _CRC.size:
        raise WireFormatError(
            f"frame too short: {len(frame)} byte(s), need at least "
            f"{_HEADER.size + _CRC.size}"
        )
    (stored_crc,) = _CRC.unpack(frame[-_CRC.size:])
    actual_crc = zlib.crc32(frame[:-_CRC.size]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise WireFormatError(
            f"CRC mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    magic, version, kind, flags = _HEADER.unpack(frame[:_HEADER.size])
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this codec speaks "
            f"{WIRE_VERSION})"
        )
    if kind != expected_kind:
        raise WireFormatError(
            f"wrong frame kind {kind} (expected {expected_kind})"
        )
    if flags & ~_KNOWN_FLAGS:
        raise WireFormatError(
            f"unknown flag bits {flags & ~_KNOWN_FLAGS:#04x} set "
            f"(flags {flags:#04x})"
        )
    body = memoryview(frame)[_HEADER.size:-_CRC.size]
    return _Reader(body), flags


def frame_kind(frame: bytes) -> int:
    """The kind code of a frame, after validating magic and version
    (but not the CRC)."""
    if len(frame) < _HEADER.size:
        raise WireFormatError("frame shorter than the header")
    magic, version, kind, _ = _HEADER.unpack(frame[:_HEADER.size])
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    return kind


def decode_dispatch(frame: bytes) -> DispatchPayload:
    """Decode and validate one dispatch frame."""
    reader, flags = _open_frame(frame, KIND_DISPATCH)
    if flags & FLAG_SPARSE:
        raise WireFormatError(
            "dispatch frames cannot be sparse (FLAG_SPARSE set)"
        )
    profile_code = (flags & _PROFILE_MASK) >> _PROFILE_SHIFT
    if profile_code >= len(WIRE_PROFILES):
        raise WireFormatError(
            f"unknown reply-profile code {profile_code}"
        )
    reply_profile = WIRE_PROFILES[profile_code]
    worker_id, tau = reader.unpack("II")
    (emulate_s,) = reader.unpack("d")
    lr, momentum, weight_decay, prox_mu, clip = reader.unpack("ddddd")
    reply_keep_fraction = None
    reply_quantize_bits = None
    if reply_profile != "exact":
        keep, bits = reader.unpack("dB")
        if not 0.0 < keep <= 1.0:
            raise WireFormatError(
                f"reply keep fraction {keep!r} out of range (0, 1]"
            )
        if not 2 <= bits <= 16:
            raise WireFormatError(
                f"reply quantization bits {bits} out of range [2, 16]"
            )
        reply_keep_fraction = float(keep)
        reply_quantize_bits = int(bits)
    (ratio,) = reader.unpack("d")
    plan = _read_plan(reader, ratio)
    state = _read_state(reader, bool(flags & FLAG_QUANTIZED))
    reader.expect_exhausted()
    return DispatchPayload(
        worker_id=worker_id, tau=tau, emulate_s=emulate_s,
        hyper=TrainHyper(lr=lr, momentum=momentum,
                         weight_decay=weight_decay, prox_mu=prox_mu,
                         clip_norm=_clip_from_wire(clip)),
        plan=plan, state=state, reply_profile=reply_profile,
        reply_keep_fraction=reply_keep_fraction,
        reply_quantize_bits=reply_quantize_bits,
    )


def decode_contribution(frame: bytes,
                        expect_profile: Optional[str] = None,
                        ) -> ContributionPayload:
    """Decode and validate one contribution frame.

    ``expect_profile`` enforces the negotiated reply profile: a frame
    whose flags disagree is rejected rather than trusted.  (A dense
    quantized frame -- ``FLAG_QUANTIZED`` without ``FLAG_SPARSE`` --
    still counts as the ``exact`` profile family for negotiation
    purposes, since no profile negotiates it.)
    """
    reader, flags = _open_frame(frame, KIND_CONTRIBUTION)
    if flags & _PROFILE_MASK:
        raise WireFormatError(
            "contribution frames must not carry reply-profile bits"
        )
    if flags & FLAG_SPARSE:
        profile = (
            "sparse+quantized" if flags & FLAG_QUANTIZED else "sparse"
        )
    else:
        profile = "exact"
    if expect_profile is not None and profile != expect_profile:
        raise WireFormatError(
            f"profile mismatch: frame is {profile!r}, negotiated "
            f"{expect_profile!r}"
        )
    worker_id, num_samples = reader.unpack("II")
    train_loss, wall_time_s = reader.unpack("dd")
    if profile == "exact":
        state = _read_state(reader, bool(flags & FLAG_QUANTIZED))
        sparse = None
    else:
        state = None
        sparse = _read_sparse_state(
            reader, bool(flags & FLAG_QUANTIZED)
        )
    reader.expect_exhausted()
    return ContributionPayload(
        worker_id=worker_id, num_samples=num_samples,
        train_loss=train_loss, wall_time_s=wall_time_s, state=state,
        sparse=sparse, profile=profile,
    )
