"""Shared-memory template segments for the process executor.

The pool path ships each pruned sub-model template to every child
exactly once per plan signature.  Pickling the template into the pipe
per member made templates the dominant wire cost (BENCH_parallel
recorded ~88 MB of template frames against ~65 MB of dispatches), so
templates now travel out-of-band: the parent pickles the template once
into a :class:`multiprocessing.shared_memory.SharedMemory` segment and
sends only ``(name, size)`` down the pipe; children attach, unpickle
and detach.  The pipe never carries template bytes again for that
signature, and N members attach the same physical pages.

Lifecycle
---------
- **create**: parent calls :func:`create_segment`; the segment is
  recorded in a module-level registry so it can always be found again.
- **attach/read**: children call :func:`read_segment`, which attaches,
  unpickles and closes in one scope.  Attaching from a child must not
  hand the segment to that child's ``resource_tracker`` -- on 3.12 and
  earlier the tracker registers on *attach* as well as create, and
  would unlink the segment when the first child exits.  ``track=False``
  exists only from 3.13, so :func:`read_segment` falls back to
  unregistering by hand.
- **unlink**: only the parent unlinks, via :func:`unlink_segment` /
  :func:`unlink_all` -- after the round's gather completes (no train
  message is then in flight, so no child can race an attach against the
  unlink) or from ``ProcessExecutor.close``.  An ``atexit`` hook covers
  interpreter teardown paths that skip ``close`` (crashed workers,
  test errors), so a killed child never strands ``/dev/shm`` entries.

:func:`leaked_segments` scans ``/dev/shm`` for this module's name
prefix so tests can assert the no-leak guarantee directly.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Tuple

__all__ = [
    "SEGMENT_PREFIX",
    "create_segment",
    "read_segment",
    "unlink_segment",
    "unlink_all",
    "leaked_segments",
]

#: every segment this module creates is named ``<prefix><random hex>``
SEGMENT_PREFIX = "repro-wire-"

#: live segments created by this process, keyed by segment name
_LIVE: Dict[str, shared_memory.SharedMemory] = {}


def create_segment(payload: object) -> Tuple[str, int]:
    """Pickle ``payload`` into a fresh segment; returns ``(name, size)``.

    ``size`` is the pickle's logical length -- the kernel rounds the
    segment itself up to a page, so readers must slice to ``size``.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    name = SEGMENT_PREFIX + secrets.token_hex(8)
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, len(blob))
    )
    segment.buf[: len(blob)] = blob
    _LIVE[segment.name] = segment
    return segment.name, len(blob)


def read_segment(name: str, size: int) -> object:
    """Attach to a segment, unpickle its payload and detach.

    Safe to call from pool children: the attach is scrubbed from the
    resource tracker so child exit never unlinks a segment the parent
    still owns.
    """
    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= keyword
        # suppress the attach-time register entirely: registering and
        # then unregistering would race other attachers of the same
        # name (the tracker's cache is a set, so the second unregister
        # logs a KeyError traceback)
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    try:
        payload = pickle.loads(bytes(segment.buf[:size]))
    finally:
        segment.close()
    return payload


def unlink_segment(name: str) -> None:
    """Close and unlink one of this process's segments (idempotent)."""
    segment = _LIVE.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def unlink_all() -> None:
    """Close and unlink every live segment this process created."""
    for name in list(_LIVE):
        unlink_segment(name)


def leaked_segments() -> List[str]:
    """Names of this module's segments still present in ``/dev/shm``."""
    try:
        entries = os.listdir("/dev/shm")
    except FileNotFoundError:  # non-Linux: nothing we can scan
        return []
    return sorted(
        entry for entry in entries if entry.startswith(SEGMENT_PREFIX)
    )


atexit.register(unlink_all)
