"""The engine's execution seam: serial (inline) or process-pool training.

Schedulers hand the engine a batch of dispatches; the engine turns them
into :class:`TrainRequest` records and submits them through its
executor.  :class:`SerialExecutor` preserves the historical inline
behaviour exactly (same call order, same RNG consumption, same
telemetry spans).  :class:`ProcessExecutor` encodes each request with
the wire codec, fans it out to a persistent
:class:`~repro.runtime.pool.ProcessPool`, gathers the contribution
frames, and decodes them -- with per-round ``serialize`` / ``transfer``
/ ``parallel_train`` spans and ``wire_bytes_total`` /
``retries_total`` / ``stragglers_total`` counters.

Both executors return the same :class:`TrainResult` list in submission
order, and both are bitwise-identical to each other: the only state a
training round consumes in the child -- the iterator RNG stream -- is
reconstructed there from the worker's spec, and trained states travel
back as exact ``float32`` payloads.
"""

from __future__ import annotations

import copy
import pickle
import time
from collections import OrderedDict, deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_for_connections
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.loader import BatchIterator
from repro.nn.batched import train_cohort
from repro.pruning.plan import plan_signature, plan_signature_digest
from repro.runtime import shm
from repro.runtime.codec import (
    WIRE_PROFILES,
    TrainHyper,
    decode_contribution,
    encode_dispatch,
)
from repro.runtime.pool import ProcessPool, WorkerSpec
from repro.runtime.transport import (
    LocalTransport,
    ProcessTransport,
    RetryPolicy,
    TransportError,
    TransportTimeoutError,
    WorkerCrashError,
)
from repro.telemetry.runtime import DISABLED_TELEMETRY, Telemetry

__all__ = [
    "TrainRequest",
    "TrainResult",
    "CohortTrainRequest",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
]


@dataclass
class TrainRequest:
    """One unit of local training, as the executor sees it."""

    worker_id: int
    ratio: float
    tau: int
    plan: object
    submodel: object
    dispatched_state: Dict[str, np.ndarray]
    hyper: TrainHyper
    #: real seconds of device-latency emulation (0 disables; see
    #: ``FLConfig.emulate_device_factor``)
    emulate_s: float = 0.0


@dataclass
class TrainResult:
    """One unit of finished local training."""

    worker_id: int
    sub_state: Dict[str, np.ndarray]
    train_loss: float
    wall_time_s: float = 0.0


@dataclass
class CohortTrainRequest:
    """One cohort's worth of local training (see ``repro.fl.cohort``).

    The shared template/state/plan live on ``cohort``; per-member
    scalars ride alongside, aligned with ``worker_ids``.
    """

    cohort: object
    worker_ids: List[int]
    taus: List[int]
    hyper: TrainHyper
    emulate_s: List[float] = field(default_factory=list)


class Executor:
    """Runs batches of training requests; returns results in order."""

    name = "base"

    def __init__(self) -> None:
        #: worker ids the straggler heartbeat flagged in the most
        #: recent batch (always empty for serial execution)
        self.last_stragglers: List[int] = []

    def run(self, requests: Sequence[TrainRequest],
            round_index: int = 0) -> List[TrainResult]:
        raise NotImplementedError

    def run_cohort(self, request: CohortTrainRequest,
                   round_index: int = 0) -> List[TrainResult]:
        """Train one cohort; results align with ``request.worker_ids``.

        The base route decomposes the cohort into per-member
        :class:`TrainRequest` records -- cloning the shared template
        exactly the way per-member dispatch would have (deep-copy +
        pristine-state reload, so results stay bitwise identical) --
        and delegates to :meth:`run`.  Subclasses may override with a
        genuinely cohort-level execution (see
        :meth:`SerialExecutor.run_cohort`).
        """
        return self.run(self._decompose(request), round_index)

    @staticmethod
    def _decompose(request: CohortTrainRequest) -> List[TrainRequest]:
        cohort = request.cohort
        emulate = request.emulate_s or [0.0] * len(request.worker_ids)
        requests = []
        for worker_id, tau, emulate_s in zip(
            request.worker_ids, request.taus, emulate
        ):
            clone = copy.deepcopy(cohort.template)
            clone.load_state_dict(cohort.dispatched_state)
            requests.append(TrainRequest(
                worker_id=worker_id, ratio=cohort.ratio, tau=tau,
                plan=cohort.plan, submodel=clone,
                dispatched_state=cohort.dispatched_state,
                hyper=request.hyper, emulate_s=emulate_s,
            ))
        return requests

    def capture_worker_states(self) -> Dict[int, Dict[str, object]]:
        """Worker runtime states that live on THIS executor's side.

        Serial execution trains on the engine's own workers, so there
        is nothing extra to report (the engine captures them
        directly); the process executor overrides this to pull each
        child's advanced RNG/iterator streams for checkpointing.
        """
        return {}

    def close(self) -> None:
        """Release executor resources (no-op by default)."""


class SerialExecutor(Executor):
    """Inline execution on the parent's workers (the default).

    Behaviour-preserving with the pre-executor engine: one
    ``local_train`` span per request, profiler attachment for the
    matched worker, training mutates the dispatched sub-model in
    place.
    """

    name = "serial"

    def __init__(self, workers: Dict[int, object],
                 telemetry: Optional[Telemetry] = None) -> None:
        super().__init__()
        self.workers = workers
        self.telemetry = (
            telemetry if telemetry is not None else DISABLED_TELEMETRY
        )
        self._transport = LocalTransport(self._execute)

    def run(self, requests: Sequence[TrainRequest],
            round_index: int = 0) -> List[TrainResult]:
        results = []
        for request in requests:
            with self.telemetry.span("local_train", round=round_index,
                                     worker=request.worker_id,
                                     tau=request.tau,
                                     ratio=request.ratio) as span:
                profiler = self.telemetry.profiler
                profile_ctx = (
                    profiler.attach(request.submodel)
                    if profiler is not None
                    and profiler.matches(request.worker_id)
                    else nullcontext()
                )
                with profile_ctx:
                    result = self._transport.request(request)
                span.set("train_loss", float(result.train_loss))
            results.append(result)
        return results

    def run_cohort(self, request: CohortTrainRequest,
                   round_index: int = 0) -> List[TrainResult]:
        """Train one cohort, stacked into a single batched pass when the
        architecture and request allow it (one forward/backward per step
        for the whole cohort instead of per member; bitwise-identical,
        see :mod:`repro.nn.batched`).  Ineligible cohorts fall back to
        the per-member decomposition.
        """
        if not self._vectorisable(request):
            metrics = self.telemetry.metrics
            metrics.counter(
                "cohort_train_fallback_total",
            ).inc(len(request.worker_ids))
            start = time.perf_counter()
            results = super().run_cohort(request, round_index)
            metrics.histogram("cohort_train_s", path="fallback").observe(
                time.perf_counter() - start
            )
            return results

        cohort = request.cohort
        hyper = request.hyper
        tau = request.taus[0]
        iterators = [
            self.workers[worker_id].iterator
            for worker_id in request.worker_ids
        ]
        with self.telemetry.span(
            "cohort_train", round=round_index, ratio=cohort.ratio,
            cluster=cohort.cluster, members=len(request.worker_ids),
            tau=tau,
        ) as span:
            if self.telemetry.tracer.enabled:
                span.set("path", "vectorised")
                span.set("plan_sig", plan_signature_digest(cohort.plan))
            start = time.perf_counter()
            states, losses = train_cohort(
                cohort.template, cohort.dispatched_state, iterators, tau,
                lr=hyper.lr, momentum=hyper.momentum,
                weight_decay=hyper.weight_decay, prox_mu=hyper.prox_mu,
                clip_norm=hyper.clip_norm,
                anchor=cohort.dispatched_state,
            )
            elapsed = time.perf_counter() - start
            span.set("mean_train_loss",
                     float(sum(losses) / len(losses)))
        self.telemetry.metrics.counter(
            "cohort_train_vectorised_total",
        ).inc(len(request.worker_ids))
        self.telemetry.metrics.histogram(
            "cohort_train_s", path="vectorised",
        ).observe(elapsed)
        per_member = elapsed / len(request.worker_ids)
        return [
            TrainResult(worker_id=worker_id, sub_state=state,
                        train_loss=float(loss), wall_time_s=per_member)
            for worker_id, state, loss in zip(
                request.worker_ids, states, losses
            )
        ]

    def _vectorisable(self, request: CohortTrainRequest) -> bool:
        """The stacked path needs >=2 members, a supported architecture,
        uniform tau, no device-latency emulation, no attached profiler
        (it instruments per-member modules), and plain equal-batch
        :class:`~repro.data.loader.BatchIterator` shards."""
        cohort = request.cohort
        if len(request.worker_ids) < 2 or not cohort.supports_vectorised:
            return False
        if len(set(request.taus)) != 1:
            return False
        if any(emulate_s > 0.0 for emulate_s in request.emulate_s):
            return False
        if self.telemetry.profiler is not None:
            return False
        iterators = [
            self.workers[worker_id].iterator
            for worker_id in request.worker_ids
        ]
        if any(type(it) is not BatchIterator for it in iterators):
            return False
        return len({it.batch_size for it in iterators}) == 1

    def _execute(self, request: TrainRequest) -> TrainResult:
        worker = self.workers[request.worker_id]
        hyper = request.hyper
        start = time.perf_counter()
        if request.emulate_s > 0.0:
            time.sleep(request.emulate_s)
        train_loss = worker.local_train(
            request.submodel, tau=request.tau, lr=hyper.lr,
            momentum=hyper.momentum, weight_decay=hyper.weight_decay,
            prox_mu=hyper.prox_mu, clip_norm=hyper.clip_norm,
            anchor=request.dispatched_state,
        )
        return TrainResult(
            worker_id=request.worker_id,
            sub_state=request.submodel.state_dict(),
            train_loss=float(train_loss),
            wall_time_s=time.perf_counter() - start,
        )


#: template-cache key: two plans with the same signature produce
#: structurally identical sub-models, so a child may clone a cached
#: template instead of unpickling a fresh module graph (now shared
#: with cohort bucketing via :mod:`repro.pruning.plan`)
_plan_signature = plan_signature


@dataclass
class _InFlight:
    """Book-keeping for one outstanding train request."""

    request: TrainRequest
    member_index: int
    frame: Optional[bytes] = field(default=None, repr=False)


class ProcessExecutor(Executor):
    """Process-pool execution behind the wire codec.

    ``pickle_submodels=True`` ships the actual extracted module graph
    with every dispatch instead of cloning a cached template in the
    child.  The engine sets it for models with RNG-bearing modules
    (e.g. ``Dropout``): their per-module generators are consumed
    during the forward pass, so a child-side template clone would not
    carry the same generator state as the parent's extraction.

    Templates otherwise travel through shared memory: one segment per
    plan signature (see :mod:`repro.runtime.shm`), attached by every
    child that needs it, so template wire bytes are paid once per
    signature instead of once per pool member.  The segment store is
    an LRU bounded by ``template_cache_limit`` -- adaptive ratios mint
    fresh signatures every round, and an unbounded store (the pre-fix
    ``_cached_templates`` behaviour) leaks for the whole run.
    Evictions unlink the segment after the round's gather (no train
    message is in flight then, so no child can race the unlink) and
    piggyback drop notices onto each member's next train message so
    child-side caches shrink too.

    ``wire_profile`` selects how children encode contributions:
    ``exact`` (dense float32, bitwise parity), ``sparse`` (top-k moved
    positions, exact at shipped positions) or ``sparse+quantized``
    (top-k quantized deltas).  The profile rides in the dispatch frame
    flags and replies are validated against it.
    """

    name = "process"

    def __init__(self, specs: Sequence[WorkerSpec],
                 num_procs: Optional[int] = None,
                 telemetry: Optional[Telemetry] = None,
                 pickle_submodels: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 straggler_quorum: float = 0.85,
                 straggler_multiplier: float = 1.5,
                 start_method: Optional[str] = None,
                 wire_profile: str = "exact",
                 wire_keep_fraction: float = 0.25,
                 wire_quantize_bits: int = 8,
                 template_cache_limit: int = 8) -> None:
        super().__init__()
        from repro.runtime.transport import StragglerDetector

        if wire_profile not in WIRE_PROFILES:
            raise ValueError(
                f"wire_profile must be one of {WIRE_PROFILES}, "
                f"got {wire_profile!r}"
            )
        if template_cache_limit < 1:
            raise ValueError(
                f"template_cache_limit must be >= 1, "
                f"got {template_cache_limit}"
            )
        self.telemetry = (
            telemetry if telemetry is not None else DISABLED_TELEMETRY
        )
        self.pickle_submodels = pickle_submodels
        self.wire_profile = wire_profile
        self.wire_keep_fraction = wire_keep_fraction
        self.wire_quantize_bits = wire_quantize_bits
        self.template_cache_limit = template_cache_limit
        self.retry = retry if retry is not None else RetryPolicy()
        self.pool = ProcessPool(list(specs), num_procs=num_procs,
                                start_method=start_method)
        metrics = self.telemetry.metrics
        self.transports = {
            member.index: ProcessTransport(member, retry=self.retry,
                                           metrics=metrics)
            for member in self.pool.members
        }
        self.detector = StragglerDetector(straggler_quorum,
                                          straggler_multiplier)
        self._seq = 0
        self._cached_templates: Dict[int, set] = {
            member.index: set() for member in self.pool.members
        }
        #: plan signature -> (segment name, payload size), LRU order
        self._template_segments: "OrderedDict[object, Tuple[str, int]]" = (
            OrderedDict()
        )
        #: evicted segment names awaiting a safe (post-gather) unlink
        self._retired_segments: List[str] = []
        #: member index -> template keys to drop on its next message
        self._pending_drops: Dict[int, set] = {}
        # handshake: surface a child that died during start-up as a
        # typed transport error instead of a hung first round
        for member in self.pool.members:
            self.transports[member.index].request(
                ("ping", self._next_seq(), 0.0)
            )

    @property
    def parallelism(self) -> int:
        return len(self.pool.members)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _template_segment(self, key: object,
                          submodel: object) -> Tuple[str, int]:
        """Segment ``(name, size)`` for a plan signature, creating (and
        LRU-evicting) as needed.  Template wire bytes are charged here,
        once per created segment -- never per member."""
        segments = self._template_segments
        if key in segments:
            segments.move_to_end(key)
            return segments[key]
        name, size = shm.create_segment(submodel)
        segments[key] = (name, size)
        metrics = self.telemetry.metrics
        metrics.counter("wire_bytes_total", kind="template").inc(size)
        while len(segments) > self.template_cache_limit:
            old_key, (old_name, _) = segments.popitem(last=False)
            self._retired_segments.append(old_name)
            metrics.counter("dispatch_cache_evictions_total").inc()
            for index, seen in self._cached_templates.items():
                if old_key in seen:
                    seen.discard(old_key)
                    self._pending_drops.setdefault(
                        index, set()
                    ).add(old_key)
        return name, size

    def _unlink_retired(self) -> None:
        for name in self._retired_segments:
            shm.unlink_segment(name)
        self._retired_segments.clear()

    def run(self, requests: Sequence[TrainRequest],
            round_index: int = 0) -> List[TrainResult]:
        if not requests:
            return []
        telemetry = self.telemetry
        metrics = telemetry.metrics
        self.last_stragglers = []
        with telemetry.span("parallel_train", round=round_index,
                            requests=len(requests),
                            procs=self.parallelism) as batch_span:
            # -- serialize ----------------------------------------------
            pending: Dict[int, _InFlight] = {}
            queues: Dict[int, deque] = {}
            profile = self.wire_profile
            with telemetry.span("serialize", round=round_index,
                                requests=len(requests)):
                for request in requests:
                    member = self.pool.by_worker[request.worker_id]
                    frame = encode_dispatch(
                        request.worker_id, request.plan,
                        request.dispatched_state, tau=request.tau,
                        hyper=request.hyper, emulate_s=request.emulate_s,
                        reply_profile=profile,
                        reply_keep_fraction=(
                            self.wire_keep_fraction
                            if profile != "exact" else None
                        ),
                        reply_quantize_bits=(
                            self.wire_quantize_bits
                            if profile != "exact" else None
                        ),
                    )
                    key = _plan_signature(request.plan)
                    if self.pickle_submodels:
                        blob = pickle.dumps(
                            request.submodel,
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                        metrics.counter("wire_bytes_total",
                                        kind="template").inc(len(blob))
                        template = ("blob", blob)
                    elif key in self._cached_templates[member.index]:
                        template = ("cached", key)
                    else:
                        name, size = self._template_segment(
                            key, request.submodel
                        )
                        self._cached_templates[member.index].add(key)
                        template = ("shm", key, name, size)
                    drops = self._pending_drops.pop(member.index, None)
                    seq = self._next_seq()
                    metrics.counter("wire_bytes_total",
                                    kind="dispatch").inc(len(frame))
                    queues.setdefault(member.index, deque()).append(
                        (seq, ("train", seq, frame, template,
                               tuple(drops) if drops else ()))
                    )
                    pending[seq] = _InFlight(request=request,
                                             member_index=member.index)

            # -- transfer + gather --------------------------------------
            started = time.perf_counter()
            with telemetry.span("transfer", round=round_index,
                                requests=len(requests)) as transfer_span:
                completion_s = self._gather(queues, pending, started)
                reply_bytes = sum(
                    len(flight.frame) for flight in pending.values()
                )
                metrics.counter("wire_bytes_total",
                                kind="contribution").inc(reply_bytes)
                transfer_span.set("reply_bytes", reply_bytes)
            # the gather is complete: every child has attached whatever
            # segments this round referenced, so retired ones can go
            self._unlink_retired()

            # -- decode + per-request spans -----------------------------
            results = []
            for seq, flight in pending.items():
                request = flight.request
                payload = decode_contribution(flight.frame,
                                              expect_profile=profile)
                if payload.worker_id != request.worker_id:
                    raise TransportError(
                        f"reply {seq} carries worker "
                        f"{payload.worker_id}, expected "
                        f"{request.worker_id}"
                    )
                with telemetry.span("local_train", round=round_index,
                                    worker=request.worker_id,
                                    tau=request.tau,
                                    ratio=request.ratio) as span:
                    span.set("train_loss", float(payload.train_loss))
                    span.set("worker_wall_s", float(payload.wall_time_s))
                results.append(TrainResult(
                    worker_id=payload.worker_id,
                    sub_state=payload.materialise(
                        request.dispatched_state
                    ),
                    train_loss=float(payload.train_loss),
                    wall_time_s=float(payload.wall_time_s),
                ))

            # -- straggler heartbeat ------------------------------------
            flagged = self.detector.flag(completion_s)
            if flagged:
                self.last_stragglers = sorted(flagged)
                metrics.counter("stragglers_total",
                                executor=self.name).inc(len(flagged))
                telemetry.event("straggler_detected", round=round_index,
                                workers=sorted(flagged))
                batch_span.set("stragglers", sorted(flagged))
        return results

    def _gather(self, queues: Dict[int, deque],
                pending: Dict[int, _InFlight],
                started: float) -> Dict[int, float]:
        """Pump each member's request queue and collect every reply.

        At most ONE train request is outstanding per member: the next
        one is sent only after the previous reply has been fully read.
        This is deadlock-free by construction -- a pipe write can only
        stall when its reader is busy, and with one request in flight
        the child is always parked in ``recv`` when the parent writes
        (frames are regularly larger than the OS pipe buffer, so
        fire-and-forget batching genuinely deadlocks: parent blocked
        writing request *n+1*, child blocked writing reply *n*).
        Sequencing costs nothing because each child handles requests
        serially anyway.

        Train requests are never resent (a replay would double-consume
        child RNG streams); each empty poll interval counts as one
        retry, and the batch fails with a typed error after
        ``max_retries`` consecutive empty intervals, after
        ``timeout_s`` of total waiting, or as soon as a member with
        outstanding work dies.
        """
        metrics = self.telemetry.metrics
        # member index -> seq of its one in-flight request
        outstanding: Dict[int, int] = {}
        for index, queue in queues.items():
            seq, message = queue.popleft()
            self.transports[index].send(message)
            outstanding[index] = seq
        completion: Dict[int, float] = {}
        clock = self.retry.clock(start=started)
        while outstanding:
            conns = {
                self.pool.members[index].conn: index
                for index in outstanding
            }
            if clock.remaining() <= 0.0:
                raise TransportTimeoutError(
                    f"{len(outstanding)} training repl(y/ies) still "
                    f"missing after {clock.elapsed():.1f}s "
                    f"(budget {clock.budget_s:.1f}s)"
                )
            ready = _wait_for_connections(list(conns),
                                          timeout=clock.interval())
            if not ready:
                metrics.counter("retries_total",
                                transport="process").inc()
                for index in outstanding:
                    if not self.transports[index].alive():
                        raise WorkerCrashError(
                            f"pool member {index} died with "
                            f"{len(outstanding)} training request(s) "
                            f"outstanding"
                        )
                if not clock.tick():
                    raise TransportTimeoutError(
                        f"no training reply after "
                        f"{clock.attempts} backoff interval(s) "
                        f"({clock.elapsed():.1f}s elapsed)"
                    )
                continue
            clock.reset()
            for conn in ready:
                index = conns[conn]
                transport = self.transports[index]
                while conn.poll(0):
                    reply = transport.receive()
                    op, seq = reply[0], reply[1]
                    if op == "err":
                        raise TransportError(
                            f"worker process raised during training:\n"
                            f"{reply[2]}"
                        )
                    if op != "ok" or seq != outstanding.get(index):
                        continue  # stale control-plane reply
                    pending[seq].frame = reply[2]
                    worker_id = pending[seq].request.worker_id
                    completion[worker_id] = time.perf_counter() - started
                    queue = queues[index]
                    if queue:
                        next_seq, message = queue.popleft()
                        transport.send(message)
                        outstanding[index] = next_seq
                    else:
                        del outstanding[index]
                        break
        return completion

    def capture_worker_states(self) -> Dict[int, Dict[str, object]]:
        """Pull every child's worker runtime states over the pipe.

        In process mode the data/worker RNG streams advance in the
        children, so a checkpoint must read them from there.  Uses the
        idempotent control-plane ``("capture", seq)`` round trip per
        member (safe to resend -- capturing does not consume any
        stream).
        """
        states: Dict[int, Dict[str, object]] = {}
        for member in self.pool.members:
            reply = self.transports[member.index].request(
                ("capture", self._next_seq())
            )
            states.update(pickle.loads(reply[2]))
        return states

    def close(self) -> None:
        """Shut the pool down and unlink every live template segment.

        Idempotent, and the segment unlink runs even when the pool
        shutdown is dirty (killed children), so a crashed run cannot
        strand ``/dev/shm`` entries past ``close``.
        """
        try:
            self.pool.close()
        finally:
            self._unlink_retired()
            for name, _ in self._template_segments.values():
                shm.unlink_segment(name)
            self._template_segments.clear()


def make_executor(config, *, workers: Dict[int, object],
                  specs: Sequence[WorkerSpec],
                  telemetry: Optional[Telemetry] = None,
                  pickle_submodels: bool = False) -> Executor:
    """Build the executor ``config.executor`` names."""
    kind = getattr(config, "executor", "serial")
    if kind == "serial":
        return SerialExecutor(workers, telemetry=telemetry)
    if kind == "process":
        bundle = telemetry if telemetry is not None else DISABLED_TELEMETRY
        if bundle.profiler is not None:
            raise ValueError(
                "the per-layer profiler requires executor='serial': "
                "with executor='process' the modules it would instrument "
                "train in child processes"
            )
        quorum = (
            config.deadline_quorum
            if getattr(config, "deadline_quorum", None) is not None else 0.85
        )
        return ProcessExecutor(
            specs, num_procs=getattr(config, "num_procs", None),
            telemetry=telemetry, pickle_submodels=pickle_submodels,
            straggler_quorum=quorum,
            straggler_multiplier=getattr(config, "deadline_multiplier", 1.5),
            wire_profile=getattr(config, "wire_profile", "exact"),
            wire_keep_fraction=getattr(config, "wire_keep_fraction", 0.25),
            wire_quantize_bits=getattr(config, "wire_quantize_bits", 8),
            template_cache_limit=getattr(
                config, "template_cache_limit", 8
            ),
        )
    raise ValueError(f"unknown executor {kind!r}")
