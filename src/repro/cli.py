"""Command-line interface.

Run a federated-training experiment end-to-end from the shell::

    python -m repro.cli run --task cnn --strategy fedmp --rounds 12 \
        --scenario medium --history out.json

    python -m repro.cli compare --task cnn --rounds 10 \
        --strategies synfl fedmp

    python -m repro.cli devices --scenario high

    python -m repro.cli verify --preset cnn --rounds 5

``--task`` names a bench-scale workload from
:mod:`repro.experiments.setups` (cnn / alexnet / vgg19 / resnet50 /
lstm); every knob of :class:`repro.fl.FLConfig` that matters for quick
experiments is exposed as a flag.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.reporting import (
    print_metrics_summary,
    print_profile_summary,
)
from repro.experiments.setups import (
    BENCH_TASKS,
    METHOD_LABELS,
    make_bench_task,
    make_devices,
)
from repro.fl.aggregation import AGGREGATORS
from repro.fl.hooks import CommVolumeHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.fl.schedulers import SCHEDULERS
from repro.fl.strategies import STRATEGIES
from repro.io import save_history
from repro.simulation.cluster import HETEROGENEITY_SCENARIOS, scenario_table
from repro.telemetry import (
    JsonlSink,
    LayerProfiler,
    MetricsRegistry,
    Telemetry,
    TelemetryHook,
    Tracer,
)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task", default="cnn", choices=sorted(BENCH_TASKS),
                        help="bench-scale workload")
    parser.add_argument("--scenario", default="medium",
                        choices=sorted(HETEROGENEITY_SCENARIOS),
                        help="heterogeneity scenario (Fig. 3 clusters)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override worker count (half A / half B)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the task's round budget")
    parser.add_argument("--non-iid", type=float, default=0.0,
                        help="non-IID level y (percent or missing classes)")
    parser.add_argument("--sync-scheme", default="r2sp",
                        choices=sorted(AGGREGATORS),
                        help="aggregation scheme (weighted variants "
                             "weight workers by local sample count)")
    parser.add_argument("--scheduler", default="auto",
                        choices=("auto",) + tuple(sorted(SCHEDULERS)),
                        help="round scheduler; 'auto' derives it from "
                             "--async-m / --deadline-s")
    parser.add_argument("--async-m", type=int, default=None,
                        help="enable Algorithm 2 with m first arrivals")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="enable semi-synchronous rounds with this "
                             "per-round deadline (simulated seconds)")
    parser.add_argument("--target", type=float, default=None,
                        help="stop when the metric reaches this target")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "process"),
                        help="execution backend for local training; "
                             "'process' fans out to a worker-process pool "
                             "(bitwise-identical results)")
    parser.add_argument("--num-procs", type=int, default=None, metavar="N",
                        help="process-pool size (default: one per CPU, "
                             "clamped to the fleet size)")
    parser.add_argument("--nan-policy", default="raise",
                        choices=("raise", "skip", "off"),
                        help="poisoned-upload handling: reject the round, "
                             "drop the contribution, or disable the scan")
    parser.add_argument("--no-fast-path", action="store_true",
                        help="disable the dispatch/aggregation fast path "
                             "(A/B debugging; bitwise-identical results)")
    parser.add_argument("--clients-per-round", type=int, default=None,
                        metavar="M",
                        help="sample M clients per round instead of "
                             "dispatching to the whole fleet")
    parser.add_argument("--cohort-rounds", default="auto",
                        choices=("auto", "on", "off"),
                        help="cohort-sharded dispatch/training/aggregation "
                             "(one shared sub-model per ratio x cluster "
                             "bucket; bitwise-identical results)")
    parser.add_argument("--history-detail", default="auto",
                        choices=("auto", "member", "cohort"),
                        help="round-record granularity: per-worker entries "
                             "or per-cohort aggregates (auto switches to "
                             "cohort detail on large fleets)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write engine spans/events as JSONL to FILE")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the metrics registry as JSON to FILE")
    parser.add_argument("--profile-worker", type=int, default=None,
                        metavar="N",
                        help="profile worker N's per-layer forward/backward")


def _make_telemetry(args) -> Optional[Telemetry]:
    """Build the Telemetry bundle the run flags ask for (None if none)."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    profile_worker = getattr(args, "profile_worker", None)
    if trace_out is None and metrics_out is None and profile_worker is None:
        return None
    tracer = Tracer(JsonlSink(trace_out)) if trace_out is not None \
        else Tracer()
    metrics = MetricsRegistry(enabled=metrics_out is not None)
    profiler = LayerProfiler(profile_worker) \
        if profile_worker is not None else None
    return Telemetry(tracer=tracer, metrics=metrics, profiler=profiler)


def _build_history(task_key: str, strategy: str, args,
                   hooks=None, telemetry=None) -> "TrainingHistory":
    bench_task = make_bench_task(task_key)
    devices = make_devices(args.scenario, count=args.workers)
    overrides = dict(
        sync_scheme=args.sync_scheme,
        scheduler=args.scheduler,
        async_m=args.async_m,
        semi_sync_deadline_s=args.deadline_s,
        target_metric=args.target,
        seed=args.seed,
        executor=getattr(args, "executor", "serial"),
        num_procs=getattr(args, "num_procs", None),
        nan_policy=getattr(args, "nan_policy", "raise"),
        fast_path=not getattr(args, "no_fast_path", False),
        clients_per_round=getattr(args, "clients_per_round", None),
        cohort_rounds=getattr(args, "cohort_rounds", "auto"),
        history_detail=getattr(args, "history_detail", "auto"),
    )
    if args.rounds is not None:
        overrides["max_rounds"] = args.rounds
    config = bench_task.make_config(strategy, **overrides)
    task = bench_task.make_task(args.non_iid)
    return run_federated_training(task, devices, config, hooks=hooks,
                                  telemetry=telemetry)


def _cmd_run(args) -> int:
    if (getattr(args, "executor", "serial") == "process"
            and getattr(args, "profile_worker", None) is not None):
        print("error: --profile-worker requires --executor serial "
              "(the profiled modules train in child processes)",
              file=sys.stderr)
        return 2
    timing = TimingHook()
    comm = CommVolumeHook()
    hooks = [timing, comm]
    telemetry = _make_telemetry(args)
    if telemetry is not None:
        hooks.append(TelemetryHook(telemetry))
    history = _build_history(args.task, args.strategy, args,
                             hooks=hooks, telemetry=telemetry)
    label = METHOD_LABELS.get(args.strategy, args.strategy)
    print(f"{label} on {make_bench_task(args.task).label} "
          f"({args.scenario} scenario):")
    for sim_time, metric in history.accuracy_curve():
        print(f"  t={sim_time:9.1f}s  metric={metric:.4f}")
    print(f"final metric: {history.final_metric():.4f} "
          f"after {len(history.rounds)} rounds "
          f"({history.total_time_s:.1f} simulated seconds)")
    print(f"round time: mean {history.mean_round_time():.1f}s  "
          f"p50 {history.percentile_round_time(50):.1f}s  "
          f"p95 {history.percentile_round_time(95):.1f}s  "
          f"(PS overhead {history.total_overhead_s:.3f}s)")
    print(f"comm volume: {comm.total_download_params / 1e6:.2f}M params "
          f"down, {comm.total_upload_params / 1e6:.2f}M up "
          f"(host time {timing.total_wall_time_s:.1f}s)")
    if telemetry is not None:
        if telemetry.profiler is not None:
            telemetry.profiler.publish(telemetry.metrics)
            print_profile_summary(telemetry.profiler)
        if telemetry.metrics.enabled:
            print_metrics_summary(telemetry.metrics)
            telemetry.metrics.save(args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        telemetry.close()
        if args.trace_out is not None:
            print(f"trace written to {args.trace_out}")
    if args.history:
        save_history(history, args.history)
        print(f"history written to {args.history}")
    return 0


def _cmd_compare(args) -> int:
    bench_task = make_bench_task(args.task)
    target = args.target if args.target is not None \
        else bench_task.target_metric
    print(f"{bench_task.label}, target {target}:")
    baseline_time: Optional[float] = None
    for strategy in args.strategies:
        args_copy = argparse.Namespace(**vars(args))
        args_copy.target = target
        history = _build_history(args.task, strategy, args_copy)
        reached = history.time_to_target(target)
        time_text = f"{reached:10.1f}s" if reached is not None else "        --"
        if baseline_time is None and reached is not None:
            baseline_time = reached
        speedup = (
            f"{baseline_time / reached:.2f}x"
            if baseline_time and reached else "--"
        )
        label = METHOD_LABELS.get(strategy, strategy)
        print(f"  {label:<10} time-to-target {time_text}  "
              f"final {history.final_metric():.4f}  speedup {speedup}")
    return 0


def _cmd_verify(args) -> int:
    from repro.verify.run import (
        DEFAULT_SEMISYNC_TOLERANCE_ULPS,
        run_verification,
    )

    semisync = (
        args.semisync_tolerance if args.semisync_tolerance is not None
        else DEFAULT_SEMISYNC_TOLERANCE_ULPS
    )
    report = run_verification(
        preset=args.preset, rounds=args.rounds,
        tolerance_ulps=args.tolerance,
        semisync_tolerance_ulps=semisync,
        scenario=args.scenario, workers=args.workers, seed=args.seed,
        executor=args.executor, num_procs=args.num_procs,
    )
    print(report.describe())
    return 0 if report.passed else 1


def _cmd_devices(args) -> int:
    devices = make_devices(args.scenario, count=args.workers)
    print(f"scenario {args.scenario!r}: {len(devices)} devices")
    for device_id, cluster, mode, mbps in scenario_table(devices):
        print(f"  device {device_id:2d}  cluster {cluster}  "
              f"mode {mode}  {mbps:5.1f} Mbps")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FedMP reproduction command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    _add_run_arguments(run_parser)
    run_parser.add_argument("--strategy", default="fedmp",
                            choices=sorted(STRATEGIES))
    run_parser.add_argument("--history", default=None,
                            help="write the round history to this JSON file")
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="race several strategies to a target")
    _add_run_arguments(compare_parser)
    compare_parser.add_argument(
        "--strategies", nargs="+", default=["synfl", "fedmp"],
        choices=sorted(STRATEGIES),
    )
    compare_parser.set_defaults(func=_cmd_compare)

    devices_parser = subparsers.add_parser(
        "devices", help="print a scenario's simulated device fleet")
    devices_parser.add_argument("--scenario", default="medium",
                                choices=sorted(HETEROGENEITY_SCENARIOS))
    devices_parser.add_argument("--workers", type=int, default=None)
    devices_parser.set_defaults(func=_cmd_devices)

    verify_parser = subparsers.add_parser(
        "verify",
        help="run the verification battery (invariants, differential "
             "fast-vs-dense / sync-vs-semisync, fault conformance)")
    verify_parser.add_argument("--preset", default="cnn",
                               choices=sorted(BENCH_TASKS),
                               help="bench-scale workload to verify on")
    verify_parser.add_argument("--rounds", type=int, default=5,
                               help="rounds per verification run")
    verify_parser.add_argument("--tolerance", type=int, default=0,
                               metavar="ULPS",
                               help="fast-vs-dense divergence tolerance "
                                    "(the fast path is specified bitwise "
                                    "identical: default 0)")
    verify_parser.add_argument("--semisync-tolerance", type=int,
                               default=None, metavar="ULPS",
                               help="sync-vs-semisync divergence tolerance "
                                    "(default: measured headroom, see "
                                    "DESIGN.md 3.4)")
    verify_parser.add_argument("--scenario", default="medium",
                               choices=sorted(HETEROGENEITY_SCENARIOS))
    verify_parser.add_argument("--workers", type=int, default=None,
                               help="override worker count (half A / half B)")
    verify_parser.add_argument("--seed", type=int, default=17)
    verify_parser.add_argument("--executor", default="serial",
                               choices=("serial", "process"),
                               help="'process' adds the serial-vs-process "
                                    "parity stage (0-ULP states + "
                                    "byte-identical history)")
    verify_parser.add_argument("--num-procs", type=int, default=None,
                               metavar="N",
                               help="pool size for the process stage")
    verify_parser.set_defaults(func=_cmd_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
