"""Command-line interface.

Run a federated-training experiment end-to-end from the shell::

    python -m repro.cli run --task cnn --strategy fedmp --rounds 12 \
        --scenario medium --history out.json

    python -m repro.cli compare --task cnn --rounds 10 \
        --strategies synfl fedmp

    python -m repro.cli devices --scenario high

    python -m repro.cli verify --preset cnn --rounds 5

Run the parameter server as a long-lived service, with live workers
connecting over TCP (see DESIGN.md section 3.8)::

    python -m repro.cli serve --task cnn --rounds 5 --port 5641 \
        --min-workers 4
    python -m repro.cli client --connect 127.0.0.1:5641   # x4 terminals

Inspect a run afterwards, or gate a change against the committed
benchmark baselines::

    python -m repro.cli trace summary trace.jsonl
    python -m repro.cli trace diff before.jsonl after.jsonl
    python -m repro.cli trace folded trace.jsonl --out stacks.folded

    python -m repro.cli bench check --smoke

``--task`` names a bench-scale workload from
:mod:`repro.experiments.setups` (cnn / alexnet / vgg19 / resnet50 /
lstm); every knob of :class:`repro.fl.FLConfig` that matters for quick
experiments is exposed as a flag.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.reporting import (
    print_metrics_summary,
    print_profile_summary,
)
from repro.experiments.setups import (
    BENCH_TASKS,
    METHOD_LABELS,
    make_bench_task,
    make_devices,
)
from repro.fl.aggregation import AGGREGATORS
from repro.fl.hooks import CommVolumeHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.fl.schedulers import SCHEDULERS
from repro.fl.strategies import STRATEGIES
from repro.io import save_history
from repro.simulation.cluster import HETEROGENEITY_SCENARIOS, scenario_table
from repro.telemetry import (
    JsonlSink,
    LayerProfiler,
    MetricsRegistry,
    Telemetry,
    TelemetryHook,
    Tracer,
)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task", default="cnn", choices=sorted(BENCH_TASKS),
                        help="bench-scale workload")
    parser.add_argument("--scenario", default="medium",
                        choices=sorted(HETEROGENEITY_SCENARIOS),
                        help="heterogeneity scenario (Fig. 3 clusters)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override worker count (half A / half B)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the task's round budget")
    parser.add_argument("--non-iid", type=float, default=0.0,
                        help="non-IID level y (percent or missing classes)")
    parser.add_argument("--sync-scheme", default="r2sp",
                        choices=sorted(AGGREGATORS),
                        help="aggregation scheme (weighted variants "
                             "weight workers by local sample count)")
    parser.add_argument("--scheduler", default="auto",
                        choices=("auto",) + tuple(sorted(SCHEDULERS)),
                        help="round scheduler; 'auto' derives it from "
                             "--async-m / --deadline-s")
    parser.add_argument("--async-m", type=int, default=None,
                        help="enable Algorithm 2 with m first arrivals")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="enable semi-synchronous rounds with this "
                             "per-round deadline (simulated seconds)")
    parser.add_argument("--target", type=float, default=None,
                        help="stop when the metric reaches this target")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "process"),
                        help="execution backend for local training; "
                             "'process' fans out to a worker-process pool "
                             "(bitwise-identical results)")
    parser.add_argument("--num-procs", type=int, default=None, metavar="N",
                        help="process-pool size (default: one per CPU, "
                             "clamped to the fleet size)")
    parser.add_argument("--wire-profile", default="exact",
                        choices=("exact", "sparse", "sparse+quantized"),
                        help="contribution wire profile for "
                             "--executor process: dense float32 (bitwise "
                             "parity), top-k exact values, or top-k "
                             "quantized deltas")
    parser.add_argument("--wire-keep-fraction", type=float, default=0.25,
                        metavar="F",
                        help="top-k keep fraction for the sparse wire "
                             "profiles")
    parser.add_argument("--wire-quantize-bits", type=int, default=8,
                        metavar="B",
                        help="delta code width for "
                             "--wire-profile sparse+quantized")
    parser.add_argument("--nan-policy", default="raise",
                        choices=("raise", "skip", "off"),
                        help="poisoned-upload handling: reject the round, "
                             "drop the contribution, or disable the scan")
    parser.add_argument("--no-fast-path", action="store_true",
                        help="disable the dispatch/aggregation fast path "
                             "(A/B debugging; bitwise-identical results)")
    parser.add_argument("--clients-per-round", type=int, default=None,
                        metavar="M",
                        help="sample M clients per round instead of "
                             "dispatching to the whole fleet")
    parser.add_argument("--cohort-rounds", default="auto",
                        choices=("auto", "on", "off"),
                        help="cohort-sharded dispatch/training/aggregation "
                             "(one shared sub-model per ratio x cluster "
                             "bucket; bitwise-identical results)")
    parser.add_argument("--history-detail", default="auto",
                        choices=("auto", "member", "cohort"),
                        help="round-record granularity: per-worker entries "
                             "or per-cohort aggregates (auto switches to "
                             "cohort detail on large fleets)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write engine spans/events as JSONL to FILE")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the metrics registry as JSON to FILE")
    parser.add_argument("--metrics-export", default=None, metavar="FILE",
                        help="write the metrics registry in "
                             "OpenMetrics/Prometheus text format to FILE")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live metrics at "
                             "http://127.0.0.1:PORT/metrics during the run "
                             "(0 picks an ephemeral port)")
    parser.add_argument("--manifest", default=None, metavar="FILE",
                        help="write a run-manifest JSON (artifacts, "
                             "resolved flags, git SHA) to FILE")
    parser.add_argument("--profile-worker", type=int, default=None,
                        metavar="N",
                        help="profile worker N's per-layer forward/backward")


def _make_telemetry(args) -> Optional[Telemetry]:
    """Build the Telemetry bundle the run flags ask for (None if none)."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    metrics_export = getattr(args, "metrics_export", None)
    metrics_port = getattr(args, "metrics_port", None)
    profile_worker = getattr(args, "profile_worker", None)
    wants_metrics = any(
        value is not None
        for value in (metrics_out, metrics_export, metrics_port)
    )
    if trace_out is None and profile_worker is None and not wants_metrics:
        return None
    tracer = Tracer(JsonlSink(trace_out)) if trace_out is not None \
        else Tracer()
    metrics = MetricsRegistry(enabled=wants_metrics)
    profiler = LayerProfiler(profile_worker) \
        if profile_worker is not None else None
    return Telemetry(tracer=tracer, metrics=metrics, profiler=profiler)


def _build_history(task_key: str, strategy: str, args,
                   hooks=None, telemetry=None) -> "TrainingHistory":
    resume = getattr(args, "resume", None)
    if resume is not None:
        from repro.fl.checkpoint import (
            apply_resume_overrides,
            load_checkpoint,
            resolve_checkpoint,
        )

        checkpoint = load_checkpoint(resolve_checkpoint(resume))
        # explicit run-shape flags override the checkpointed config
        # (with a ResumeOverrideWarning naming what changed) instead of
        # being silently ignored; byte-identity holds only when they
        # match the checkpoint
        overrides = {}
        if getattr(args, "clients_per_round", None) is not None:
            overrides["clients_per_round"] = args.clients_per_round
        if getattr(args, "rounds", None) is not None:
            overrides["max_rounds"] = args.rounds
        if getattr(args, "target", None) is not None:
            overrides["target_metric"] = args.target
        if overrides:
            apply_resume_overrides(checkpoint, **overrides)
        # the checkpoint's meta pins the workload it was taken from;
        # CLI workload flags only fill gaps (e.g. pre-meta checkpoints)
        meta = checkpoint.meta or {}
        bench_task = make_bench_task(meta.get("task", task_key))
        devices = make_devices(meta.get("scenario", args.scenario),
                               count=meta.get("workers", args.workers))
        task = bench_task.make_task(meta.get("non_iid", args.non_iid))
        return run_federated_training(
            task, devices, None, hooks=hooks, telemetry=telemetry,
            resume_from=checkpoint, checkpoint_meta=checkpoint.meta,
        )
    bench_task = make_bench_task(task_key)
    devices = make_devices(args.scenario, count=args.workers)
    overrides = dict(
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        sync_scheme=args.sync_scheme,
        scheduler=args.scheduler,
        async_m=args.async_m,
        semi_sync_deadline_s=args.deadline_s,
        target_metric=args.target,
        seed=args.seed,
        executor=getattr(args, "executor", "serial"),
        num_procs=getattr(args, "num_procs", None),
        wire_profile=getattr(args, "wire_profile", "exact"),
        wire_keep_fraction=getattr(args, "wire_keep_fraction", 0.25),
        wire_quantize_bits=getattr(args, "wire_quantize_bits", 8),
        nan_policy=getattr(args, "nan_policy", "raise"),
        fast_path=not getattr(args, "no_fast_path", False),
        clients_per_round=getattr(args, "clients_per_round", None),
        cohort_rounds=getattr(args, "cohort_rounds", "auto"),
        history_detail=getattr(args, "history_detail", "auto"),
    )
    if args.rounds is not None:
        overrides["max_rounds"] = args.rounds
    config = bench_task.make_config(strategy, **overrides)
    task = bench_task.make_task(args.non_iid)
    checkpoint_meta = None
    if config.checkpoint_dir is not None:
        # recorded in every checkpoint so `repro run --resume` can
        # rebuild the same task and device fleet without extra flags
        checkpoint_meta = {"task": task_key, "scenario": args.scenario,
                           "workers": args.workers,
                           "non_iid": args.non_iid}
    return run_federated_training(task, devices, config, hooks=hooks,
                                  telemetry=telemetry,
                                  checkpoint_meta=checkpoint_meta)


def _cmd_run(args) -> int:
    if (getattr(args, "executor", "serial") == "process"
            and getattr(args, "profile_worker", None) is not None):
        print("error: --profile-worker requires --executor serial "
              "(the profiled modules train in child processes)",
              file=sys.stderr)
        return 2
    timing = TimingHook()
    comm = CommVolumeHook()
    hooks = [timing, comm]
    telemetry = _make_telemetry(args)
    if telemetry is not None:
        hooks.append(TelemetryHook(telemetry))
    scrape_server = None
    if telemetry is not None and args.metrics_port is not None:
        from repro.telemetry import MetricsHTTPServer

        scrape_server = MetricsHTTPServer(telemetry.metrics,
                                          port=args.metrics_port)
        print(f"serving metrics at {scrape_server.url}")
    try:
        history = _build_history(args.task, args.strategy, args,
                                 hooks=hooks, telemetry=telemetry)
    except BaseException:
        if scrape_server is not None:
            scrape_server.close()
        raise
    label = METHOD_LABELS.get(args.strategy, args.strategy)
    print(f"{label} on {make_bench_task(args.task).label} "
          f"({args.scenario} scenario):")
    for sim_time, metric in history.accuracy_curve():
        print(f"  t={sim_time:9.1f}s  metric={metric:.4f}")
    print(f"final metric: {history.final_metric():.4f} "
          f"after {len(history.rounds)} rounds "
          f"({history.total_time_s:.1f} simulated seconds)")
    print(f"round time: mean {history.mean_round_time():.1f}s  "
          f"p50 {history.percentile_round_time(50):.1f}s  "
          f"p95 {history.percentile_round_time(95):.1f}s  "
          f"(PS overhead {history.total_overhead_s:.3f}s)")
    print(f"comm volume: {comm.total_download_params / 1e6:.2f}M params "
          f"down, {comm.total_upload_params / 1e6:.2f}M up "
          f"(host time {timing.total_wall_time_s:.1f}s)")
    if telemetry is not None:
        if telemetry.profiler is not None:
            telemetry.profiler.publish(telemetry.metrics)
            print_profile_summary(telemetry.profiler)
        if telemetry.metrics.enabled:
            print_metrics_summary(telemetry.metrics)
            if args.metrics_out is not None:
                telemetry.metrics.save(args.metrics_out)
                print(f"metrics written to {args.metrics_out}")
            if args.metrics_export is not None:
                telemetry.metrics.export_openmetrics(args.metrics_export)
                print(f"openmetrics written to {args.metrics_export}")
        if scrape_server is not None:
            scrape_server.close()
        telemetry.close()
        if args.trace_out is not None:
            print(f"trace written to {args.trace_out}")
    if args.history:
        save_history(history, args.history)
        print(f"history written to {args.history}")
    if args.manifest is not None:
        from repro.telemetry import write_run_manifest

        write_run_manifest(
            args.manifest,
            config={key: value for key, value in sorted(vars(args).items())
                    if key != "func"},
            artifacts={
                "trace": args.trace_out,
                "metrics": args.metrics_out,
                "metrics_export": args.metrics_export,
                "history": args.history,
            },
            extra={"result": {
                "final_metric": history.final_metric(),
                "rounds": len(history.rounds),
                "sim_time_s": history.total_time_s,
            }},
        )
        print(f"manifest written to {args.manifest}")
    return 0


def _cmd_compare(args) -> int:
    bench_task = make_bench_task(args.task)
    target = args.target if args.target is not None \
        else bench_task.target_metric
    print(f"{bench_task.label}, target {target}:")
    baseline_time: Optional[float] = None
    for strategy in args.strategies:
        args_copy = argparse.Namespace(**vars(args))
        args_copy.target = target
        history = _build_history(args.task, strategy, args_copy)
        reached = history.time_to_target(target)
        time_text = f"{reached:10.1f}s" if reached is not None else "        --"
        if baseline_time is None and reached is not None:
            baseline_time = reached
        speedup = (
            f"{baseline_time / reached:.2f}x"
            if baseline_time and reached else "--"
        )
        label = METHOD_LABELS.get(strategy, strategy)
        print(f"  {label:<10} time-to-target {time_text}  "
              f"final {history.final_metric():.4f}  speedup {speedup}")
    return 0


def _cmd_verify(args) -> int:
    from repro.verify.run import (
        DEFAULT_SEMISYNC_TOLERANCE_ULPS,
        run_verification,
    )

    semisync = (
        args.semisync_tolerance if args.semisync_tolerance is not None
        else DEFAULT_SEMISYNC_TOLERANCE_ULPS
    )
    report = run_verification(
        preset=args.preset, rounds=args.rounds,
        tolerance_ulps=args.tolerance,
        semisync_tolerance_ulps=semisync,
        scenario=args.scenario, workers=args.workers, seed=args.seed,
        executor=args.executor, num_procs=args.num_procs,
        service=not args.no_service,
    )
    print(report.describe())
    return 0 if report.passed else 1


def _parse_roster_script(text: Optional[str]):
    """``--roster-script``: inline JSON or a path to a JSON file."""
    if text is None:
        return None
    import json
    from pathlib import Path

    path = Path(text)
    raw = path.read_text(encoding="utf-8") if path.exists() else text
    script = json.loads(raw)
    return {int(round_index): [int(w) for w in workers]
            for round_index, workers in script.items()}


def _cmd_serve(args) -> int:
    from repro.serve import FedMPService

    if args.executor != "serial":
        print("error: `repro serve` always trains through the socket "
              "executor; drop --executor", file=sys.stderr)
        return 2
    if args.profile_worker is not None:
        print("error: --profile-worker requires an in-process worker; "
              "serve workers train in remote client processes",
              file=sys.stderr)
        return 2
    timing = TimingHook()
    comm = CommVolumeHook()
    hooks = [timing, comm]
    telemetry = _make_telemetry(args)
    if telemetry is not None:
        hooks.append(TelemetryHook(telemetry))

    resume = getattr(args, "resume", None)
    if resume is not None:
        from repro.fl.checkpoint import load_checkpoint, resolve_checkpoint

        checkpoint = load_checkpoint(resolve_checkpoint(resume))
        meta = checkpoint.meta or {}
        bench_task = make_bench_task(meta.get("task", args.task))
        devices = make_devices(meta.get("scenario", args.scenario),
                               count=meta.get("workers", args.workers))
        task = bench_task.make_task(meta.get("non_iid", args.non_iid))
        config = None
        checkpoint_meta = checkpoint.meta
        resume_from = checkpoint
    else:
        bench_task = make_bench_task(args.task)
        devices = make_devices(args.scenario, count=args.workers)
        overrides = dict(
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            sync_scheme=args.sync_scheme,
            scheduler=args.scheduler,
            async_m=args.async_m,
            semi_sync_deadline_s=args.deadline_s,
            target_metric=args.target,
            seed=args.seed,
            # the socket executor is injected through the engine's
            # executor seam; the stored config stays "serial" so the
            # checkpoint also resumes under plain `repro run --resume`
            executor="serial",
            wire_profile=args.wire_profile,
            wire_keep_fraction=args.wire_keep_fraction,
            wire_quantize_bits=args.wire_quantize_bits,
            nan_policy=args.nan_policy,
            fast_path=not args.no_fast_path,
            clients_per_round=args.clients_per_round,
            cohort_rounds=args.cohort_rounds,
            history_detail=args.history_detail,
        )
        if args.rounds is not None:
            overrides["max_rounds"] = args.rounds
        config = bench_task.make_config(args.strategy, **overrides)
        task = bench_task.make_task(args.non_iid)
        checkpoint_meta = None
        if config.checkpoint_dir is not None:
            checkpoint_meta = {"task": args.task,
                               "scenario": args.scenario,
                               "workers": args.workers,
                               "non_iid": args.non_iid}
        resume_from = None

    service = FedMPService(
        task, devices, config,
        host=args.host, port=args.port,
        telemetry=telemetry, hooks=hooks,
        checkpoint_meta=checkpoint_meta, resume_from=resume_from,
        min_workers=args.min_workers,
        roster_script=_parse_roster_script(args.roster_script),
        drain_timeout_s=args.drain_timeout_s,
        registration_timeout_s=args.registration_timeout_s,
    )
    host, port = service.address
    print(f"serving on {host}:{port} "
          f"({len(service.roster)} worker slot(s), "
          f"min_workers={service.min_workers})")
    if args.port_file is not None:
        from pathlib import Path

        Path(args.port_file).write_text(f"{port}\n", encoding="utf-8")
    sys.stdout.flush()
    history = service.run()
    rounds = len(history.rounds)
    if rounds:
        print(f"final metric: {history.final_metric():.4f} "
              f"after {rounds} round(s) "
              f"({history.total_time_s:.1f} simulated seconds)")
    else:
        print("no rounds completed")
    print("fleet: " + "  ".join(
        f"{kind}={count}" for kind, count in sorted(
            service.counters.items())
    ))
    if telemetry is not None:
        if telemetry.metrics.enabled:
            print_metrics_summary(telemetry.metrics)
            if args.metrics_out is not None:
                telemetry.metrics.save(args.metrics_out)
                print(f"metrics written to {args.metrics_out}")
            if args.metrics_export is not None:
                telemetry.metrics.export_openmetrics(args.metrics_export)
                print(f"openmetrics written to {args.metrics_export}")
        telemetry.close()
        if args.trace_out is not None:
            print(f"trace written to {args.trace_out}")
    if args.history:
        save_history(history, args.history)
        print(f"history written to {args.history}")
    return 0


def _cmd_client(args) -> int:
    from repro.serve import ServiceClient

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print("error: --connect expects HOST:PORT", file=sys.stderr)
        return 2
    client = ServiceClient(
        (host, int(port_text)),
        worker_id=args.worker_id,
        heartbeat_s=args.heartbeat_s,
        reconnect=args.reconnect,
        reconnect_timeout_s=args.reconnect_timeout,
        leave_after=args.leave_after,
    )
    completed = client.run()
    print(f"worker {client.worker_id}: {completed} dispatch(es) "
          f"completed")
    return 0


def _fmt_s(value: float) -> str:
    return f"{value:.4f}"


def _cmd_trace_summary(args) -> int:
    from repro.experiments.reporting import print_table
    from repro.telemetry import (
        build_tree,
        load_trace,
        phase_breakdown,
        round_summaries,
        round_trends,
    )

    roots = build_tree(load_trace(args.trace))
    if not roots:
        print(f"error: {args.trace} contains no spans", file=sys.stderr)
        return 2

    breakdown = phase_breakdown(roots, round_index=args.round)
    scope = "all rounds" if args.round is None else f"round {args.round}"
    print_table(
        f"Phase breakdown ({scope}) -- {args.trace}",
        ("phase", "count", "total_s", "self_s", "mean_s", "max_s"),
        [(entry["phase"], entry["count"], _fmt_s(entry["total_s"]),
          _fmt_s(entry["self_s"]), _fmt_s(entry["mean_s"]),
          _fmt_s(entry["max_s"]))
         for entry in breakdown],
        note="self_s excludes child spans, so the column sums to wall "
             "time without double-charging nested phases",
    )

    summaries = round_summaries(roots)
    if summaries:
        print_table(
            "Per-round critical path",
            ("round", "duration_s", "untracked_s", "critical path"),
            [(summary["round"], _fmt_s(summary["duration_s"]),
              _fmt_s(summary["untracked_s"]),
              " > ".join(
                  f"{step['name']}:{_fmt_s(step['duration_s'])}"
                  for step in summary["critical_path"]))
             for summary in summaries],
            note="each step is the longest child at its level; shrink "
                 "the leaf to shorten the round",
        )

        trends = round_trends(roots)
        rows = [("round", trends["rounds"]["count"],
                 _fmt_s(trends["rounds"]["p50_s"]),
                 _fmt_s(trends["rounds"]["p95_s"]),
                 _fmt_s(trends["rounds"]["p99_s"]),
                 _fmt_s(trends["rounds"]["max_s"]))]
        rows.extend(
            (phase, stats["count"], _fmt_s(stats["p50_s"]),
             _fmt_s(stats["p95_s"]), _fmt_s(stats["p99_s"]),
             _fmt_s(stats["max_s"]))
            for phase, stats in trends["phases"].items()
        )
        print_table("Round-time trends",
                    ("series", "n", "p50_s", "p95_s", "p99_s", "max_s"),
                    rows)
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.experiments.reporting import print_table
    from repro.telemetry import diff_traces, load_trace

    rows = diff_traces(load_trace(args.trace_a), load_trace(args.trace_b))
    print_table(
        f"Trace diff: A={args.trace_a}  B={args.trace_b}",
        ("phase", "n A", "n B", "total A (s)", "total B (s)",
         "delta (s)", "mean ratio"),
        [(row["phase"], row["count_a"], row["count_b"],
          _fmt_s(row["total_a_s"]), _fmt_s(row["total_b_s"]),
          f"{row['delta_total_s']:+.4f}",
          "--" if row["ratio"] is None else f"{row['ratio']:.2f}x")
         for row in rows],
        note="sorted by delta (B minus A): the top rows are where B "
             "got slower",
    )
    slowest = rows[0] if rows else None
    if slowest is not None and slowest["delta_total_s"] > 0:
        print(f"\nbiggest slowdown: {slowest['phase']} "
              f"(+{slowest['delta_total_s']:.4f}s total"
              + (f", {slowest['ratio']:.2f}x mean)"
                 if slowest["ratio"] else ")"))
    return 0


def _cmd_trace_folded(args) -> int:
    from pathlib import Path

    from repro.telemetry import build_tree, folded_stacks, load_trace

    text = folded_stacks(build_tree(load_trace(args.trace)))
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"folded stacks written to {args.out} "
              f"(feed to flamegraph.pl / speedscope / inferno)")
    else:
        print(text, end="")
    return 0


def _cmd_bench_check(args) -> int:
    from repro.benchcheck import (
        DEFAULT_TOLERANCE,
        compare,
        load_report,
        run_fleet_smoke,
        write_report,
    )

    tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    baseline = load_report(args.baseline)
    if args.candidate is not None:
        candidate = load_report(args.candidate)
        source = args.candidate
    else:
        print(f"running fleet smoke benchmark "
              f"(fleet={args.smoke_fleet}) ...")
        candidate = run_fleet_smoke(fleet=args.smoke_fleet, progress=print)
        source = "<fresh smoke run>"
    report = compare(baseline, candidate,
                     baseline_path=str(args.baseline),
                     default_tolerance=tolerance)

    from repro.experiments.reporting import print_table

    print_table(
        f"Benchmark check: {args.baseline} vs {source}",
        ("metric", "baseline", "candidate", "ratio", "floor", "status"),
        [(result.metric, f"{result.baseline:.4g}",
          f"{result.candidate:.4g}",
          f"{result.ratio:.3f}", f"{1.0 - result.tolerance:.2f}",
          "ok" if result.ok else "REGRESSED")
         for result in report.results],
        note=(f"skipped (not measured by candidate): "
              f"{', '.join(report.skipped)}" if report.skipped else ""),
    )
    if args.report is not None:
        write_report(args.report, report)
        print(f"comparison report written to {args.report}")
    if not report.ok:
        failed = [r.metric for r in report.results if not r.ok]
        print(f"\nREGRESSION: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("\nall benchmark metrics within tolerance")
    return 0


def _cmd_devices(args) -> int:
    devices = make_devices(args.scenario, count=args.workers)
    print(f"scenario {args.scenario!r}: {len(devices)} devices")
    for device_id, cluster, mode, mbps in scenario_table(devices):
        print(f"  device {device_id:2d}  cluster {cluster}  "
              f"mode {mode}  {mbps:5.1f} Mbps")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FedMP reproduction command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    _add_run_arguments(run_parser)
    run_parser.add_argument("--strategy", default="fedmp",
                            choices=sorted(STRATEGIES))
    run_parser.add_argument("--history", default=None,
                            help="write the round history to this JSON file")
    run_parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                            help="write atomic resume checkpoints "
                                 "(ckpt-NNNNNN.ckpt) into DIR")
    run_parser.add_argument("--checkpoint-every", type=int, default=1,
                            metavar="N",
                            help="checkpoint cadence in rounds "
                                 "(default: every round)")
    run_parser.add_argument("--resume", default=None, metavar="PATH",
                            help="resume from a checkpoint file or "
                                 "directory (latest checkpoint wins); "
                                 "workload flags are taken from the "
                                 "checkpoint, and the finished run is "
                                 "byte-identical to an uninterrupted one")
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="race several strategies to a target")
    _add_run_arguments(compare_parser)
    compare_parser.add_argument(
        "--strategies", nargs="+", default=["synfl", "fedmp"],
        choices=sorted(STRATEGIES),
    )
    compare_parser.set_defaults(func=_cmd_compare)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the parameter server as a long-lived TCP service "
             "(workers connect with `repro client`)")
    _add_run_arguments(serve_parser)
    serve_parser.add_argument("--strategy", default="fedmp",
                              choices=sorted(STRATEGIES))
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="listen address (default loopback)")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="listen port (0 picks an ephemeral "
                                   "port; see --port-file)")
    serve_parser.add_argument("--port-file", default=None, metavar="FILE",
                              help="write the bound port to FILE once "
                                   "listening (lets scripts wait on an "
                                   "ephemeral port)")
    serve_parser.add_argument("--min-workers", type=int, default=1,
                              metavar="N",
                              help="hold round 0 until N workers have "
                                   "registered")
    serve_parser.add_argument("--roster-script", default=None,
                              metavar="JSON",
                              help="pin membership per round for "
                                   "differential runs: {round: [worker "
                                   "ids]} as inline JSON or a JSON file "
                                   "path (largest key <= round applies)")
    serve_parser.add_argument("--drain-timeout-s", type=float,
                              default=10.0, metavar="S",
                              help="grace window for clients to observe "
                                   "the drain at shutdown")
    serve_parser.add_argument("--registration-timeout-s", type=float,
                              default=120.0, metavar="S",
                              help="give up waiting for the roster to "
                                   "fill after S seconds")
    serve_parser.add_argument("--history", default=None,
                              help="write the round history to this "
                                   "JSON file")
    serve_parser.add_argument("--checkpoint-dir", default=None,
                              metavar="DIR",
                              help="write atomic resume checkpoints "
                                   "(ckpt-NNNNNN.ckpt) into DIR")
    serve_parser.add_argument("--checkpoint-every", type=int, default=1,
                              metavar="N",
                              help="checkpoint cadence in rounds")
    serve_parser.add_argument("--resume", default=None, metavar="PATH",
                              help="resume a killed service from a "
                                   "checkpoint file or directory; the "
                                   "fleet roster and every stream resume "
                                   "mid-position, so the finished run is "
                                   "byte-identical to an uninterrupted "
                                   "one")
    serve_parser.set_defaults(func=_cmd_serve)

    client_parser = subparsers.add_parser(
        "client",
        help="run one worker process against a `repro serve` endpoint")
    client_parser.add_argument("--connect", required=True,
                               metavar="HOST:PORT",
                               help="service address to dial")
    client_parser.add_argument("--worker-id", type=int, default=None,
                               help="claim a specific worker slot "
                                    "(default: first free slot)")
    client_parser.add_argument("--heartbeat-s", type=float, default=2.0,
                               metavar="S",
                               help="heartbeat cadence while idle")
    client_parser.add_argument("--reconnect", action="store_true",
                               help="redial (keeping the worker id) if "
                                    "the connection drops -- e.g. while "
                                    "a SIGKILLed service resumes")
    client_parser.add_argument("--reconnect-timeout", type=float,
                               default=60.0, metavar="S",
                               help="give up redialling after S seconds "
                                    "of consecutive failures")
    client_parser.add_argument("--leave-after", type=int, default=None,
                               metavar="N",
                               help="leave gracefully after N completed "
                                    "dispatches (churn testing)")
    client_parser.set_defaults(func=_cmd_client)

    devices_parser = subparsers.add_parser(
        "devices", help="print a scenario's simulated device fleet")
    devices_parser.add_argument("--scenario", default="medium",
                                choices=sorted(HETEROGENEITY_SCENARIOS))
    devices_parser.add_argument("--workers", type=int, default=None)
    devices_parser.set_defaults(func=_cmd_devices)

    verify_parser = subparsers.add_parser(
        "verify",
        help="run the verification battery (invariants, differential "
             "fast-vs-dense / sync-vs-semisync, fault conformance, "
             "kill-and-resume, loopback-socket service mode)")
    verify_parser.add_argument("--preset", default="cnn",
                               choices=sorted(BENCH_TASKS),
                               help="bench-scale workload to verify on")
    verify_parser.add_argument("--rounds", type=int, default=5,
                               help="rounds per verification run")
    verify_parser.add_argument("--tolerance", type=int, default=0,
                               metavar="ULPS",
                               help="fast-vs-dense divergence tolerance "
                                    "(the fast path is specified bitwise "
                                    "identical: default 0)")
    verify_parser.add_argument("--semisync-tolerance", type=int,
                               default=None, metavar="ULPS",
                               help="sync-vs-semisync divergence tolerance "
                                    "(default: measured headroom, see "
                                    "DESIGN.md 3.4)")
    verify_parser.add_argument("--scenario", default="medium",
                               choices=sorted(HETEROGENEITY_SCENARIOS))
    verify_parser.add_argument("--workers", type=int, default=None,
                               help="override worker count (half A / half B)")
    verify_parser.add_argument("--seed", type=int, default=17)
    verify_parser.add_argument("--executor", default="serial",
                               choices=("serial", "process"),
                               help="'process' adds the serial-vs-process "
                                    "parity stage (0-ULP states + "
                                    "byte-identical history)")
    verify_parser.add_argument("--num-procs", type=int, default=None,
                               metavar="N",
                               help="pool size for the process stage")
    verify_parser.add_argument("--no-service", action="store_true",
                               help="skip the loopback-socket service "
                                    "differentials (subprocess fleets; "
                                    "the slowest stage)")
    verify_parser.set_defaults(func=_cmd_verify)

    trace_parser = subparsers.add_parser(
        "trace", help="offline analytics over a span-trace JSONL file")
    trace_subparsers = trace_parser.add_subparsers(
        dest="trace_command", required=True)

    trace_summary = trace_subparsers.add_parser(
        "summary",
        help="phase breakdown, per-round critical paths, p50/p95/p99 "
             "round-time trends")
    trace_summary.add_argument("trace", help="span JSONL file "
                                             "(from --trace-out)")
    trace_summary.add_argument("--round", type=int, default=None,
                               help="restrict the phase breakdown to one "
                                    "round index")
    trace_summary.set_defaults(func=_cmd_trace_summary)

    trace_diff = trace_subparsers.add_parser(
        "diff", help="compare two traces phase-by-phase (B minus A)")
    trace_diff.add_argument("trace_a", help="baseline trace JSONL")
    trace_diff.add_argument("trace_b", help="candidate trace JSONL")
    trace_diff.set_defaults(func=_cmd_trace_diff)

    trace_folded = trace_subparsers.add_parser(
        "folded",
        help="emit folded stacks (self-time in microseconds) for "
             "flamegraph tools")
    trace_folded.add_argument("trace", help="span JSONL file")
    trace_folded.add_argument("--out", default=None,
                              help="write to this file instead of stdout")
    trace_folded.set_defaults(func=_cmd_trace_folded)

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark baseline utilities")
    bench_subparsers = bench_parser.add_subparsers(
        dest="bench_command", required=True)
    bench_check = bench_subparsers.add_parser(
        "check",
        help="gate a candidate benchmark report against a committed "
             "baseline; exits 1 on regression")
    bench_check.add_argument("--baseline", default="BENCH_fleet.json",
                             help="committed baseline report "
                                  "(default: BENCH_fleet.json)")
    bench_check.add_argument("--candidate", default=None,
                             help="candidate report file; omit to run a "
                                  "fresh fleet smoke benchmark")
    bench_check.add_argument("--smoke-fleet", type=int, default=100_000,
                             metavar="N",
                             help="fleet size for the fresh smoke run "
                                  "(default: 100000)")
    bench_check.add_argument("--tolerance", type=float, default=None,
                             help="override the default fractional "
                                  "regression tolerance")
    bench_check.add_argument("--report", default=None,
                             help="write the comparison report JSON here")
    bench_check.set_defaults(func=_cmd_bench_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly with
        # the conventional SIGPIPE status instead of a traceback
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
