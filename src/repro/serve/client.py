"""The worker-side client of the parameter-server service.

:class:`ServiceClient` dials a :class:`~repro.serve.service.
FedMPService`, registers (taking any free slot, or a specific
``worker_id``), rebuilds its worker from the spec the service ships
back, and then serves the pull loop: poll ``pull_dispatch``, run the
exact :func:`repro.runtime.pool._handle_train` body every pool child
runs, push the contribution frame back.  Because both the worker
construction (``WorkerSpec.build``) and the training body are shared
verbatim with the process executor, socket-run training is bitwise
identical to pipe-run training by construction.

Churn knobs:

- ``leave_after=N`` leaves gracefully after N completed dispatches,
  shipping the worker's captured runtime state so a later rejoin (or
  a resumed run) continues its streams mid-position;
- ``reconnect=True`` redials the same address (keeping the assigned
  worker id) when the connection drops -- the client of a SIGKILLed
  service simply waits for the resumed service to come back up.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, Optional, Tuple

from repro.runtime import pool
from repro.runtime.sockets import SocketClosedError, SocketTransport
from repro.runtime.transport import (
    RetryPolicy,
    TransportError,
    TransportTimeoutError,
    WorkerCrashError,
)
from repro.serve.protocol import PROTOCOL_VERSION

__all__ = ["ClientError", "ServiceClient"]


class ClientError(RuntimeError):
    """The client could not register with or follow the service."""


class ServiceClient:
    """One worker process behind the socket protocol."""

    def __init__(self, address: Tuple[str, int], *,
                 worker_id: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 heartbeat_s: float = 2.0,
                 reconnect: bool = False,
                 reconnect_timeout_s: float = 60.0,
                 leave_after: Optional[int] = None,
                 metrics=None) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.worker_id = worker_id
        self.retry = retry if retry is not None else RetryPolicy()
        self.heartbeat_s = float(heartbeat_s)
        self.reconnect = bool(reconnect)
        self.reconnect_timeout_s = float(reconnect_timeout_s)
        self.leave_after = leave_after
        self.metrics = metrics
        #: dispatches completed across the client's whole life,
        #: reconnections included
        self.completed = 0
        self._seq = 0
        self.transport: Optional[SocketTransport] = None
        self.workers: Dict[int, object] = {}
        self.templates: Dict[object, object] = {}

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- lifecycle -----------------------------------------------------
    def run(self) -> int:
        """Serve until the service drains (or ``leave_after`` fires).

        Returns the total number of completed dispatches.  Connection
        loss raises unless ``reconnect`` is set, in which case the
        client redials (keeping its worker id) until
        ``reconnect_timeout_s`` of consecutive failures have passed.
        """
        deadline = None
        while True:
            try:
                self._connect_and_register()
                deadline = None
                self._serve()
                return self.completed
            except (SocketClosedError, WorkerCrashError,
                    TransportTimeoutError, ConnectionError,
                    OSError) as exc:
                self._close()
                if not self.reconnect:
                    raise
                now = time.monotonic()
                if deadline is None:
                    deadline = now + self.reconnect_timeout_s
                if now > deadline:
                    raise ClientError(
                        f"could not re-reach the service at "
                        f"{self.address} within "
                        f"{self.reconnect_timeout_s:.0f}s: {exc}"
                    ) from exc
                time.sleep(0.2)

    def _connect_and_register(self) -> None:
        self._close()
        transport = SocketTransport(self.address, retry=self.retry,
                                    metrics=self.metrics)
        transport.connect()
        reply = transport.request(("register", self._next_seq(), {
            "protocol": PROTOCOL_VERSION,
            "worker_id": self.worker_id,
        }))
        payload = reply[2]
        if payload.get("protocol") != PROTOCOL_VERSION:
            transport.close()
            raise ClientError(
                f"service speaks protocol {payload.get('protocol')!r}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        self.worker_id = int(payload["worker_id"])
        spec = pickle.loads(payload["spec"])
        # a fresh registration always rebuilds the worker from the
        # shipped spec: its runtime_state puts every stream (data RNG,
        # iterator cursor, jitter) at the service's recorded position
        self.workers = {self.worker_id: spec.build()}
        self.templates = {}
        self.transport = transport

    def _serve(self) -> None:
        last_beat = time.monotonic()
        while True:
            reply = self.transport.request(
                ("pull_dispatch", self._next_seq(), self.worker_id)
            )
            op = reply[0]
            if op == "dispatch":
                _, _, tseq, frame, template, drops = reply
                self._train_and_push(tseq, frame, template, drops)
                self.completed += 1
                if (self.leave_after is not None
                        and self.completed >= self.leave_after):
                    self._leave()
                    return
            elif op == "idle":
                hint = float(reply[2])
                now = time.monotonic()
                if now - last_beat >= self.heartbeat_s:
                    self.transport.request(
                        ("heartbeat", self._next_seq(), self.worker_id,
                         time.time())
                    )
                    last_beat = now
                time.sleep(hint)
            elif op == "capture":
                cseq = reply[2]
                blob = pickle.dumps(
                    self.workers[self.worker_id].capture_runtime_state(),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self.transport.request(
                    ("push_state", self._next_seq(), self.worker_id,
                     cseq, blob)
                )
            elif op == "drain":
                self._leave()
                return
            else:
                raise TransportError(
                    f"unexpected pull_dispatch reply op {op!r}"
                )

    def _train_and_push(self, tseq: int, frame: bytes, template,
                        drops) -> None:
        # a ("tblob", ...) materialises into the local template cache
        # first, then trains through the "cached" branch -- the byte-
        # for-byte path every pool child takes after an shm attach
        if template[0] == "tblob":
            _, key, blob = template
            self.templates[key] = pickle.loads(blob)
            template = ("cached", key)
        out = pool._handle_train(self.workers, self.templates, frame,
                                 template, tuple(drops))
        self.transport.request(
            ("push_contribution", self._next_seq(), self.worker_id,
             tseq, out)
        )

    def _leave(self) -> None:
        try:
            state = self.workers[self.worker_id].capture_runtime_state()
            blob = pickle.dumps(state,
                                protocol=pickle.HIGHEST_PROTOCOL)
            self.transport.request(
                ("leave", self._next_seq(), self.worker_id, blob)
            )
        finally:
            self._close()

    def _close(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None
