"""The parameter-server service protocol: ops, versioning, lifecycle.

Every message is a pickled ``(op, seq, *args)`` tuple inside a
length-prefixed frame (see :mod:`repro.runtime.sockets`).  All requests
are **client-initiated**: the service never pushes, so a worker's
single TCP connection is a clean request/response channel and
:class:`~repro.runtime.sockets.SocketTransport` drives the whole
client side.  Training payloads stay in the CRC-checked
:mod:`repro.runtime.codec` frames and ride as ``bytes`` arguments.

Request grammar (replies echo the request ``seq``; any handler error
comes back as ``("err", seq, traceback_text)``):

===========================================  =================================
request                                      replies
===========================================  =================================
``("register", seq, info)``                  ``("registered", seq, payload)``
``("leave", seq, wid, state_blob)``          ``("bye", seq)``
``("pull_dispatch", seq, wid)``              ``("dispatch", seq, tseq, frame,
                                             template, drops)`` /
                                             ``("idle", seq, hint_s)`` /
                                             ``("capture", seq, cseq)`` /
                                             ``("drain", seq)``
``("push_contribution", seq, wid, tseq,      ``("accepted", seq)``
frame)``
``("push_state", seq, wid, cseq, blob)``     ``("accepted", seq)``
``("heartbeat", seq, wid, sent_at)``         ``("pong", seq)``
``("status", seq)``                          ``("status_ok", seq, report)``
===========================================  =================================

``info`` carries ``{"protocol": PROTOCOL_VERSION, "worker_id": id or
None}``; the ``registered`` payload returns the assigned worker id and
a pickled :class:`~repro.runtime.pool.WorkerSpec` from which the client
rebuilds the worker with bitwise-identical RNG streams (including any
checkpoint- or leave-captured runtime state, so rejoining workers
resume their streams mid-position).  ``template`` references the
sub-model graph as ``("blob", bytes)`` (one-shot, never cached),
``("tblob", key, bytes)`` (cache under ``key``, then clone) or
``("cached", key)``; ``drops`` lists template keys to evict first --
the socket analogue of the pipe transport's shm/cached modes.

Worker lifecycle::

    register --> ACTIVE --(service drains)--> DRAINING --leave--> GONE
                   ^                                               |
                   +--------------- re-register -------------------+

A graceful ``leave`` ships the worker's captured runtime state so a
later re-registration (same run or a resumed one) continues the exact
data/jitter streams; a dropped connection transitions to GONE without
a capture, and a re-registering worker then restarts from the last
checkpointed position instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ACTIVE",
    "DRAINING",
    "GONE",
    "WORKER_STATES",
    "RosterEntry",
]

#: bumped on any incompatible change to the request grammar above;
#: ``register`` is refused when client and service disagree
PROTOCOL_VERSION = 1

#: lifecycle states of a roster entry
ACTIVE = "active"
DRAINING = "draining"
GONE = "gone"
WORKER_STATES = (ACTIVE, DRAINING, GONE)


@dataclass
class RosterEntry:
    """One worker slot's registration record on the service."""

    worker_id: int
    state: str = GONE
    #: how many times this slot has registered (1 = first join)
    registrations: int = 0
    #: host wall-clock of the last heartbeat or request
    last_seen: Optional[float] = None
    #: runtime state captured at the last graceful leave; handed back
    #: in the spec on re-registration so the worker's RNG/iterator
    #: streams continue mid-position
    runtime_state: Optional[dict] = field(default=None, repr=False)

    def summary(self) -> dict:
        """Checkpoint/status form (no runtime state: the checkpoint's
        ``workers`` payload is the authoritative stream capture)."""
        return {
            "state": self.state,
            "registrations": self.registrations,
        }
