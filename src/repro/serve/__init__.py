"""Parameter-server service mode: live workers over sockets.

See :mod:`repro.serve.protocol` for the request grammar,
:mod:`repro.serve.service` for the daemon and its socket-backed
executor, and :mod:`repro.serve.client` for the worker process.
"""

from repro.serve.client import ClientError, ServiceClient
from repro.serve.protocol import (
    ACTIVE,
    DRAINING,
    GONE,
    PROTOCOL_VERSION,
    RosterEntry,
)
from repro.serve.service import (
    FedMPService,
    ServiceDrained,
    ServiceError,
    SocketExecutor,
)

__all__ = [
    "ACTIVE",
    "DRAINING",
    "GONE",
    "PROTOCOL_VERSION",
    "RosterEntry",
    "ClientError",
    "ServiceClient",
    "FedMPService",
    "ServiceDrained",
    "ServiceError",
    "SocketExecutor",
]
