"""The parameter-server service: a long-running daemon owning the engine.

:class:`FedMPService` binds a loopback/LAN listener, accepts live
worker registrations, and drives the ordinary round
:class:`~repro.fl.engine.Engine` + scheduler over them.  Training
itself runs in the *clients* (see :mod:`repro.serve.client`):
:class:`SocketExecutor` is the engine's execution seam, queueing
encoded dispatches per worker and collecting contribution frames as
clients pull and push them through the request protocol of
:mod:`repro.serve.protocol`.

Determinism carries over from the process executor by construction:
the service encodes dispatches with the exact
:func:`~repro.runtime.codec.encode_dispatch` arguments the process
executor uses, clients run the exact
:func:`repro.runtime.pool._handle_train` body on workers rebuilt from
their :class:`~repro.runtime.pool.WorkerSpec`, and decode/aggregate
order in the parent is submission order -- so a loopback-socket run is
bitwise identical to a serial run over the same membership script
(pinned by ``repro verify``'s service stage).

The service is single-threaded: one ``selectors`` pump serves every
connection, driven from three places -- the executor's gather loop,
the membership provider's wait, and checkpoint-time worker-state
capture.  There are no locks and no cross-thread hand-offs.
"""

from __future__ import annotations

import dataclasses
import pickle
import selectors
import signal
import socket
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fl.checkpoint import (
    Checkpoint,
    load_checkpoint,
    resolve_checkpoint,
)
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.pruning.plan import plan_signature
from repro.runtime.codec import (
    WIRE_PROFILES,
    decode_contribution,
    encode_dispatch,
)
from repro.runtime.executor import Executor, TrainResult
from repro.runtime.sockets import FrameBuffer, encode_message
from repro.runtime.transport import (
    RetryPolicy,
    TransportError,
    TransportTimeoutError,
    WorkerCrashError,
)
from repro.serve.protocol import (
    ACTIVE,
    DRAINING,
    GONE,
    PROTOCOL_VERSION,
    RosterEntry,
)
from repro.telemetry.runtime import DISABLED_TELEMETRY, Telemetry

__all__ = [
    "ServiceError",
    "ServiceDrained",
    "SocketExecutor",
    "FedMPService",
]


class ServiceError(RuntimeError):
    """A service-side protocol or lifecycle failure."""


class ServiceDrained(ServiceError):
    """The service was asked to drain before the run could proceed."""


@dataclass
class _Outstanding:
    """One dispatched training request awaiting its contribution."""

    request: object
    #: the exact outbox message, kept so a reconnecting worker can have
    #: its lost dispatch re-issued (with a rebuilt template reference)
    message: Tuple = ()
    handed: bool = False
    frame: Optional[bytes] = field(default=None, repr=False)


@dataclass
class _Connection:
    """Per-socket read state on the service side."""

    sock: socket.socket
    frames: FrameBuffer = field(default_factory=FrameBuffer)
    worker_id: Optional[int] = None


class SocketExecutor(Executor):
    """Engine execution seam that trains on remote socket clients.

    Mirrors :class:`~repro.runtime.executor.ProcessExecutor`'s round
    shape exactly -- same ``serialize`` / ``transfer`` /
    ``parallel_train`` spans, same ``encode_dispatch`` arguments, same
    ``wire_bytes_total`` kinds, same decode/validate/materialise and
    straggler flagging -- but instead of writing to pool pipes it
    queues ``(seq, frame, template, drops)`` per worker and lets
    clients pull them through the service's request loop.

    Templates travel as ``("blob", ...)`` when sub-models must be
    pickled per dispatch (rng-bearing modules), else once per plan
    signature per worker as ``("tblob", key, ...)`` which the client
    caches and the service thereafter references as ``("cached",
    key)`` -- the socket analogue of the process executor's shared-
    memory segments, LRU-bounded by ``template_cache_limit`` with
    evictions piggybacked as drop notices.
    """

    name = "socket"

    def __init__(self, telemetry: Optional[Telemetry] = None,
                 pickle_submodels: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 straggler_quorum: float = 0.85,
                 straggler_multiplier: float = 1.5,
                 wire_profile: str = "exact",
                 wire_keep_fraction: float = 0.25,
                 wire_quantize_bits: int = 8,
                 template_cache_limit: int = 8) -> None:
        super().__init__()
        from repro.runtime.transport import StragglerDetector

        if wire_profile not in WIRE_PROFILES:
            raise ValueError(
                f"wire_profile must be one of {WIRE_PROFILES}, "
                f"got {wire_profile!r}"
            )
        if template_cache_limit < 1:
            raise ValueError(
                f"template_cache_limit must be >= 1, "
                f"got {template_cache_limit}"
            )
        self.telemetry = (
            telemetry if telemetry is not None else DISABLED_TELEMETRY
        )
        self.pickle_submodels = pickle_submodels
        self.wire_profile = wire_profile
        self.wire_keep_fraction = wire_keep_fraction
        self.wire_quantize_bits = wire_quantize_bits
        self.template_cache_limit = template_cache_limit
        self.retry = retry if retry is not None else RetryPolicy()
        self.detector = StragglerDetector(straggler_quorum,
                                          straggler_multiplier)
        #: owning service, installed by :class:`FedMPService`
        self.service: Optional["FedMPService"] = None
        self._seq = 0
        self._capture_seq = 0
        #: worker id -> queued outbound items, drained by pull_dispatch
        self._outbox: Dict[int, deque] = {}
        #: the current round's in-flight table (None between rounds)
        self._pending: Optional[Dict[int, _Outstanding]] = None
        #: worker id -> plan-signature keys its client process holds
        self._client_templates: Dict[int, "OrderedDict[object, bool]"] = {}
        self._pending_drops: Dict[int, set] = {}
        #: capture seq -> collected runtime-state blob (None = waiting)
        self._captures: Dict[int, Optional[bytes]] = {}
        self._capture_owner: Dict[int, int] = {}

    # -- plumbing ------------------------------------------------------
    def _service(self) -> "FedMPService":
        if self.service is None:
            raise ServiceError(
                "SocketExecutor is not attached to a FedMPService"
            )
        return self.service

    @property
    def parallelism(self) -> int:
        if self.service is None:
            return 0
        return sum(
            1 for entry in self.service.roster.values()
            if entry.state == ACTIVE
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _next_capture_seq(self) -> int:
        self._capture_seq += 1
        return self._capture_seq

    def _template_for(self, worker_id: int, request) -> Tuple:
        """Template reference for one dispatch, charging template wire
        bytes exactly when a module graph actually travels."""
        metrics = self.telemetry.metrics
        if self.pickle_submodels:
            blob = pickle.dumps(request.submodel,
                                protocol=pickle.HIGHEST_PROTOCOL)
            metrics.counter("wire_bytes_total",
                            kind="template").inc(len(blob))
            return ("blob", blob)
        key = plan_signature(request.plan)
        cache = self._client_templates.setdefault(worker_id, OrderedDict())
        if key in cache:
            cache.move_to_end(key)
            return ("cached", key)
        blob = pickle.dumps(request.submodel,
                            protocol=pickle.HIGHEST_PROTOCOL)
        metrics.counter("wire_bytes_total", kind="template").inc(len(blob))
        cache[key] = True
        while len(cache) > self.template_cache_limit:
            old_key, _ = cache.popitem(last=False)
            metrics.counter("dispatch_cache_evictions_total").inc()
            self._pending_drops.setdefault(worker_id, set()).add(old_key)
        return ("tblob", key, blob)

    # -- the round -----------------------------------------------------
    def run(self, requests, round_index: int = 0) -> List[TrainResult]:
        if not requests:
            return []
        telemetry = self.telemetry
        metrics = telemetry.metrics
        self.last_stragglers = []
        with telemetry.span("parallel_train", round=round_index,
                            requests=len(requests),
                            procs=self.parallelism) as batch_span:
            # -- serialize ----------------------------------------------
            pending: Dict[int, _Outstanding] = {}
            profile = self.wire_profile
            with telemetry.span("serialize", round=round_index,
                                requests=len(requests)):
                for request in requests:
                    frame = encode_dispatch(
                        request.worker_id, request.plan,
                        request.dispatched_state, tau=request.tau,
                        hyper=request.hyper, emulate_s=request.emulate_s,
                        reply_profile=profile,
                        reply_keep_fraction=(
                            self.wire_keep_fraction
                            if profile != "exact" else None
                        ),
                        reply_quantize_bits=(
                            self.wire_quantize_bits
                            if profile != "exact" else None
                        ),
                    )
                    worker_id = request.worker_id
                    template = self._template_for(worker_id, request)
                    drops = self._pending_drops.pop(worker_id, None)
                    seq = self._next_seq()
                    metrics.counter("wire_bytes_total",
                                    kind="dispatch").inc(len(frame))
                    message = ("dispatch", seq, frame, template,
                               tuple(drops) if drops else ())
                    self._outbox.setdefault(worker_id, deque()).append(
                        message
                    )
                    pending[seq] = _Outstanding(request=request,
                                                message=message)
            self._pending = pending

            # -- transfer + gather --------------------------------------
            started = time.perf_counter()
            try:
                with telemetry.span("transfer", round=round_index,
                                    requests=len(requests)
                                    ) as transfer_span:
                    completion_s = self._gather(pending, started)
                    reply_bytes = sum(
                        len(flight.frame) for flight in pending.values()
                    )
                    metrics.counter("wire_bytes_total",
                                    kind="contribution").inc(reply_bytes)
                    transfer_span.set("reply_bytes", reply_bytes)
            finally:
                self._pending = None

            # -- decode + per-request spans -----------------------------
            results = []
            for seq, flight in pending.items():
                request = flight.request
                payload = decode_contribution(flight.frame,
                                              expect_profile=profile)
                if payload.worker_id != request.worker_id:
                    raise TransportError(
                        f"reply {seq} carries worker "
                        f"{payload.worker_id}, expected "
                        f"{request.worker_id}"
                    )
                with telemetry.span("local_train", round=round_index,
                                    worker=request.worker_id,
                                    tau=request.tau,
                                    ratio=request.ratio) as span:
                    span.set("train_loss", float(payload.train_loss))
                    span.set("worker_wall_s", float(payload.wall_time_s))
                results.append(TrainResult(
                    worker_id=payload.worker_id,
                    sub_state=payload.materialise(
                        request.dispatched_state
                    ),
                    train_loss=float(payload.train_loss),
                    wall_time_s=float(payload.wall_time_s),
                ))

            # -- straggler heartbeat ------------------------------------
            flagged = self.detector.flag(completion_s)
            if flagged:
                self.last_stragglers = sorted(flagged)
                metrics.counter("stragglers_total",
                                executor=self.name).inc(len(flagged))
                telemetry.event("straggler_detected", round=round_index,
                                workers=sorted(flagged))
                batch_span.set("stragglers", sorted(flagged))
        return results

    def _gather(self, pending: Dict[int, _Outstanding],
                started: float) -> Dict[int, float]:
        """Pump the service until every contribution frame is in.

        Dispatches are never re-encoded mid-round (a replay with fresh
        streams would double-consume client RNG), but a worker that
        reconnects gets its lost messages re-queued verbatim by
        :meth:`forget_worker`.  A worker that *gracefully leaves* with
        work outstanding can never finish it -- that fails fast as
        :class:`~repro.runtime.transport.WorkerCrashError`; a lost
        connection waits out the retry budget (the client may redial).
        """
        service = self._service()
        metrics = self.telemetry.metrics
        completion: Dict[int, float] = {}
        clock = self.retry.clock(start=started)
        while True:
            remaining = [
                seq for seq, flight in pending.items()
                if flight.frame is None
            ]
            if not remaining:
                return completion
            if clock.remaining() <= 0.0:
                raise TransportTimeoutError(
                    f"{len(remaining)} contribution(s) still missing "
                    f"after {clock.elapsed():.1f}s "
                    f"(budget {clock.budget_s:.1f}s)"
                )
            handled = service.pump(clock.interval())
            arrived = [
                seq for seq in remaining
                if pending[seq].frame is not None
            ]
            if arrived:
                now = time.perf_counter() - started
                for seq in arrived:
                    completion[pending[seq].request.worker_id] = now
            if handled:
                # any inbound traffic counts as liveness (idle polls,
                # heartbeats): the attempt budget is for a *silent*
                # fleet, the wall-clock budget bounds a wedged one --
                # mirroring the process gather, where any readable pipe
                # resets the attempt clock
                clock.reset()
                continue
            metrics.counter("retries_total", transport="socket").inc()
            left = sorted({
                pending[seq].request.worker_id for seq in remaining
                if service.gone_reason(
                    pending[seq].request.worker_id
                ) == "leave"
            })
            if left:
                raise WorkerCrashError(
                    f"worker(s) {left} left the service with training "
                    f"request(s) outstanding"
                )
            if not clock.tick():
                raise TransportTimeoutError(
                    f"no contribution after {clock.attempts} backoff "
                    f"interval(s) ({clock.elapsed():.1f}s elapsed)"
                )

    # -- service-facing surface ----------------------------------------
    def next_for(self, worker_id: int) -> Optional[Tuple]:
        """The next queued outbox item for a polling worker, if any."""
        queue = self._outbox.get(worker_id)
        if not queue:
            return None
        item = queue.popleft()
        if item[0] == "dispatch" and self._pending is not None:
            flight = self._pending.get(item[1])
            if flight is not None:
                flight.handed = True
        return item

    def deliver(self, tseq: int, worker_id: int, frame: bytes) -> None:
        """Accept one pushed contribution frame (first delivery wins)."""
        pending = self._pending or {}
        flight = pending.get(tseq)
        if flight is None or flight.request.worker_id != worker_id:
            raise ServiceError(
                f"unexpected contribution seq {tseq} from worker "
                f"{worker_id}"
            )
        if flight.frame is None:
            flight.frame = frame

    def deliver_state(self, cseq: int, worker_id: int,
                      blob: bytes) -> None:
        """Accept one pushed runtime-state capture."""
        owner = self._capture_owner.get(cseq)
        if owner != worker_id:
            raise ServiceError(
                f"unexpected state capture seq {cseq} from worker "
                f"{worker_id}"
            )
        self._captures[cseq] = blob

    def forget_worker(self, worker_id: int) -> None:
        """Reset all per-client-process assumptions for a worker.

        Called on every (re-)registration: a fresh client process has
        an empty template cache, and anything handed to (or queued
        for) the previous connection is gone -- so cached-template
        bookkeeping is dropped and the worker's unanswered dispatches
        and capture markers are re-queued, templates rebuilt.
        """
        self._client_templates.pop(worker_id, None)
        self._pending_drops.pop(worker_id, None)
        queue = self._outbox.get(worker_id)
        if queue is not None:
            queue.clear()
        if self._pending:
            for seq in sorted(self._pending):
                flight = self._pending[seq]
                if (flight.request.worker_id != worker_id
                        or flight.frame is not None):
                    continue
                frame = flight.message[2]
                template = self._template_for(worker_id, flight.request)
                drops = self._pending_drops.pop(worker_id, None)
                message = ("dispatch", seq, frame, template,
                           tuple(drops) if drops else ())
                flight.message = message
                flight.handed = False
                self._outbox.setdefault(worker_id, deque()).append(
                    message
                )
        for cseq, owner in sorted(self._capture_owner.items()):
            if owner == worker_id and self._captures.get(cseq) is None:
                self._outbox.setdefault(worker_id, deque()).append(
                    ("capture", cseq)
                )

    # -- checkpoint support --------------------------------------------
    def capture_worker_states(self) -> Dict[int, Dict[str, object]]:
        """Pull runtime state from every live client, roster for the rest.

        Active workers answer a queued ``capture`` marker on their next
        poll; workers gone after a graceful leave contribute the state
        captured at that leave.  Workers lost without a capture are
        omitted -- the engine then keeps its parent-side snapshot for
        them (best effort; their true stream position died with the
        client process).
        """
        service = self._service()
        states: Dict[int, Dict[str, object]] = {}
        waiting: Dict[int, int] = {}
        for worker_id in sorted(service.roster):
            entry = service.roster[worker_id]
            if entry.state in (ACTIVE, DRAINING):
                cseq = self._next_capture_seq()
                self._captures[cseq] = None
                self._capture_owner[cseq] = worker_id
                self._outbox.setdefault(worker_id, deque()).append(
                    ("capture", cseq)
                )
                waiting[cseq] = worker_id
            elif entry.runtime_state is not None:
                states[worker_id] = entry.runtime_state
        clock = self.retry.clock()
        while waiting:
            progressed = bool(service.pump(clock.interval()))
            for cseq in sorted(waiting):
                worker_id = waiting[cseq]
                blob = self._captures.get(cseq)
                if blob is not None:
                    states[worker_id] = pickle.loads(blob)
                elif service.roster[worker_id].state == GONE:
                    # left (or was lost) while the marker was queued;
                    # fall back to its leave capture when there is one
                    entry = service.roster[worker_id]
                    if entry.runtime_state is not None:
                        states[worker_id] = entry.runtime_state
                else:
                    continue
                del waiting[cseq]
                self._captures.pop(cseq, None)
                self._capture_owner.pop(cseq, None)
                progressed = True
            if progressed:
                clock.reset()
            elif not clock.tick():
                raise TransportTimeoutError(
                    f"worker(s) {sorted(set(waiting.values()))} never "
                    f"answered the checkpoint state capture"
                )
        return states

    def close(self) -> None:
        if self.service is not None:
            self.service.shutdown()


class FedMPService:
    """A long-running FedMP parameter server on a TCP listener.

    Owns the engine, the scheduler, and the fleet roster.  Workers are
    remote :class:`~repro.serve.client.ServiceClient` processes that
    register over the socket protocol; the membership provider feeds
    the live (or scripted) roster into
    :meth:`~repro.fl.engine.Engine.present_workers`, so the ordinary
    schedulers drive rounds over whoever is actually connected.

    ``roster_script`` pins membership for differential verification: a
    ``{round: [worker ids]}`` dict (largest key <= round applies).
    The provider then *waits* until every scripted worker is
    registered and returns exactly the scripted list -- making the
    round sequence independent of client arrival timing, hence
    bit-comparable with a serial reference run driven by the same
    script.  Without a script, round 0 waits for ``min_workers`` and
    later rounds for at least one active worker.

    SIGTERM/SIGINT request a cooperative drain: the round in flight
    finishes, an interrupt checkpoint is written with the true next
    round, connected clients are told to drain, and :meth:`run`
    returns the partial history.  Resuming that checkpoint (with
    ``resume_from``) continues byte-identically -- the checkpoint's
    ``service`` payload restores the roster's registration ledger, and
    re-registering clients get specs carrying their checkpointed
    stream positions.
    """

    def __init__(self, task, devices, config=None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 telemetry: Optional[Telemetry] = None,
                 hooks=None,
                 checkpoint_meta: Optional[dict] = None,
                 resume_from=None,
                 min_workers: int = 1,
                 roster_script: Optional[Dict[int, List[int]]] = None,
                 idle_hint_s: float = 0.02,
                 drain_timeout_s: float = 10.0,
                 registration_timeout_s: float = 120.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        if resume_from is not None:
            if isinstance(resume_from, Checkpoint):
                checkpoint = resume_from
            else:
                checkpoint = load_checkpoint(
                    resolve_checkpoint(resume_from)
                )
            if config is not None and config != checkpoint.config:
                raise ServiceError(
                    "explicit config differs from the checkpoint's; "
                    "pass config=None to resume with the checkpointed "
                    "config"
                )
            config = checkpoint.config
        else:
            checkpoint = None
            if config is None:
                raise ValueError(
                    "config is required unless resume_from is set"
                )

        self.telemetry = (
            telemetry if telemetry is not None else DISABLED_TELEMETRY
        )
        self.min_workers = int(min_workers)
        self.roster_script = (
            {int(round_index): [int(w) for w in workers]
             for round_index, workers in roster_script.items()}
            if roster_script is not None else None
        )
        self.idle_hint_s = float(idle_hint_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.registration_timeout_s = float(registration_timeout_s)
        self.draining = False
        self._closed = False

        # listener first: the address is known (and publishable) before
        # the engine's model build does any heavy lifting
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, int(port)))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self.address: Tuple[str, int] = listener.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, None)
        self._conn_by_worker: Dict[int, _Connection] = {}

        quorum = (
            config.deadline_quorum
            if getattr(config, "deadline_quorum", None) is not None
            else 0.85
        )
        executor = SocketExecutor(
            telemetry=self.telemetry,
            retry=retry,
            straggler_quorum=quorum,
            straggler_multiplier=getattr(
                config, "deadline_multiplier", 1.5
            ),
            wire_profile=getattr(config, "wire_profile", "exact"),
            wire_keep_fraction=getattr(
                config, "wire_keep_fraction", 0.25
            ),
            wire_quantize_bits=getattr(config, "wire_quantize_bits", 8),
            template_cache_limit=getattr(
                config, "template_cache_limit", 8
            ),
        )
        executor.service = self
        self.executor = executor
        # note: config.executor stays "serial" -- the socket executor is
        # injected through the engine's executor seam, so the stored
        # config equals a plain serial run's and a service checkpoint
        # resumes under either `repro serve --resume` or `repro run
        # --resume` without a config-equality mismatch
        self.engine = Engine(
            task, devices, config, hooks=hooks, telemetry=self.telemetry,
            executor=executor, restore=checkpoint,
            checkpoint_meta=checkpoint_meta,
        )
        executor.pickle_submodels = self.engine._has_rng_modules
        self.engine.membership_provider = self._membership
        self.engine.checkpoint_extra_provider = (
            self._service_checkpoint_state
        )
        self._scheduler = make_scheduler(config)

        self.roster: Dict[int, RosterEntry] = {
            worker_id: RosterEntry(worker_id=worker_id)
            for worker_id in self.engine.worker_ids
        }
        self.counters: Dict[str, int] = {
            "register": 0, "reconnect": 0, "leave": 0, "lost": 0,
        }
        self._gone_reason: Dict[int, str] = {}
        self._specs_by_id = {
            spec.worker_id: spec for spec in self.engine.worker_specs
        }
        restored = self.engine.restored_service_state
        if restored:
            for worker_id, summary in restored.get("roster", {}).items():
                entry = self.roster.get(int(worker_id))
                if entry is not None:
                    # every slot restarts GONE: clients must re-register
                    # against the resumed service, whatever state the
                    # killed process last saw
                    entry.registrations = int(
                        summary.get("registrations", 0)
                    )
            for kind, count in restored.get("counters", {}).items():
                if kind in self.counters:
                    self.counters[kind] = int(count)

    # -- lifecycle -----------------------------------------------------
    def run(self):
        """Serve the whole run; returns the training history.

        Blocks until the scheduler finishes (or a drain interrupts it),
        then drains connected clients and closes the listener.
        """
        self._install_signal_handlers()
        self.telemetry.event("service_started", host=self.address[0],
                             port=self.address[1],
                             workers=len(self.roster))
        try:
            try:
                return self._scheduler.run(self.engine)
            except ServiceDrained:
                return self.engine.history
        finally:
            self.shutdown()
            self.engine.close()

    def _install_signal_handlers(self) -> None:
        def _request_drain(signum, frame):
            self.engine.request_interrupt()

        # signal handlers only install on the main thread; tests drive
        # the service from a worker thread and rely on shutdown()
        try:
            signal.signal(signal.SIGTERM, _request_drain)
            signal.signal(signal.SIGINT, _request_drain)
        except ValueError:
            pass

    def shutdown(self, drain_timeout_s: Optional[float] = None) -> None:
        """Drain connected clients and close the listener.  Idempotent."""
        if self._closed:
            return
        self.draining = True
        for entry in self.roster.values():
            if entry.state == ACTIVE:
                entry.state = DRAINING
        timeout = (
            drain_timeout_s if drain_timeout_s is not None
            else self.drain_timeout_s
        )
        deadline = time.monotonic() + timeout
        while any(
            entry.state in (ACTIVE, DRAINING)
            for entry in self.roster.values()
        ):
            if time.monotonic() > deadline:
                break
            self.pump(0.05)
        self._closed = True
        for connection in list(self._conn_by_worker.values()):
            self._drop_connection(connection)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for key in list(self._selector.get_map().values()):
            if isinstance(key.data, _Connection):
                self._drop_connection(key.data)
        self._selector.close()
        self.telemetry.event("service_stopped",
                             counters=dict(self.counters))

    # -- the pump ------------------------------------------------------
    def pump(self, timeout_s: float = 0.0) -> int:
        """Serve pending socket events; returns messages handled."""
        if self._closed:
            return 0
        handled = 0
        for key, _ in self._selector.select(timeout_s):
            if key.data is None:
                self._accept()
            else:
                handled += self._read(key.data)
        return handled

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            self._selector.register(
                sock, selectors.EVENT_READ, _Connection(sock=sock)
            )

    def _read(self, connection: _Connection) -> int:
        alive = True
        while True:
            try:
                chunk = connection.sock.recv(1 << 20)
            except BlockingIOError:
                break
            except (ConnectionError, OSError):
                alive = False
                break
            if not chunk:
                alive = False
                break
            connection.frames.feed(chunk)
        handled = 0
        for message in connection.frames.pop_messages():
            self._handle(connection, message)
            handled += 1
        if not alive:
            self._disconnect(connection)
        return handled

    def _send(self, connection: _Connection, message) -> None:
        data = memoryview(encode_message(message))
        sock = connection.sock
        while data:
            try:
                sent = sock.send(data)
            except BlockingIOError:
                # the client's receive buffer is full mid-frame: wait
                # for writability (bounded; a stuck peer is dropped)
                import select as _select
                _, writable, _ = _select.select([], [sock], [], 5.0)
                if not writable:
                    self._disconnect(connection)
                    return
                continue
            except (ConnectionError, OSError):
                self._disconnect(connection)
                return
            data = data[sent:]

    def _disconnect(self, connection: _Connection) -> None:
        worker_id = connection.worker_id
        self._drop_connection(connection)
        if worker_id is None:
            return
        if self._conn_by_worker.get(worker_id) is connection:
            del self._conn_by_worker[worker_id]
        entry = self.roster.get(worker_id)
        if entry is not None and entry.state in (ACTIVE, DRAINING):
            entry.state = GONE
            self._gone_reason[worker_id] = "lost"
            self.counters["lost"] += 1
            metrics = self.telemetry.metrics
            metrics.counter("worker_departures_total", kind="lost").inc()
            metrics.gauge("connected_workers").set(
                float(self._active_count())
            )
            self.telemetry.event("worker_lost", worker=worker_id)

    def _drop_connection(self, connection: _Connection) -> None:
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        try:
            connection.sock.close()
        except OSError:
            pass

    def _active_count(self) -> int:
        return sum(
            1 for entry in self.roster.values() if entry.state == ACTIVE
        )

    def gone_reason(self, worker_id: int) -> Optional[str]:
        """How a worker last went GONE (``"leave"``/``"lost"``), or
        None while it is registered."""
        entry = self.roster.get(worker_id)
        if entry is None or entry.state != GONE:
            return None
        return self._gone_reason.get(worker_id)

    # -- request handling ----------------------------------------------
    def _handle(self, connection: _Connection, message) -> None:
        try:
            op, seq = message[0], message[1]
        except (TypeError, IndexError):
            return  # not even (op, seq, ...): drop silently
        handler = self._HANDLERS.get(op)
        try:
            if handler is None:
                raise ServiceError(f"unknown request op {op!r}")
            reply = handler(self, connection, message)
        except ServiceError as exc:
            reply = ("err", seq, str(exc))
        except Exception:
            reply = ("err", seq, traceback.format_exc())
        if reply is not None:
            self._send(connection, reply)

    def _op_register(self, connection: _Connection, message):
        _, seq, info = message
        client_protocol = info.get("protocol")
        if client_protocol != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol mismatch: client speaks "
                f"{client_protocol!r}, service speaks "
                f"{PROTOCOL_VERSION}"
            )
        worker_id = info.get("worker_id")
        if worker_id is None:
            for candidate in self.engine.worker_ids:
                if self.roster[candidate].state != ACTIVE:
                    worker_id = candidate
                    break
            else:
                raise ServiceError(
                    f"all {len(self.roster)} worker slots are active"
                )
        else:
            worker_id = int(worker_id)
            if worker_id not in self.roster:
                raise ServiceError(
                    f"unknown worker id {worker_id}; the fleet has "
                    f"slots {self.engine.worker_ids}"
                )
            if self.roster[worker_id].state == ACTIVE:
                raise ServiceError(
                    f"worker {worker_id} is already registered"
                )
        entry = self.roster[worker_id]
        first = entry.registrations == 0
        entry.registrations += 1
        entry.state = DRAINING if self.draining else ACTIVE
        entry.last_seen = time.time()
        self._gone_reason.pop(worker_id, None)
        stale = self._conn_by_worker.get(worker_id)
        if stale is not None and stale is not connection:
            self._drop_connection(stale)
        connection.worker_id = worker_id
        self._conn_by_worker[worker_id] = connection
        self.executor.forget_worker(worker_id)
        # a no-op for fleet-provisioned slots (the agent already
        # exists, no RNG is drawn), so parity with a serial reference
        # run survives any number of reconnects; a genuinely new
        # worker gets its E-UCB agent minted here
        self.engine.strategy.register_worker(
            worker_id, device=self.engine.workers[worker_id].device
        )
        kind = "register" if first else "reconnect"
        self.counters[kind] += 1
        metrics = self.telemetry.metrics
        metrics.counter("registrations_total", kind=kind).inc()
        metrics.gauge("connected_workers").set(
            float(self._active_count())
        )
        self.telemetry.event("worker_registered", worker=worker_id,
                             kind=kind)
        spec = self._specs_by_id[worker_id]
        runtime_state = (
            entry.runtime_state if entry.runtime_state is not None
            else spec.runtime_state
        )
        shipped = dataclasses.replace(spec, runtime_state=runtime_state)
        return ("registered", seq, {
            "protocol": PROTOCOL_VERSION,
            "worker_id": worker_id,
            "spec": pickle.dumps(shipped,
                                 protocol=pickle.HIGHEST_PROTOCOL),
        })

    def _registered_entry(self, connection: _Connection,
                          worker_id: int) -> RosterEntry:
        if connection.worker_id != worker_id:
            raise ServiceError(
                f"connection is registered as worker "
                f"{connection.worker_id}, not {worker_id}"
            )
        return self.roster[worker_id]

    def _op_leave(self, connection: _Connection, message):
        _, seq, worker_id, blob = message
        entry = self._registered_entry(connection, int(worker_id))
        entry.state = GONE
        entry.last_seen = time.time()
        if blob is not None:
            entry.runtime_state = pickle.loads(blob)
        self._gone_reason[entry.worker_id] = "leave"
        self.counters["leave"] += 1
        if self._conn_by_worker.get(entry.worker_id) is connection:
            del self._conn_by_worker[entry.worker_id]
        connection.worker_id = None
        metrics = self.telemetry.metrics
        metrics.counter("worker_departures_total", kind="leave").inc()
        metrics.gauge("connected_workers").set(
            float(self._active_count())
        )
        self.telemetry.event("worker_left", worker=entry.worker_id,
                             captured=blob is not None)
        return ("bye", seq)

    def _op_pull_dispatch(self, connection: _Connection, message):
        _, seq, worker_id = message
        entry = self._registered_entry(connection, int(worker_id))
        entry.last_seen = time.time()
        if self.draining:
            return ("drain", seq)
        item = self.executor.next_for(entry.worker_id)
        if item is None:
            return ("idle", seq, self.idle_hint_s)
        if item[0] == "capture":
            return ("capture", seq, item[1])
        _, tseq, frame, template, drops = item
        return ("dispatch", seq, tseq, frame, template, drops)

    def _op_push_contribution(self, connection: _Connection, message):
        _, seq, worker_id, tseq, frame = message
        entry = self._registered_entry(connection, int(worker_id))
        entry.last_seen = time.time()
        self.executor.deliver(int(tseq), entry.worker_id, frame)
        return ("accepted", seq)

    def _op_push_state(self, connection: _Connection, message):
        _, seq, worker_id, cseq, blob = message
        entry = self._registered_entry(connection, int(worker_id))
        entry.last_seen = time.time()
        self.executor.deliver_state(int(cseq), entry.worker_id, blob)
        return ("accepted", seq)

    def _op_heartbeat(self, connection: _Connection, message):
        _, seq, worker_id, sent_at = message
        entry = self._registered_entry(connection, int(worker_id))
        entry.last_seen = time.time()
        lag = max(0.0, time.time() - float(sent_at))
        self.telemetry.metrics.gauge(
            "heartbeat_lag_s", worker=str(entry.worker_id)
        ).set(lag)
        return ("pong", seq)

    def _op_status(self, connection: _Connection, message):
        _, seq = message[0], message[1]
        return ("status_ok", seq, {
            "protocol": PROTOCOL_VERSION,
            "address": list(self.address),
            "draining": self.draining,
            "rounds_recorded": len(self.engine.history.rounds),
            "counters": dict(self.counters),
            "roster": {
                worker_id: entry.summary()
                for worker_id, entry in self.roster.items()
            },
        })

    _HANDLERS = {
        "register": _op_register,
        "leave": _op_leave,
        "pull_dispatch": _op_pull_dispatch,
        "push_contribution": _op_push_contribution,
        "push_state": _op_push_state,
        "heartbeat": _op_heartbeat,
        "status": _op_status,
    }

    # -- membership ----------------------------------------------------
    def _scripted_for(self, round_index: int) -> List[int]:
        script = self.roster_script
        applicable = [key for key in script if key <= round_index]
        if not applicable:
            raise ServiceError(
                f"roster script has no entry applicable to round "
                f"{round_index} (keys: {sorted(script)})"
            )
        return list(script[max(applicable)])

    def _membership(self, round_index: int) -> List[int]:
        """The engine's membership provider: who trains this round.

        Scripted mode waits until every scripted worker is registered,
        then returns exactly the scripted list; live mode waits for
        ``min_workers`` before round 0 and for at least one active
        worker before later rounds, then returns whoever is active.
        Consumes no engine RNG either way.
        """
        deadline = time.monotonic() + self.registration_timeout_s
        while True:
            if self.roster_script is not None:
                wanted = self._scripted_for(round_index)
                missing = [
                    worker_id for worker_id in wanted
                    if self.roster[worker_id].state != ACTIVE
                ]
                if not missing:
                    return wanted
            else:
                needed = self.min_workers if round_index == 0 else 1
                active = [
                    worker_id for worker_id in self.engine.worker_ids
                    if self.roster[worker_id].state == ACTIVE
                ]
                if len(active) >= needed:
                    return active
                missing = f"{needed - len(active)} more worker(s)"
            if self.engine.interrupt_requested:
                self._drain_abort(round_index)
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"round {round_index}: still waiting for {missing} "
                    f"after {self.registration_timeout_s:.0f}s"
                )
            self.pump(0.05)

    def _drain_abort(self, round_index: int) -> None:
        """A drain arrived while waiting for workers: checkpoint the
        completed prefix (the cadence may not have) and bail out."""
        if round_index > 0 and self.engine.checkpointer is not None:
            self.engine.checkpointer.save(
                self.engine, self._scheduler.name, round_index
            )
        raise ServiceDrained(
            f"drain requested while waiting for workers before round "
            f"{round_index}"
        )

    # -- checkpoint extras ---------------------------------------------
    def _service_checkpoint_state(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "counters": dict(self.counters),
            "roster": {
                worker_id: entry.summary()
                for worker_id, entry in self.roster.items()
            },
        }
