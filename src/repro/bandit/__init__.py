"""E-UCB: the Multi-Armed-Bandit pruning-ratio decision algorithm.

Section IV of the paper models the pruning-ratio decision as a
continuum-armed bandit: the PS is the player, pruning ratios in
``[0, 1)`` are the arms.  E-UCB (Algorithm 1) maintains, per worker, an
adaptively refined partition of the arm space (the leaves of an
incremental regression tree), plays discounted UCB over the partition
regions, and splits the chosen region at the played arm until region
diameters fall below the granularity ``theta``.
"""

from repro.bandit.partition import Partition, Region
from repro.bandit.eucb import EUCBAgent
from repro.bandit.reward import eucb_reward
from repro.bandit.regret import RegretTracker

__all__ = [
    "Partition",
    "Region",
    "EUCBAgent",
    "eucb_reward",
    "RegretTracker",
]
