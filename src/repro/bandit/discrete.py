"""Traditional discrete-arm UCB (the policy E-UCB extends).

Section IV-C: "Traditional UCB policy with the discrete arm setting
only has a finite set of choices.  However, the value range of pruning
ratio in FedMP is a continuous space so that the arm space is
infinite."  This module provides that traditional policy over a fixed
grid of ratios, both as a unit-testable bandit and as the decision
engine behind the ``fedmp_discrete`` ablation strategy.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np


class DiscreteUCBAgent:
    """UCB1 with discounted rewards over a fixed grid of arms."""

    def __init__(self, arms: Sequence[float], discount: float = 0.95,
                 exploration: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not arms:
            raise ValueError("need at least one arm")
        if not 0.0 < discount < 1.0:
            raise ValueError(f"discount must be in (0, 1), got {discount}")
        self.arms = [float(a) for a in arms]
        self.discount = discount
        self.exploration = exploration
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._history: List[tuple] = []   # (arm index, reward)
        self._pending: Optional[int] = None

    def select_arm(self) -> float:
        """Pick the arm with the highest discounted UCB."""
        if self._pending is not None:
            raise RuntimeError("select_arm called twice without observe")
        k = len(self._history) + 1
        counts = [0.0] * len(self.arms)
        sums = [0.0] * len(self.arms)
        rewards = self._normalised_rewards()
        for step, ((index, _), reward) in enumerate(
            zip(self._history, rewards), start=1
        ):
            weight = self.discount ** (k - step)
            counts[index] += weight
            sums[index] += weight * reward
        total = sum(counts)

        best_index, best_value = 0, -math.inf
        for index in range(len(self.arms)):
            if counts[index] <= 0.0:
                value = math.inf
            else:
                mean = sums[index] / counts[index]
                value = mean + self.exploration * math.sqrt(
                    2.0 * math.log(max(total, math.e)) / counts[index]
                )
            if value > best_value:
                best_index, best_value = index, value
        self._pending = best_index
        return self.arms[best_index]

    def observe(self, reward: float) -> None:
        if self._pending is None:
            raise RuntimeError("observe called without a pending play")
        self._history.append((self._pending, float(reward)))
        self._pending = None

    def abandon(self) -> None:
        self._pending = None

    def _normalised_rewards(self) -> List[float]:
        raw = [reward for _, reward in self._history]
        if not raw:
            return raw
        low, high = min(raw), max(raw)
        spread = high - low
        if spread <= 0.0:
            return [0.5] * len(raw)
        return [(value - low) / spread for value in raw]

    @property
    def rounds_played(self) -> int:
        return len(self._history)
