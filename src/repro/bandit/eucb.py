"""E-UCB agent (Algorithm 1): discounted UCB over an adaptive partition.

One agent exists per worker.  Each round it

1. computes, per partition region, the discounted empirical mean
   (Eq. 9) and the discounted padding (Eq. 10),
2. picks the region maximising the upper confidence bound (Eq. 11),
   preferring never-played regions,
3. samples the pruning ratio uniformly inside the region,
4. splits the region at the played arm while its diameter exceeds the
   granularity ``theta``, and
5. later receives the observed reward via :meth:`observe`.

The discount factor ``lambda`` (default 0.95, Section V-A) weights
recent rounds more, letting the agent track capability drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.bandit.partition import Partition, Region


@dataclass
class _PlayRecord:
    """One historical play: the arm value and its observed reward."""

    arm: float
    reward: float


class EUCBAgent:
    """Extended-UCB agent for one worker's pruning-ratio decisions."""

    def __init__(self, discount: float = 0.95, theta: float = 0.05,
                 max_ratio: float = 0.9, exploration: float = 1.0,
                 normalize_rewards: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < discount < 1.0:
            raise ValueError(f"discount must be in (0, 1), got {discount}")
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        if not 0.0 < max_ratio <= 1.0:
            raise ValueError(f"max_ratio must be in (0, 1], got {max_ratio}")
        self.discount = discount
        self.theta = theta
        self.exploration = exploration
        self.normalize_rewards = normalize_rewards
        self.partition = Partition(0.0, max_ratio)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.history: List[_PlayRecord] = []
        self._pending_arm: Optional[float] = None

    # ------------------------------------------------------------------
    # statistics (Eqs. 9-11)
    # ------------------------------------------------------------------
    def _discounted_stats(self) -> Tuple[dict, float]:
        """Per-region (discounted count, discounted reward sum) and the
        total discounted count ``n_k`` over all regions."""
        k = len(self.history) + 1
        counts = {region: 0.0 for region in self.partition}
        sums = {region: 0.0 for region in self.partition}
        rewards = self._effective_rewards()
        for step, (record, reward) in enumerate(
            zip(self.history, rewards), start=1
        ):
            weight = self.discount ** (k - step)
            region = self.partition.find(record.arm)
            counts[region] += weight
            sums[region] += weight * reward
        total = sum(counts.values())
        stats = {
            region: (counts[region], sums[region]) for region in self.partition
        }
        return stats, total

    def _effective_rewards(self) -> List[float]:
        """Raw rewards, optionally min-max normalised to ``[0, 1]``.

        Eq. 8 rewards have an arbitrary scale (loss decrease over a time
        gap); normalising keeps the exploitation term comparable to the
        ``sqrt(2 log n / N)`` padding so neither dominates.
        """
        raw = [record.reward for record in self.history]
        if not self.normalize_rewards or not raw:
            return raw
        low, high = min(raw), max(raw)
        spread = high - low
        if spread <= 0.0:
            return [0.5] * len(raw)
        return [(value - low) / spread for value in raw]

    def upper_confidence_bounds(self) -> dict:
        """Eq. 11 for every region; unexplored regions get ``inf``."""
        stats, total = self._discounted_stats()
        bounds = {}
        for region, (count, reward_sum) in stats.items():
            if count <= 0.0:
                bounds[region] = math.inf
            else:
                mean = reward_sum / count
                padding = self.exploration * math.sqrt(
                    2.0 * math.log(max(total, math.e)) / count
                )
                bounds[region] = mean + padding
        return bounds

    # ------------------------------------------------------------------
    # Algorithm 1 main loop
    # ------------------------------------------------------------------
    def select_ratio(self) -> float:
        """Choose the round's pruning ratio (Lines 3-8 of Algorithm 1)."""
        if self._pending_arm is not None:
            raise RuntimeError(
                "select_ratio called twice without observing a reward"
            )
        bounds = self.upper_confidence_bounds()
        best_region = max(self.partition, key=lambda r: bounds[r])
        arm = float(self.rng.uniform(best_region.low, best_region.high))
        if best_region.diameter > self.theta:
            self.partition.split(best_region, arm)
        self._pending_arm = arm
        return arm

    def observe(self, reward: float) -> None:
        """Record the reward of the most recent play (Lines 11-12)."""
        if self._pending_arm is None:
            raise RuntimeError("observe called without a pending play")
        self.history.append(_PlayRecord(self._pending_arm, float(reward)))
        self._pending_arm = None

    def snapshot(self) -> dict:
        """JSON-ready view of the agent's internal state (Eqs. 9-11).

        Reports, per partition region: the raw pull count, the
        discounted play count, the discounted empirical mean of the
        (effective) rewards and the confidence radius -- exactly the
        quantities :meth:`select_ratio` maximises over -- plus the
        current interval partition.  Purely observational: calling it
        never changes the agent.
        """
        stats, total = self._discounted_stats()
        pulls = {region: 0 for region in self.partition}
        for record in self.history:
            pulls[self.partition.find(record.arm)] += 1
        arms = []
        for region in self.partition:
            count, reward_sum = stats[region]
            if count > 0.0:
                mean = reward_sum / count
                radius = self.exploration * math.sqrt(
                    2.0 * math.log(max(total, math.e)) / count
                )
            else:
                mean = None
                radius = None
            arms.append({
                "low": region.low,
                "high": region.high,
                "pulls": pulls[region],
                "discounted_count": count,
                "mean": mean,
                "radius": radius,
            })
        return {
            "rounds_played": len(self.history),
            "num_regions": len(self.partition),
            "pending_arm": self._pending_arm,
            "partition": self.partition.snapshot(),
            "arms": arms,
        }

    def abandon(self) -> None:
        """Discard a pending play (used when a worker misses the round
        deadline and produces no reward signal)."""
        self._pending_arm = None

    @property
    def num_regions(self) -> int:
        """Current number of partition leaves (decision-tree size)."""
        return len(self.partition)

    @property
    def rounds_played(self) -> int:
        return len(self.history)
