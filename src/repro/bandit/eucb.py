"""E-UCB agent (Algorithm 1): discounted UCB over an adaptive partition.

One agent exists per worker.  Each round it

1. computes, per partition region, the discounted empirical mean
   (Eq. 9) and the discounted padding (Eq. 10),
2. picks the region maximising the upper confidence bound (Eq. 11),
   preferring never-played regions,
3. samples the pruning ratio uniformly inside the region,
4. once the play's reward is *observed*, splits the region at the
   played arm while its diameter exceeds the granularity ``theta``, and
5. receives the observed reward via :meth:`observe`.

The discount factor ``lambda`` (default 0.95, Section V-A) weights
recent rounds more, letting the agent track capability drift.

Two implementation notes:

- **Incremental statistics.**  The discounted per-region counts and
  reward sums are maintained incrementally (every ``observe`` multiplies
  each region's running statistics by the discount and adds the new
  play), so a selection costs O(regions) rather than the
  O(rounds x regions) full-history replay of the original
  implementation.  Reward min-max normalisation is folded in
  analytically: the normalised discounted mean is
  ``(raw_mean - low) / (high - low)`` over the running reward range, so
  only raw sums need to be stored.  Plays are re-assigned to child
  regions only when a region is actually split.
- **Deferred splits.**  The split of the played region happens in
  :meth:`observe`, not :meth:`select_ratio`.  Splitting at selection
  time leaked tree structure when a play was abandoned (deadline miss /
  churn): the pending arm was cleared but the split persisted, so
  phantom never-rewarded regions accumulated, each with an infinite
  UCB, permanently distorting exploration.  A play that produces no
  reward now leaves the partition untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bandit.partition import Partition, Region


@dataclass
class _PlayRecord:
    """One historical play: the arm value, its observed reward, and the
    1-based play index (used to recompute discount weights on splits).

    ``count`` > 1 records a *cohort* play: ``count`` members shared the
    arm and reported one mean reward, accounted as ``count`` consecutive
    virtual plays ending at ``step``.
    """

    arm: float
    reward: float
    step: int = 0
    count: int = 1


@dataclass
class _RegionStats:
    """Running discounted statistics of one partition region.

    ``disc_count`` / ``disc_raw_sum`` use the "latest play has weight 1"
    convention: after the ``n``-th observation they equal
    ``sum_i d**(n - step_i)`` and ``sum_i d**(n - step_i) * reward_i``
    over the region's plays.  Eq. 9/10 weights (``d**(k - step)`` with
    ``k = n + 1``) are recovered by multiplying by one extra discount.
    """

    plays: List[_PlayRecord] = field(default_factory=list)
    disc_count: float = 0.0
    disc_raw_sum: float = 0.0


class EUCBAgent:
    """Extended-UCB agent for one worker's pruning-ratio decisions."""

    def __init__(self, discount: float = 0.95, theta: float = 0.05,
                 max_ratio: float = 0.9, exploration: float = 1.0,
                 normalize_rewards: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < discount < 1.0:
            raise ValueError(f"discount must be in (0, 1), got {discount}")
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        if not 0.0 < max_ratio <= 1.0:
            raise ValueError(f"max_ratio must be in (0, 1], got {max_ratio}")
        self.discount = discount
        self.theta = theta
        self.exploration = exploration
        self.normalize_rewards = normalize_rewards
        self.partition = Partition(0.0, max_ratio)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.history: List[_PlayRecord] = []
        #: total number of *virtual* plays (sum of record counts); equals
        #: ``len(history)`` while every play has count 1
        self._total_steps: int = 0
        self._stats: Dict[Region, _RegionStats] = {}
        self._reward_low: Optional[float] = None
        self._reward_high: Optional[float] = None
        self._pending_arm: Optional[float] = None
        self._pending_region: Optional[Region] = None
        self._pending_split: bool = False

    # ------------------------------------------------------------------
    # statistics (Eqs. 9-11)
    # ------------------------------------------------------------------
    def _geom(self, count: int) -> float:
        """Discount-weighted size of a ``count``-member virtual play
        group whose last member has weight 1:
        ``1 + d + ... + d**(count-1)``.  Exactly 1.0 for count 1, so
        single-member plays keep their historical bit patterns."""
        if count == 1:
            return 1.0
        d = self.discount
        return (1.0 - d ** count) / (1.0 - d)

    def _normalized_mean(self, stats: _RegionStats) -> float:
        """Discounted empirical mean of the region's (effective)
        rewards; the extra Eq. 9 discount cancels in the ratio."""
        mean_raw = stats.disc_raw_sum / stats.disc_count
        if not self.normalize_rewards:
            return mean_raw
        low, high = self._reward_low, self._reward_high
        spread = high - low
        if spread <= 0.0:
            return 0.5
        return (mean_raw - low) / spread

    def _discounted_stats(self) -> Tuple[dict, float]:
        """Per-region (discounted count, discounted normalised mean or
        ``None``) in Eq. 9 convention, plus the total discounted count
        ``n_k`` over all regions.  O(regions)."""
        d = self.discount
        counts = {}
        total = 0.0
        for region in self.partition:
            stats = self._stats.get(region)
            count = d * stats.disc_count if stats is not None else 0.0
            counts[region] = count
            total += count
        stats_out = {}
        for region in self.partition:
            count = counts[region]
            if count > 0.0:
                mean = self._normalized_mean(self._stats[region])
            else:
                mean = None
            stats_out[region] = (count, mean)
        return stats_out, total

    def upper_confidence_bounds(self) -> dict:
        """Eq. 11 for every region; unexplored regions get ``inf``."""
        stats, total = self._discounted_stats()
        bounds = {}
        for region, (count, mean) in stats.items():
            if count <= 0.0 or mean is None:
                bounds[region] = math.inf
            else:
                padding = self.exploration * math.sqrt(
                    2.0 * math.log(max(total, math.e)) / count
                )
                bounds[region] = mean + padding
        return bounds

    def _replay_stats(self) -> Tuple[dict, float]:
        """Reference O(rounds x regions) full-history replay of Eq. 9.

        Used only by tests to cross-check the incremental statistics;
        the hot path never calls this.
        """
        k = self._total_steps + 1
        counts = {region: 0.0 for region in self.partition}
        sums = {region: 0.0 for region in self.partition}
        raw = [record.reward for record in self.history]
        if self.normalize_rewards and raw:
            low, high = min(raw), max(raw)
            spread = high - low
            if spread <= 0.0:
                rewards = [0.5] * len(raw)
            else:
                rewards = [(value - low) / spread for value in raw]
        else:
            rewards = raw
        for record, reward in zip(self.history, rewards):
            weight = (self.discount ** (k - record.step)
                      * self._geom(record.count))
            region = self.partition.find(record.arm)
            counts[region] += weight
            sums[region] += weight * reward
        total = sum(counts.values())
        stats = {
            region: (counts[region], sums[region]) for region in self.partition
        }
        return stats, total

    # ------------------------------------------------------------------
    # Algorithm 1 main loop
    # ------------------------------------------------------------------
    def select_ratio(self) -> float:
        """Choose the round's pruning ratio (Lines 3-8 of Algorithm 1).

        The split of the chosen region is *deferred* to :meth:`observe`
        so that an abandoned play leaves the partition untouched.
        """
        if self._pending_arm is not None:
            raise RuntimeError(
                "select_ratio called twice without observing a reward"
            )
        bounds = self.upper_confidence_bounds()
        best_region = max(self.partition, key=lambda r: bounds[r])
        arm = float(self.rng.uniform(best_region.low, best_region.high))
        self._pending_arm = arm
        self._pending_region = best_region
        self._pending_split = best_region.diameter > self.theta
        return arm

    def observe(self, reward: float, count: int = 1) -> None:
        """Record the reward of the most recent play (Lines 11-12) and
        perform the play's deferred region split.

        ``count`` > 1 books the play with *member multiplicity*: a
        cohort of ``count`` workers shared the arm and reported one mean
        reward, accounted as ``count`` consecutive virtual plays (the
        older stats age by ``discount**count``, the play contributes a
        geometric weight ``1 + d + ... + d**(count-1)``).  ``count=1``
        is bit-for-bit the historical single-worker update.
        """
        if self._pending_arm is None:
            raise RuntimeError("observe called without a pending play")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        arm = self._pending_arm
        if self._pending_split and self._pending_region is not None:
            left, right = self.partition.split(self._pending_region, arm)
            self._split_stats(self._pending_region, left, right)
        self._pending_arm = None
        self._pending_region = None
        self._pending_split = False

        self._total_steps += count
        record = _PlayRecord(arm, float(reward), step=self._total_steps,
                             count=count)
        self.history.append(record)
        d = self.discount
        aging = d if count == 1 else d ** count
        for stats in self._stats.values():
            stats.disc_count *= aging
            stats.disc_raw_sum *= aging
        weight = self._geom(count)
        target = self.partition.find(arm)
        stats = self._stats.setdefault(target, _RegionStats())
        stats.plays.append(record)
        stats.disc_count += weight
        stats.disc_raw_sum += weight * record.reward
        if self._reward_low is None or record.reward < self._reward_low:
            self._reward_low = record.reward
        if self._reward_high is None or record.reward > self._reward_high:
            self._reward_high = record.reward

    def _split_stats(self, region: Region, left: Region,
                     right: Region) -> None:
        """Re-assign a split region's plays and statistics to its
        children.  O(plays in the region); splits happen at most once
        per region, so the amortised cost stays negligible."""
        old = self._stats.pop(region, None)
        if old is None:
            return
        n = self._total_steps
        for record in old.plays:
            child = left if left.contains(record.arm) else right
            stats = self._stats.setdefault(child, _RegionStats())
            stats.plays.append(record)
            weight = (self.discount ** (n - record.step)
                      * self._geom(record.count))
            stats.disc_count += weight
            stats.disc_raw_sum += weight * record.reward

    # ------------------------------------------------------------------
    # live arm-population changes (service mode / dynamic fleets)
    # ------------------------------------------------------------------
    def add_arm(self, at: float, min_width: float = 1e-4
                ) -> Tuple[Region, Region]:
        """Explicitly refine the partition at a new arm value.

        Used when the served arm population grows mid-run (a worker
        registers with a capability profile suggesting ratios around
        ``at``): the containing region is split at ``at`` and its plays
        and discounted statistics are re-assigned to the children, so
        the incremental stats stay equal to the full-history replay.
        Restructuring with a play pending is refused -- the pending
        region could be invalidated under the strategy's feet; callers
        observe or :meth:`abandon` first.
        """
        if self._pending_arm is not None:
            raise RuntimeError(
                "cannot restructure the partition with a play pending"
            )
        region = self.partition.find(at)
        left, right = self.partition.split(region, at, min_width=min_width)
        self._split_stats(region, left, right)
        return left, right

    def retire_arm(self, arm: float) -> Region:
        """Coarsen the partition around a retired arm value.

        The region containing ``arm`` is merged into its right
        neighbour (left for the last region); the two regions' play
        histories are combined in step order and the merged region's
        discounted statistics are rebuilt from them with the canonical
        ``d**(n - step) * geom(count)`` weights, keeping incremental
        == replay.  The sole remaining region cannot be retired, and
        restructuring with a play pending is refused.
        """
        if self._pending_arm is not None:
            raise RuntimeError(
                "cannot restructure the partition with a play pending"
            )
        regions = list(self.partition)
        if len(regions) == 1:
            raise ValueError("cannot retire the last remaining region")
        region = self.partition.find(arm)
        index = regions.index(region)
        if index + 1 < len(regions):
            left, right = region, regions[index + 1]
        else:
            left, right = regions[index - 1], region
        merged = self.partition.merge(left, right)
        old_left = self._stats.pop(left, None)
        old_right = self._stats.pop(right, None)
        plays = []
        if old_left is not None:
            plays.extend(old_left.plays)
        if old_right is not None:
            plays.extend(old_right.plays)
        if plays:
            plays.sort(key=lambda record: record.step)
            stats = _RegionStats()
            n = self._total_steps
            for record in plays:
                weight = (self.discount ** (n - record.step)
                          * self._geom(record.count))
                stats.plays.append(record)
                stats.disc_count += weight
                stats.disc_raw_sum += weight * record.reward
            self._stats[merged] = stats
        return merged

    def snapshot(self) -> dict:
        """JSON-ready view of the agent's internal state (Eqs. 9-11).

        Reports, per partition region: the raw pull count, the
        discounted play count, the discounted empirical mean of the
        (effective) rewards and the confidence radius -- exactly the
        quantities :meth:`select_ratio` maximises over -- plus the
        current interval partition.  Purely observational: calling it
        never changes the agent.
        """
        stats, total = self._discounted_stats()
        arms = []
        for region in self.partition:
            count, mean = stats[region]
            region_stats = self._stats.get(region)
            pulls = len(region_stats.plays) if region_stats is not None else 0
            if count > 0.0:
                radius = self.exploration * math.sqrt(
                    2.0 * math.log(max(total, math.e)) / count
                )
            else:
                radius = None
            arms.append({
                "low": region.low,
                "high": region.high,
                "pulls": pulls,
                "discounted_count": count,
                "mean": mean,
                "radius": radius,
            })
        return {
            "rounds_played": len(self.history),
            "total_steps": self._total_steps,
            "num_regions": len(self.partition),
            "pending_arm": self._pending_arm,
            "partition": self.partition.snapshot(),
            "arms": arms,
        }

    def consistency_report(self, tolerance: float = 1e-9) -> List[str]:
        """Cross-check the agent's internal state; return violations.

        Three families of checks, all observational:

        - **Partition integrity.**  The regions must tile
          ``[low, high]`` exactly -- contiguous, non-degenerate, no
          gaps or overlaps -- and every historical arm must fall inside
          the partition's range.
        - **Non-negative statistics.**  Discounted counts and the total
          discounted count can never go negative.
        - **Incremental == replay.**  The O(regions) incremental
          discounted statistics must agree (within ``tolerance``,
          relative) with the O(rounds x regions) full-history replay
          oracle :meth:`_replay_stats`.

        An empty list means the agent is internally consistent.
        """
        problems: List[str] = []
        regions = list(self.partition)
        low = regions[0].low
        high = regions[-1].high
        cursor = low
        for region in regions:
            if not math.isclose(region.low, cursor, abs_tol=tolerance):
                problems.append(
                    f"partition gap/overlap: region starts at {region.low!r}"
                    f" but previous one ended at {cursor!r}"
                )
            if region.high <= region.low:
                problems.append(
                    f"degenerate region [{region.low!r}, {region.high!r}]"
                )
            cursor = region.high
        if not math.isclose(cursor, high, abs_tol=tolerance):
            problems.append(
                f"partition does not reach its upper bound: last region "
                f"ends at {cursor!r}, expected {high!r}"
            )
        for record in self.history:
            if not low <= record.arm <= high:
                problems.append(
                    f"historical arm {record.arm!r} outside "
                    f"[{low!r}, {high!r}]"
                )

        inc_stats, inc_total = self._discounted_stats()
        ref_stats, ref_total = self._replay_stats()
        if inc_total < 0.0:
            problems.append(f"negative total discounted count {inc_total!r}")
        scale = max(abs(ref_total), 1.0)
        if abs(inc_total - ref_total) > tolerance * scale:
            problems.append(
                f"total discounted count drifted: incremental {inc_total!r}"
                f" vs replay {ref_total!r}"
            )
        for region in regions:
            count, mean = inc_stats[region]
            ref_count, ref_sum = ref_stats[region]
            if count < 0.0:
                problems.append(
                    f"negative discounted count {count!r} in region "
                    f"[{region.low!r}, {region.high!r}]"
                )
            if abs(count - ref_count) > tolerance * max(abs(ref_count), 1.0):
                problems.append(
                    f"discounted count drifted in region "
                    f"[{region.low!r}, {region.high!r}]: incremental "
                    f"{count!r} vs replay {ref_count!r}"
                )
                continue
            if mean is None:
                if ref_count > tolerance:
                    problems.append(
                        f"region [{region.low!r}, {region.high!r}] has "
                        f"replay count {ref_count!r} but no incremental mean"
                    )
                continue
            if ref_count <= 0.0:
                continue
            ref_mean = ref_sum / ref_count
            if abs(mean - ref_mean) > tolerance * max(abs(ref_mean), 1.0):
                problems.append(
                    f"discounted mean drifted in region "
                    f"[{region.low!r}, {region.high!r}]: incremental "
                    f"{mean!r} vs replay {ref_mean!r}"
                )
        return problems

    def state_signature(self) -> str:
        """Stable fingerprint of the agent's complete mutable state.

        Covers the partition tree, the full play history, every
        region's incremental statistics, the pending play, the reward
        normalisation window and the private RNG stream position --
        everything :meth:`select_ratio` and :meth:`observe` read.  Two
        agents with equal signatures make identical future decisions;
        the checkpoint round-trip tests compare a restored agent
        against the original with it.
        """
        import hashlib
        import json

        regions = list(self.partition)
        payload = {
            "discount": self.discount,
            "theta": self.theta,
            "exploration": self.exploration,
            "normalize_rewards": self.normalize_rewards,
            "partition": self.partition.snapshot(),
            "history": [
                (record.arm, record.reward, record.step, record.count)
                for record in self.history
            ],
            "stats": [
                (region.low, region.high,
                 stats.plays and [
                     (p.arm, p.reward, p.step, p.count)
                     for p in stats.plays
                 ] or [],
                 stats.disc_count, stats.disc_raw_sum)
                for region in regions
                for stats in [self._stats.get(region, _RegionStats())]
            ],
            "total_steps": self._total_steps,
            "reward_window": [self._reward_low, self._reward_high],
            "pending": [self._pending_arm, self._pending_split,
                        None if self._pending_region is None
                        else (self._pending_region.low,
                              self._pending_region.high)],
            "rng": repr(self.rng.bit_generator.state),
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()

    def abandon(self) -> None:
        """Discard a pending play (used when a worker misses the round
        deadline and produces no reward signal).  Because the region
        split is deferred to :meth:`observe`, abandoning leaves the
        partition exactly as it was before :meth:`select_ratio`."""
        self._pending_arm = None
        self._pending_region = None
        self._pending_split = False

    @property
    def num_regions(self) -> int:
        """Current number of partition leaves (decision-tree size)."""
        return len(self.partition)

    @property
    def rounds_played(self) -> int:
        return len(self.history)
