"""The E-UCB reward (Eq. 8).

``R(alpha_n^k) = DeltaLoss / |T_n^k - mean_n' T_n'^k|``

"The numerator indicates the contribution of the workers to model
convergence. The denominator represents the gap between the completion
time of worker n and the average completion time. A smaller gap means
that the selected pruning ratio fits the worker's capabilities better,
leading to a higher reward."
"""

from __future__ import annotations

from typing import Sequence


def eucb_reward(delta_loss: float, completion_time: float,
                mean_completion_time: float,
                time_eps: float = 1e-3) -> float:
    """Reward for one worker's round (Eq. 8).

    Parameters
    ----------
    delta_loss:
        Decrease of the global loss this round (may be negative when
        the loss went up).
    completion_time / mean_completion_time:
        This worker's round completion time and the mean over workers.
    time_eps:
        Floor on the denominator so a perfectly average worker gets a
        large—but finite—reward.
    """
    gap = abs(completion_time - mean_completion_time)
    return delta_loss / max(gap, time_eps)


def round_rewards(delta_loss: float,
                  completion_times: Sequence[float]) -> list:
    """Eq. 8 evaluated for every worker of a round at once."""
    if not completion_times:
        return []
    mean_time = sum(completion_times) / len(completion_times)
    return [
        eucb_reward(delta_loss, t, mean_time) for t in completion_times
    ]
