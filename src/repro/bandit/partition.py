"""Arm-space partitions: the leaves of E-UCB's incremental tree.

The agent "maintains a sequence of finite partitions of the arm space"
with union ``[0, 1)``; each region is a half-open interval and can be
split at a played arm, growing the tree adaptively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Region:
    """Half-open interval ``[low, high)`` of pruning ratios."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low < self.high <= 1.0:
            raise ValueError(f"invalid region [{self.low}, {self.high})")

    @property
    def diameter(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.low + self.high)

    def contains(self, arm: float) -> bool:
        return self.low <= arm < self.high


class Partition:
    """A finite partition of ``[low, high) ⊆ [0, 1)`` into regions.

    The initial partition is the single region covering the whole arm
    space (``P_0 = {[0, 1)}`` by default; FedMP restricts the upper end
    below 1 so at least a sliver of every layer survives).
    """

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        self._regions: List[Region] = [Region(low, high)]

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    @property
    def regions(self) -> Tuple[Region, ...]:
        return tuple(self._regions)

    def snapshot(self) -> dict:
        """JSON-ready view of the partition: its bounds and cut edges.

        ``edges`` lists every region boundary left to right, so
        consecutive pairs are the current regions.
        """
        return {
            "low": self._regions[0].low,
            "high": self._regions[-1].high,
            "edges": [region.low for region in self._regions]
            + [self._regions[-1].high],
        }

    def find(self, arm: float) -> Region:
        """Region containing ``arm``; raises if outside the partition."""
        for region in self._regions:
            if region.contains(arm):
                return region
        raise ValueError(f"arm {arm} outside partition bounds")

    def merge(self, left: Region, right: Region) -> Region:
        """Merge two *adjacent* leaves back into one region.

        The inverse of :meth:`split`: the partition stays a contiguous
        tiling.  Returns the merged region; the partition is updated in
        place.
        """
        if left not in self._regions:
            raise ValueError(f"region {left} is not a leaf of this partition")
        index = self._regions.index(left)
        if (index + 1 >= len(self._regions)
                or self._regions[index + 1] != right):
            raise ValueError(
                f"regions {left} and {right} are not adjacent leaves"
            )
        merged = Region(left.low, right.high)
        self._regions[index:index + 2] = [merged]
        return merged

    def split(self, region: Region, at: float,
              min_width: float = 1e-4) -> Tuple[Region, Region]:
        """Split ``region`` at ``at``, falling back to the midpoint when
        the cut would create a degenerate sliver.

        Returns the two new regions; the partition is updated in place.
        """
        if region not in self._regions:
            raise ValueError(f"region {region} is not a leaf of this partition")
        cut = at
        if cut - region.low < min_width or region.high - cut < min_width:
            cut = region.midpoint
        left = Region(region.low, cut)
        right = Region(cut, region.high)
        index = self._regions.index(region)
        self._regions[index:index + 1] = [left, right]
        return left, right
