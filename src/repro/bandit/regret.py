"""Regret bookkeeping (Eq. 12).

The paper measures an arm-pulling policy by its expected regret, the
gap between the reward of the optimal arm and the rewards actually
obtained, and requires the time-averaged regret to vanish.  This helper
tracks regret against a caller-supplied reward function so tests and
benchmarks can validate E-UCB's no-regret behaviour on synthetic
environments.
"""

from __future__ import annotations

from typing import Callable, List


class RegretTracker:
    """Accumulate per-round regret against a known reward function."""

    def __init__(self, reward_fn: Callable[[float], float],
                 optimal_arm: float) -> None:
        self.reward_fn = reward_fn
        self.optimal_arm = optimal_arm
        self.optimal_reward = reward_fn(optimal_arm)
        self.per_round: List[float] = []

    def record(self, arm: float) -> float:
        """Record a play; returns the realised reward of ``arm``."""
        reward = self.reward_fn(arm)
        self.per_round.append(self.optimal_reward - reward)
        return reward

    @property
    def cumulative(self) -> float:
        return float(sum(self.per_round))

    @property
    def average(self) -> float:
        """Time-averaged regret; Eq. 12 requires this to approach 0."""
        if not self.per_round:
            return 0.0
        return self.cumulative / len(self.per_round)

    def trailing_average(self, window: int) -> float:
        """Average regret over the last ``window`` rounds."""
        if not self.per_round:
            return 0.0
        tail = self.per_round[-window:]
        return float(sum(tail) / len(tail))
