"""Kill-and-resume differential: crash a run, resume it, prove equality.

The checkpoint subsystem (:mod:`repro.fl.checkpoint`) promises that a
resumed run is *byte-identical* to the uninterrupted run -- same
normalised history JSON, same final weights at 0 ULP -- under every
scheduler and executor.  This module proves it the hard way:

1. run the reference uninterrupted in-process and keep its normalised
   history bytes and final global state;
2. launch the same run in a subprocess with ``checkpoint_every=1`` and
   a hook that ``SIGKILL``\\ s the process in ``before_aggregate`` of
   round ``kill_at`` -- a real, unflushed, mid-round death, after the
   round's dispatch pricing has already consumed RNG but before any
   history write;
3. launch a *fresh* subprocess that resumes from the latest surviving
   checkpoint and runs to completion;
4. compare the resumed run's normalised history bytes byte-for-byte
   and its final weights at 0 ULP against the reference.

The subcommands (``python -m repro.verify.resume crash|resume|
reference|battery``) are what the differential drives; ``battery`` is
also the CI ``resume-smoke`` entrypoint.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    resolve_checkpoint,
)
from repro.fl.hooks import CommVolumeHook, RoundHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.io import atomic_write_bytes, load_state_dict, save_state_dict
from repro.verify.differential import (
    StateCaptureHook,
    normalised_history_bytes,
    ulp_distance,
)

__all__ = [
    "SCHEDULERS",
    "ResumeCheck",
    "differential_kill_and_resume",
    "main",
]

SCHEDULERS = ("sync", "async", "semi_sync")

#: a semi-sync deadline short enough to exercise carry-over on the
#: bench device fleets, long enough that every round makes progress
_SEMI_SYNC_DEADLINE_S = 20.0


class _SigkillHook(RoundHook):
    """Kill the process dead in ``before_aggregate`` of ``kill_at``.

    ``SIGKILL`` cannot be caught: no ``finally`` blocks, no atexit, no
    history flush -- exactly the crash the checkpoint discipline must
    survive.
    """

    def __init__(self, kill_at: int) -> None:
        if kill_at < 1:
            raise ValueError(
                f"kill_at must be >= 1 (a checkpoint must exist to "
                f"resume from), got {kill_at}"
            )
        self.kill_at = kill_at

    def before_aggregate(self, round_index, contributions):
        if round_index >= self.kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        return None


def _scheduler_overrides(scheduler: str, fleet: int) -> Dict[str, object]:
    if scheduler == "sync":
        return {}
    if scheduler == "async":
        return {"async_m": max(1, fleet // 2)}
    if scheduler == "semi_sync":
        return {"semi_sync_deadline_s": _SEMI_SYNC_DEADLINE_S}
    raise ValueError(f"unknown scheduler {scheduler!r}")


def _build_setup(meta: Dict[str, object]):
    """(bench, task, devices) from a checkpoint/CLI meta dict."""
    bench = make_bench_task(str(meta["preset"]))
    task = bench.make_task(bool(meta.get("non_iid", False)))
    devices = make_devices(str(meta["scenario"]),
                           count=int(meta["workers"]))
    return bench, task, devices


def _make_config(bench, meta: Dict[str, object], scheduler: str,
                 rounds: int, seed: int, executor: str,
                 num_procs: Optional[int],
                 checkpoint_dir: Optional[str] = None):
    return bench.make_config(
        "fedmp", max_rounds=rounds, seed=seed, executor=executor,
        num_procs=num_procs, checkpoint_dir=checkpoint_dir,
        checkpoint_every=1,
        **_scheduler_overrides(scheduler, int(meta["workers"])),
    )


def _subprocess_env() -> Dict[str, str]:
    """Inherited environment with this repro package importable."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


@dataclass
class ResumeCheck:
    """Outcome of one scheduler's kill-and-resume differential."""

    scheduler: str
    crashed: bool
    resumed: bool
    history_identical: bool
    max_ulps: int
    detail: str

    @property
    def passed(self) -> bool:
        return (self.crashed and self.resumed and self.history_identical
                and self.max_ulps == 0)


def _final_state_ulps(reference: Dict[str, np.ndarray],
                      candidate: Dict[str, np.ndarray]) -> int:
    if reference.keys() != candidate.keys():
        raise ValueError(
            f"final states disagree on keys: "
            f"{sorted(reference.keys() ^ candidate.keys())}"
        )
    worst = 0
    for key in sorted(reference):
        ulps = ulp_distance(reference[key], candidate[key])
        if ulps.size:
            worst = max(worst, int(ulps.max()))
    return worst


def differential_kill_and_resume(
        preset: str = "cnn", scenario: str = "medium", workers: int = 6,
        rounds: int = 5, kill_at: Optional[int] = None, seed: int = 17,
        executor: str = "serial", num_procs: Optional[int] = None,
        non_iid: bool = False,
        schedulers: Sequence[str] = SCHEDULERS,
        artifact_dir: Optional[str] = None,
        timeout_s: float = 540.0) -> List[ResumeCheck]:
    """Run the kill-and-resume differential for each scheduler.

    Per scheduler: an in-process uninterrupted reference, a
    subprocess run SIGKILLed mid-round ``kill_at``, and a fresh
    subprocess resumed from the last surviving checkpoint; the resumed
    run must match the reference byte-for-byte (normalised history)
    and at 0 ULP (final weights).  On failure the scheduler's
    checkpoint directory is preserved under ``artifact_dir`` when one
    is given.
    """
    if kill_at is None:
        kill_at = max(1, rounds // 2)
    meta = {"preset": preset, "scenario": scenario, "workers": workers,
            "non_iid": non_iid}
    checks: List[ResumeCheck] = []
    for scheduler in schedulers:
        bench, task, devices = _build_setup(meta)
        capture = StateCaptureHook()
        reference = run_federated_training(
            task, devices,
            _make_config(bench, meta, scheduler, rounds, seed,
                         executor, num_procs),
            hooks=[TimingHook(), CommVolumeHook(), capture],
        )
        ref_bytes = normalised_history_bytes(reference)
        ref_final = capture.states[-1]

        with tempfile.TemporaryDirectory() as tmp:
            ckpt_dir = Path(tmp) / "ckpt"
            base_args = [
                sys.executable, "-m", "repro.verify.resume",
            ]
            run_args = [
                "--preset", preset, "--scenario", scenario,
                "--workers", str(workers), "--scheduler", scheduler,
                "--rounds", str(rounds), "--seed", str(seed),
                "--executor", executor,
            ]
            if num_procs is not None:
                run_args += ["--num-procs", str(num_procs)]
            if non_iid:
                run_args += ["--non-iid"]
            env = _subprocess_env()

            # child output goes to a file, not a pipe: the run's own
            # worker-pool processes inherit the child's stdio, and an
            # inherited pipe would keep subprocess.run blocked after
            # the SIGKILL until the orphaned pool noticed the EOF
            crash_log = Path(tmp) / "crash.log"
            with open(crash_log, "wb") as log:
                crash = subprocess.run(
                    base_args + ["crash", "--kill-at", str(kill_at),
                                 "--checkpoint-dir", str(ckpt_dir)]
                    + run_args,
                    env=env, stdout=log, stderr=subprocess.STDOUT,
                    timeout=timeout_s,
                )
            crashed = crash.returncode == -signal.SIGKILL
            if not crashed:
                tail = crash_log.read_text(errors="replace")[-500:]
                checks.append(ResumeCheck(
                    scheduler=scheduler, crashed=False, resumed=False,
                    history_identical=False, max_ulps=-1,
                    detail=(f"{scheduler}: crash child exited "
                            f"{crash.returncode} instead of dying on "
                            f"SIGKILL; output: {tail}"),
                ))
                _preserve(ckpt_dir, artifact_dir, scheduler)
                continue

            source = latest_checkpoint(ckpt_dir)
            history_out = Path(tmp) / "resumed-history.bin"
            weights_out = Path(tmp) / "resumed-weights.npz"
            resume_log = Path(tmp) / "resume.log"
            with open(resume_log, "wb") as log:
                resume = subprocess.run(
                    base_args + ["resume", "--checkpoint", str(ckpt_dir),
                                 "--history-out", str(history_out),
                                 "--weights-out", str(weights_out)],
                    env=env, stdout=log, stderr=subprocess.STDOUT,
                    timeout=timeout_s,
                )
            if resume.returncode != 0:
                tail = resume_log.read_text(errors="replace")[-500:]
                checks.append(ResumeCheck(
                    scheduler=scheduler, crashed=True, resumed=False,
                    history_identical=False, max_ulps=-1,
                    detail=(f"{scheduler}: resume child exited "
                            f"{resume.returncode}; output: {tail}"),
                ))
                _preserve(ckpt_dir, artifact_dir, scheduler)
                continue

            history_identical = history_out.read_bytes() == ref_bytes
            max_ulps = _final_state_ulps(
                ref_final, load_state_dict(weights_out)
            )
            check = ResumeCheck(
                scheduler=scheduler, crashed=True, resumed=True,
                history_identical=history_identical, max_ulps=max_ulps,
                detail=(f"{scheduler}: killed at round {kill_at}, "
                        f"resumed from {source.name}, history "
                        f"{'identical' if history_identical else 'DIFFERS'}"
                        f", final weights at {max_ulps} ULPs"),
            )
            checks.append(check)
            if not check.passed:
                _preserve(ckpt_dir, artifact_dir, scheduler)
    return checks


def _preserve(ckpt_dir: Path, artifact_dir: Optional[str],
              scheduler: str) -> None:
    if artifact_dir is None or not ckpt_dir.is_dir():
        return
    target = Path(artifact_dir) / scheduler
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copytree(ckpt_dir, target, dirs_exist_ok=True)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_crash(args: argparse.Namespace) -> int:
    meta = {"preset": args.preset, "scenario": args.scenario,
            "workers": args.workers, "non_iid": args.non_iid}
    bench, task, devices = _build_setup(meta)
    config = _make_config(bench, meta, args.scheduler, args.rounds,
                          args.seed, args.executor, args.num_procs,
                          checkpoint_dir=args.checkpoint_dir)
    run_federated_training(
        task, devices, config,
        hooks=[TimingHook(), CommVolumeHook(),
               _SigkillHook(args.kill_at)],
        checkpoint_meta={**meta, "scheduler": args.scheduler},
    )
    # unreachable when the hook fires; reaching here means the kill
    # never happened and the battery must fail loudly
    print("crash run survived to completion", file=sys.stderr)
    return 3


def _cmd_resume(args: argparse.Namespace) -> int:
    checkpoint = load_checkpoint(resolve_checkpoint(args.checkpoint))
    meta = checkpoint.meta
    if not meta:
        print("checkpoint carries no rebuild meta", file=sys.stderr)
        return 4
    _, task, devices = _build_setup(meta)
    capture = StateCaptureHook()
    history = run_federated_training(
        task, devices, None,
        hooks=[TimingHook(), CommVolumeHook(), capture],
        resume_from=checkpoint,
    )
    atomic_write_bytes(args.history_out, normalised_history_bytes(history))
    save_state_dict(capture.states[-1], args.weights_out)
    return 0


def _cmd_reference(args: argparse.Namespace) -> int:
    meta = {"preset": args.preset, "scenario": args.scenario,
            "workers": args.workers, "non_iid": args.non_iid}
    bench, task, devices = _build_setup(meta)
    config = _make_config(bench, meta, args.scheduler, args.rounds,
                          args.seed, args.executor, args.num_procs)
    capture = StateCaptureHook()
    history = run_federated_training(
        task, devices, config,
        hooks=[TimingHook(), CommVolumeHook(), capture],
    )
    atomic_write_bytes(args.history_out, normalised_history_bytes(history))
    save_state_dict(capture.states[-1], args.weights_out)
    return 0


def _cmd_battery(args: argparse.Namespace) -> int:
    checks = differential_kill_and_resume(
        preset=args.preset, scenario=args.scenario, workers=args.workers,
        rounds=args.rounds, kill_at=args.kill_at, seed=args.seed,
        executor=args.executor, num_procs=args.num_procs,
        non_iid=args.non_iid, artifact_dir=args.artifact_dir,
    )
    failed = False
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        print(f"[{status}] {check.detail}")
        failed = failed or not check.passed
    return 1 if failed else 0


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="cnn")
    parser.add_argument("--scenario", default="medium")
    parser.add_argument("--workers", type=int, default=6)
    parser.add_argument("--scheduler", default="sync",
                        choices=list(SCHEDULERS))
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--executor", default="serial",
                        choices=["serial", "process"])
    parser.add_argument("--num-procs", type=int, default=None)
    parser.add_argument("--non-iid", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.resume",
        description="kill-and-resume differential harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    crash = sub.add_parser(
        "crash", help="run with checkpoints and SIGKILL mid-round",
    )
    _add_run_options(crash)
    crash.add_argument("--kill-at", type=int, required=True)
    crash.add_argument("--checkpoint-dir", required=True)
    crash.set_defaults(func=_cmd_crash)

    resume = sub.add_parser(
        "resume", help="resume from a checkpoint, dump history/weights",
    )
    resume.add_argument("--checkpoint", required=True,
                        help="checkpoint file or directory (latest wins)")
    resume.add_argument("--history-out", required=True)
    resume.add_argument("--weights-out", required=True)
    resume.set_defaults(func=_cmd_resume)

    reference = sub.add_parser(
        "reference", help="uninterrupted run, dump history/weights",
    )
    _add_run_options(reference)
    reference.add_argument("--history-out", required=True)
    reference.add_argument("--weights-out", required=True)
    reference.set_defaults(func=_cmd_reference)

    battery = sub.add_parser(
        "battery",
        help="full differential across all three schedulers",
    )
    _add_run_options(battery)
    battery.add_argument("--kill-at", type=int, default=None)
    battery.add_argument("--artifact-dir", default=None,
                         help="preserve failing checkpoint dirs here")
    battery.set_defaults(func=_cmd_battery)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
