"""The ``repro verify`` entry point: one self-contained conformance run.

Composes the three verification tools into a pass/fail report over a
bench preset:

1. **Invariant runs** -- a FedMP run and a FlexCom run (the latter
   exercises compressed uploads, hence the error-feedback accounting)
   with every :class:`~repro.verify.invariants.InvariantHook` check in
   ``record`` mode.
2. **Differential runs** -- fast path vs dense reference (must be
   bitwise identical), sync vs semi-sync with an unreachable
   deadline (equal up to floating-point summation reordering), and
   cohort-sharded rounds vs the per-member path (must be bitwise
   identical).
3. **Fault conformance** -- every fault kind in
   :data:`~repro.verify.faults.FAULT_KINDS` is injected into a short
   run and the engine's documented behaviour is asserted.
4. **Kill-and-resume** -- for each scheduler, a subprocess run is
   SIGKILLed mid-round, resumed from its latest checkpoint in a fresh
   process, and compared against the uninterrupted reference:
   normalised history byte-for-byte, final weights at 0 ULP (see
   :mod:`repro.verify.resume`).
5. **Service mode** -- a `FedMPService` subprocess on a loopback
   socket, one client subprocess per worker, scripted churn (one
   leave, one join), compared against a serial in-process reference
   over the same roster script; then the same choreography with the
   service SIGKILLed mid-round and resumed on the same port while the
   clients reconnect (see :mod:`repro.verify.service`).

``run_verification`` returns a :class:`VerificationReport`; the CLI
renders it and exits non-zero when any check failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.hooks import RoundHook
from repro.fl.runner import run_federated_training
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.verify.differential import (
    DifferentialReport,
    StateCaptureHook,
    differential_cohort_vs_member,
    differential_fast_vs_dense,
    differential_serial_vs_process,
    differential_sync_vs_semisync,
)
from repro.verify.errors import (
    DuplicateContributionError,
    EmptyRoundError,
    PoisonedUpdateError,
)
from repro.verify.faults import FaultInjectionHook, FaultSpec
from repro.verify.invariants import InvariantHook

__all__ = ["CheckResult", "VerificationReport", "run_verification"]

#: default ULP tolerance for the sync-vs-semisync comparison: 0, because
#: the aggregator's float64 accumulator makes the reordered float32 sums
#: exact (see DESIGN.md section 3.4); configurable for float64 models
DEFAULT_SEMISYNC_TOLERANCE_ULPS = 0


@dataclass
class CheckResult:
    """One verification stage's outcome."""

    name: str
    passed: bool
    detail: str


@dataclass
class VerificationReport:
    """Everything one ``repro verify`` invocation established."""

    preset: str
    rounds: int
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.passed]

    def describe(self) -> str:
        lines = [f"verification of preset {self.preset!r} "
                 f"({self.rounds} rounds):"]
        for result in self.results:
            mark = "PASS" if result.passed else "FAIL"
            lines.append(f"  [{mark}] {result.name}: {result.detail}")
        verdict = "OK" if self.passed else \
            f"{len(self.failures())} check(s) FAILED"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


class _AggregateCountHook(RoundHook):
    """Record how many contributions each round actually aggregated."""

    def __init__(self) -> None:
        self.counts: List[int] = []

    def on_aggregate(self, round_index, contributions) -> None:
        self.counts.append(len(contributions))


def _fresh_telemetry() -> Telemetry:
    return Telemetry(tracer=Tracer(), metrics=MetricsRegistry(enabled=True))


def _counter_total(metrics: MetricsRegistry, name: str) -> float:
    return sum(c.value for c in metrics.counters if c.name == name)


def _invariant_stage(name: str, strategy: str, bench, devices,
                     rounds: int, seed: int) -> CheckResult:
    config = bench.make_config(strategy, max_rounds=rounds, seed=seed,
                               target_metric=None, eval_every=rounds)
    hook = InvariantHook(on_violation="record")
    telemetry = _fresh_telemetry()
    run_federated_training(bench.make_task(0.0), devices, config,
                           hooks=[hook], telemetry=telemetry)
    checks = int(_counter_total(telemetry.metrics,
                                "invariant_checks_total"))
    if hook.violations:
        worst = "; ".join(str(v) for v in hook.violations[:3])
        return CheckResult(name, False,
                           f"{len(hook.violations)} violation(s) in "
                           f"{checks} checks: {worst}")
    if checks == 0:
        return CheckResult(name, False, "no invariant checks ran")
    return CheckResult(name, True,
                       f"{checks} checks over {rounds} rounds, "
                       f"0 violations")


def _differential_stage(name: str,
                        report_factory: Callable[[], DifferentialReport],
                        ) -> CheckResult:
    report = report_factory()
    return CheckResult(name, report.passed, report.describe())


def _fault_stage(name: str, bench, devices, config, specs,
                 expect_error: Optional[type] = None,
                 expect_counts: Optional[Callable[[List[int]], bool]] = None,
                 count_hint: str = "",
                 min_skipped_poison: int = 0) -> CheckResult:
    """Run one fault scenario and assert the documented outcome."""
    hook = FaultInjectionHook(specs)
    counter = _AggregateCountHook()
    capture = StateCaptureHook()
    telemetry = _fresh_telemetry()
    error: Optional[BaseException] = None
    try:
        run_federated_training(bench.make_task(0.0), devices, config,
                               hooks=[hook, counter, capture],
                               telemetry=telemetry)
    except Exception as exc:   # the documented outcome may BE an error
        error = exc

    injected = len(hook.injected)
    if expect_error is not None:
        if error is None:
            return CheckResult(
                name, False,
                f"expected {expect_error.__name__}, but the run completed",
            )
        if not isinstance(error, expect_error):
            return CheckResult(
                name, False,
                f"expected {expect_error.__name__}, "
                f"got {type(error).__name__}: {error}",
            )
        return CheckResult(
            name, True,
            f"{injected} fault(s) injected, round rejected with "
            f"{expect_error.__name__}",
        )

    if error is not None:
        return CheckResult(name, False,
                           f"run failed with {type(error).__name__}: {error}")
    if injected == 0:
        return CheckResult(name, False, "no fault was injected")
    if hook.pending_stale:
        return CheckResult(name, False,
                           f"{hook.pending_stale} stale contribution(s) "
                           f"never landed")
    if expect_counts is not None and not expect_counts(counter.counts):
        return CheckResult(
            name, False,
            f"per-round aggregated-contribution counts {counter.counts} "
            f"violate: {count_hint}",
        )
    skipped = int(_counter_total(telemetry.metrics,
                                 "poisoned_updates_total"))
    if skipped < min_skipped_poison:
        return CheckResult(
            name, False,
            f"expected >= {min_skipped_poison} skipped poisoned update(s), "
            f"telemetry counted {skipped}",
        )
    if capture.states:
        final = capture.states[-1]
        bad = [key for key, value in final.items()
               if not np.isfinite(value).all()]
        if bad:
            return CheckResult(
                name, False,
                f"non-finite values leaked into the final global state "
                f"({bad[:3]})",
            )
    detail = (f"{injected} fault(s) injected, run completed; "
              f"per-round contributions {counter.counts}")
    if min_skipped_poison:
        detail += f"; {skipped} poisoned update(s) skipped and counted"
    return CheckResult(name, True, detail)


def run_verification(preset: str = "cnn", rounds: int = 5,
                     tolerance_ulps: int = 0,
                     semisync_tolerance_ulps: int =
                     DEFAULT_SEMISYNC_TOLERANCE_ULPS,
                     scenario: str = "medium",
                     workers: Optional[int] = None,
                     seed: int = 17,
                     executor: str = "serial",
                     num_procs: Optional[int] = None,
                     service: bool = True) -> VerificationReport:
    """Run the full verification battery on one bench preset.

    ``executor="process"`` adds a fourth stage: a serial-vs-process
    differential run that must be 0-ULP identical in every per-round
    global state *and* byte-identical in the normalised history JSON.
    ``service=False`` skips the loopback-socket service stages (real
    subprocess fleets; the slowest part of the battery).
    """
    if rounds < 2:
        raise ValueError("verification needs at least 2 rounds")
    bench = make_bench_task(preset)
    devices = make_devices(scenario, count=workers)
    worker_ids = sorted(device.device_id for device in devices)
    report = VerificationReport(preset=preset, rounds=rounds)

    # --- stage 1: runtime invariants -------------------------------------
    report.results.append(_invariant_stage(
        "invariants/fedmp", "fedmp", bench, devices, rounds, seed,
    ))
    report.results.append(_invariant_stage(
        "invariants/flexcom", "flexcom", bench, devices, rounds, seed,
    ))

    # --- stage 2: differential runs --------------------------------------
    base = bench.make_config("fedmp", max_rounds=rounds, seed=seed,
                             target_metric=None, eval_every=rounds)
    report.results.append(_differential_stage(
        "differential/fast_vs_dense",
        lambda: differential_fast_vs_dense(
            lambda: bench.make_task(0.0), devices, base,
            tolerance_ulps=tolerance_ulps,
        ),
    ))
    report.results.append(_differential_stage(
        "differential/sync_vs_semisync",
        lambda: differential_sync_vs_semisync(
            lambda: bench.make_task(0.0), devices, base,
            tolerance_ulps=semisync_tolerance_ulps,
        ),
    ))
    report.results.append(_differential_stage(
        "differential/cohort_vs_member",
        lambda: differential_cohort_vs_member(
            lambda: bench.make_task(0.0), devices, base,
            tolerance_ulps=tolerance_ulps,
        ),
    ))

    # --- stage 3: fault conformance --------------------------------------
    fault_rounds = min(3, rounds)
    fault_config = bench.make_config(
        "fedmp", max_rounds=fault_rounds, seed=seed,
        target_metric=None, eval_every=fault_rounds,
    )
    first, fleet = worker_ids[0], len(worker_ids)

    report.results.append(_fault_stage(
        "fault/drop", bench, devices, fault_config,
        [FaultSpec("drop", 1, first)],
        expect_counts=lambda counts: counts[1] == fleet - 1
        and all(c == fleet for i, c in enumerate(counts) if i != 1),
        count_hint=f"round 1 aggregates {fleet - 1} of {fleet} workers",
    ))
    report.results.append(_fault_stage(
        "fault/drop_all", bench, devices, fault_config,
        [FaultSpec("drop", 1, wid) for wid in worker_ids],
        expect_error=EmptyRoundError,
    ))
    report.results.append(_fault_stage(
        "fault/duplicate", bench, devices, fault_config,
        [FaultSpec("duplicate", 1, first)],
        expect_error=DuplicateContributionError,
    ))
    report.results.append(_fault_stage(
        "fault/poison_raise", bench, devices, fault_config,
        [FaultSpec("poison", 1, first)],
        expect_error=PoisonedUpdateError,
    ))
    skip_config = bench.make_config(
        "fedmp", max_rounds=fault_rounds, seed=seed, target_metric=None,
        eval_every=fault_rounds, nan_policy="skip",
    )
    report.results.append(_fault_stage(
        "fault/poison_skip", bench, devices, skip_config,
        [FaultSpec("poison", 1, first)],
        min_skipped_poison=1,
    ))
    report.results.append(_fault_stage(
        "fault/stale", bench, devices, fault_config,
        [FaultSpec("stale", 0, first, delay_rounds=1)],
        expect_counts=lambda counts: counts[0] == fleet - 1
        and all(c == fleet for i, c in enumerate(counts) if i != 0),
        count_hint=f"round 0 aggregates {fleet - 1} workers, the stale "
                   f"contribution replaces the fresh one in round 1",
    ))
    weighted_config = bench.make_config(
        "fedmp", max_rounds=fault_rounds, seed=seed, target_metric=None,
        eval_every=fault_rounds, sync_scheme="r2sp_weighted",
    )
    report.results.append(_fault_stage(
        "fault/zero_samples", bench, devices, weighted_config,
        [FaultSpec("zero_samples", 1, first)],
        expect_counts=lambda counts: all(c == fleet for c in counts),
        count_hint="the zero-sample contribution stays in the round "
                   "(the weighted aggregator skips it internally)",
    ))

    # --- stage 4: checkpoint / kill-and-resume ----------------------------
    # SIGKILL a subprocess run mid-round, resume it in a fresh process,
    # and demand byte-identical normalised history plus 0-ULP final
    # weights against the uninterrupted reference -- per scheduler.
    # Imported lazily so `python -m repro.verify.resume` does not see
    # the module pre-imported through the package (runpy warning).
    from repro.verify.resume import differential_kill_and_resume

    resume_checks = differential_kill_and_resume(
        preset=preset, scenario=scenario, workers=len(worker_ids),
        rounds=rounds, kill_at=max(1, rounds // 2), seed=seed,
        executor=executor, num_procs=num_procs,
    )
    report.results.append(CheckResult(
        "checkpoint/kill_and_resume",
        all(check.passed for check in resume_checks),
        "; ".join(check.detail for check in resume_checks),
    ))

    # --- stage 5: parallel-runtime parity (opt-in) ------------------------
    if executor == "process":
        diff_report, histories_match = differential_serial_vs_process(
            lambda: bench.make_task(0.0), devices, base,
            tolerance_ulps=tolerance_ulps, num_procs=num_procs,
        )
        report.results.append(CheckResult(
            "differential/serial_vs_process", diff_report.passed,
            diff_report.describe(),
        ))
        report.results.append(CheckResult(
            "history/serial_vs_process_bytes", histories_match,
            "normalised history JSON is byte-identical under both "
            "executors" if histories_match else
            "normalised history JSON DIFFERS between executors",
        ))
    elif executor != "serial":
        raise ValueError(f"unknown executor {executor!r}")

    # --- stage 6: service mode (loopback sockets) -------------------------
    # a served run with scripted churn must equal the serial reference
    # byte-for-byte, even across a SIGKILL-and-resume of the service
    if service:
        from repro.verify.service import differential_serve_loopback

        fleet = min(4, len(worker_ids))
        report.results.append(_service_check(differential_serve_loopback(
            preset=preset, scenario=scenario, workers=fleet,
            rounds=rounds, seed=seed,
        )))
        report.results.append(_service_check(differential_serve_loopback(
            preset=preset, scenario=scenario, workers=fleet,
            rounds=rounds, seed=seed,
            kill_at=min(rounds - 1, rounds // 2 + 1),
        )))

    return report


def _service_check(check) -> CheckResult:
    return CheckResult(check.name, check.passed, check.detail)
