"""Runtime invariant checkers for the round engine.

:class:`InvariantHook` is a :class:`~repro.fl.hooks.RoundHook` that
re-derives, every round, the properties the engine's fast paths are
supposed to preserve, using the slow reference implementations as
oracles:

- **plan** -- every dispatched :class:`~repro.pruning.plan.PruningPlan`
  is well-formed: kept indices sorted, unique and in range, and each
  layer keeps either everything (protected / boundary layers) or
  exactly :func:`~repro.pruning.plan.keep_count` units.
- **shapes** -- dispatched and uploaded state dicts have exactly the
  shapes the plan's gather rules produce from the global template.
- **mass** -- R2SP conservation: the aggregated global state equals
  the weighted mean of the zero-expanded sub-models plus residual
  models, recomputed densely from the round's contributions.
- **error_feedback** -- the compression memory is conserved in global
  coordinates: at dispatched positions, consumed memory plus the
  training delta reappears as transmitted delta plus banked memory;
  at pruned positions the memory is bitwise untouched.
- **bandit** -- every E-UCB agent's incremental discounted statistics
  agree with the full-history replay oracle and its partition still
  tiles the ratio interval (:meth:`EUCBAgent.consistency_report`).

``on_violation="raise"`` (the default) raises
:class:`~repro.verify.errors.InvariantViolation` at the offending
round; ``"record"`` collects violations on :attr:`violations` and lets
the run continue.  Checks and violations are also counted into
telemetry (``invariant_checks_total`` / ``invariant_violations_total``
by check name).

The hook is an observer: it never mutates the engine, and its
reference recomputations run on copies.  Expect verification runs to
be a small constant factor slower than plain runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fl.aggregation import Contribution
from repro.fl.hooks import RoundHook
from repro.pruning.masks import keep_mask
from repro.pruning.plan import PruningPlan, keep_count
from repro.pruning.structured import gather_param
from repro.verify.differential import ulp_distance
from repro.verify.errors import InvariantViolation

__all__ = ["InvariantHook", "ALL_CHECKS"]

ALL_CHECKS = ("plan", "shapes", "mass", "error_feedback", "bandit")


class InvariantHook(RoundHook):
    """Check engine invariants every round; see the module docstring."""

    def __init__(self, on_violation: str = "raise",
                 checks=ALL_CHECKS,
                 mass_tolerance_ulps: int = 0,
                 ef_rtol: float = 1e-5,
                 bandit_tolerance: float = 1e-9) -> None:
        if on_violation not in ("raise", "record"):
            raise ValueError(
                f"on_violation must be 'raise' or 'record', "
                f"got {on_violation!r}"
            )
        unknown = set(checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(f"unknown checks {sorted(unknown)}; "
                             f"available: {ALL_CHECKS}")
        self.on_violation = on_violation
        self.checks = tuple(checks)
        self.mass_tolerance_ulps = mass_tolerance_ulps
        self.ef_rtol = ef_rtol
        self.bandit_tolerance = bandit_tolerance
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self._engine = None
        self._ef_before: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        self._engine = engine

    @property
    def _metrics(self):
        return self._engine.telemetry.metrics

    def _checked(self, check: str) -> None:
        self.checks_run += 1
        self._metrics.counter("invariant_checks_total", check=check).inc()

    def _violated(self, check: str, round_index: int, detail: str) -> None:
        violation = InvariantViolation(check, round_index, detail)
        self._metrics.counter("invariant_violations_total",
                              check=check).inc()
        if self.on_violation == "raise":
            raise violation
        self.violations.append(violation)

    # ------------------------------------------------------------------
    # plan well-formedness
    # ------------------------------------------------------------------
    def _check_index_vector(self, check: str, round_index: int,
                            layer_name: str, axis: str,
                            kept: np.ndarray, full: int) -> bool:
        ok = True
        if kept.ndim != 1 or kept.size == 0:
            self._violated(check, round_index,
                           f"layer {layer_name!r} {axis} index vector is "
                           f"empty or not 1-D (shape {kept.shape})")
            return False
        if kept.size > full:
            self._violated(check, round_index,
                           f"layer {layer_name!r} keeps {kept.size} {axis} "
                           f"units out of {full}")
            ok = False
        if kept.min() < 0 or kept.max() >= full:
            self._violated(check, round_index,
                           f"layer {layer_name!r} {axis} indices out of "
                           f"range [0, {full})")
            ok = False
        if not np.all(np.diff(kept) > 0):
            self._violated(check, round_index,
                           f"layer {layer_name!r} {axis} indices not "
                           f"strictly increasing (sorted & unique)")
            ok = False
        return ok

    def _check_plan(self, round_index: int, plan: PruningPlan) -> None:
        self._checked("plan")
        for layer_name, entry in plan.items():
            out_ok = self._check_index_vector(
                "plan", round_index, layer_name, "output",
                entry.kept_out, entry.out_full,
            )
            if entry.kept_in is not None:
                self._check_index_vector(
                    "plan", round_index, layer_name, "input",
                    entry.kept_in, entry.in_full,
                )
            if not out_ok:
                continue
            expected = keep_count(entry.out_full, plan.ratio)
            if entry.kept_out.size not in (entry.out_full, expected):
                self._violated(
                    "plan", round_index,
                    f"layer {layer_name!r} keeps {entry.kept_out.size} of "
                    f"{entry.out_full} outputs; expected {expected} "
                    f"(keep_count at ratio {plan.ratio}) or all "
                    f"{entry.out_full} (protected layer)",
                )

    # ------------------------------------------------------------------
    # shape conformance
    # ------------------------------------------------------------------
    def _check_shapes(self, round_index: int, plan: PruningPlan,
                      state: Dict[str, np.ndarray], what: str) -> None:
        self._checked("shapes")
        template = self._engine.server.template
        planned = plan.param_names()
        for key, value in state.items():
            full = template.get(key)
            if full is None:
                self._violated("shapes", round_index,
                               f"{what} carries unknown entry {key!r}")
                continue
            info = planned.get(key)
            if info is None:
                expected = full.shape
            else:
                layer_name, suffix = info
                # gather from a zero-stride broadcast view: yields the
                # exact per-rule sub shape without a full-size allocation
                expected = gather_param(
                    suffix, plan[layer_name],
                    np.broadcast_to(np.float32(0.0), full.shape),
                ).shape
            if value.shape != expected:
                self._violated(
                    "shapes", round_index,
                    f"{what} entry {key!r} has shape {value.shape}, "
                    f"plan implies {expected}",
                )

    # ------------------------------------------------------------------
    # hook callbacks
    # ------------------------------------------------------------------
    def on_dispatch(self, round_index: int, dispatch) -> None:
        if "plan" in self.checks:
            self._check_plan(round_index, dispatch.plan)
        if "shapes" in self.checks:
            self._check_shapes(round_index, dispatch.plan,
                               dispatch.dispatched_state, "dispatched state")
        if "error_feedback" in self.checks:
            feedback = self._engine.error_feedback.get(dispatch.worker_id)
            if feedback is not None:
                self._ef_before[dispatch.worker_id] = \
                    feedback.memory_snapshot()

    def on_contribution(self, round_index: int, dispatch,
                        contribution: Contribution,
                        train_loss: float) -> None:
        if "shapes" in self.checks:
            self._check_shapes(round_index, contribution.plan,
                               contribution.sub_state, "uploaded state")
        if "error_feedback" in self.checks:
            self._check_error_feedback(round_index, dispatch, contribution)

    def on_aggregate(self, round_index: int,
                     contributions: List[Contribution]) -> None:
        if "mass" in self.checks:
            self._check_mass(round_index, contributions)

    def on_round_end(self, record) -> None:
        if "bandit" in self.checks:
            self._check_bandit(record.round_index)

    # ------------------------------------------------------------------
    # error-feedback mass accounting
    # ------------------------------------------------------------------
    def _check_error_feedback(self, round_index: int, dispatch,
                              contribution: Contribution) -> None:
        worker_id = dispatch.worker_id
        before = self._ef_before.pop(worker_id, None)
        feedback = self._engine.error_feedback.get(worker_id)
        if before is None or feedback is None:
            return
        self._checked("error_feedback")
        after = feedback.memory_snapshot()
        keep = self._engine.strategy.upload_keep_fraction(worker_id)
        if keep >= 1.0:
            # no compression ran: the memory must be bitwise untouched
            if set(before) != set(after) or any(
                not np.array_equal(before[key], after[key]) for key in after
            ):
                self._violated(
                    "error_feedback", round_index,
                    f"worker {worker_id} memory changed without "
                    f"compression (keep fraction {keep})",
                )
            return

        plan = contribution.plan
        planned = plan.param_names()
        # cohort dispatches carry no per-member submodel; the engine
        # records the trained state on the dispatch before this hook runs
        trained = dispatch.trained_state
        if trained is None:
            trained = dispatch.submodel.state_dict()
        for key, uploaded in contribution.sub_state.items():
            new_mem = after.get(key)
            if new_mem is None:
                self._violated(
                    "error_feedback", round_index,
                    f"worker {worker_id} has no banked memory for {key!r} "
                    f"after a compressed upload",
                )
                continue
            old_mem = before.get(key)
            info = planned.get(key)
            if info is not None:
                layer_name, suffix = info
                entry = plan[layer_name]
                if old_mem is not None:
                    mask = keep_mask(suffix, entry, new_mem.shape)
                    touched = (new_mem != old_mem) & ~mask
                    if touched.any():
                        self._violated(
                            "error_feedback", round_index,
                            f"worker {worker_id} memory for {key!r} changed "
                            f"at {int(touched.sum())} pruned position(s)",
                        )
                old_gathered = (
                    gather_param(suffix, entry, old_mem)
                    if old_mem is not None else 0.0
                )
                new_gathered = gather_param(suffix, entry, new_mem)
            else:
                old_gathered = old_mem if old_mem is not None else 0.0
                new_gathered = new_mem
            # conservation at dispatched positions: what training produced
            # plus consumed memory == what was transmitted plus re-banked.
            # The deltas are recovered by weight-scale subtractions, so
            # the comparison is absolute at the layer's magnitude (a ULP
            # metric would blow up wherever the sums land near zero).
            lhs = trained[key] + old_gathered
            rhs = uploaded + new_gathered
            scale = max(float(np.abs(trained[key]).max(initial=0.0)),
                        float(np.abs(uploaded).max(initial=0.0)), 1e-12)
            worst = float(np.abs(lhs - rhs).max(initial=0.0)) / scale
            if worst > self.ef_rtol:
                self._violated(
                    "error_feedback", round_index,
                    f"worker {worker_id} dropped mass for {key!r}: "
                    f"trained + consumed memory differs from transmitted "
                    f"+ banked memory by {worst:.3e} of the layer scale "
                    f"(tolerance {self.ef_rtol:.1e})",
                )

    # ------------------------------------------------------------------
    # R2SP mass conservation
    # ------------------------------------------------------------------
    def _check_mass(self, round_index: int,
                    contributions: List[Contribution]) -> None:
        self._checked("mass")
        engine = self._engine
        reference = type(engine.aggregator)()
        reference.dense = True
        reference.nan_policy = engine.aggregator.nan_policy
        expected = reference.aggregate(contributions, engine.server.template)
        actual = engine.server.global_state
        for key in sorted(actual):
            target = expected[key].astype(actual[key].dtype)
            ulps = ulp_distance(actual[key], target)
            worst = int(ulps.max()) if ulps.size else 0
            if worst > self.mass_tolerance_ulps:
                index = int(np.argmax(ulps.reshape(-1)))
                self._violated(
                    "mass", round_index,
                    f"aggregated state differs from the dense "
                    f"zero-expansion + residual reference at "
                    f"{key}[{index}]: "
                    f"{actual[key].reshape(-1)[index]!r} vs "
                    f"{target.reshape(-1)[index]!r} ({worst} ULPs, "
                    f"tolerance {self.mass_tolerance_ulps})",
                )

    # ------------------------------------------------------------------
    # E-UCB partition / statistics integrity
    # ------------------------------------------------------------------
    def _check_bandit(self, round_index: int) -> None:
        agents = getattr(self._engine.strategy, "agents", None)
        if not agents:
            return
        self._checked("bandit")
        for worker_id, agent in sorted(agents.items()):
            report: Optional[List[str]] = agent.consistency_report(
                self.bandit_tolerance
            )
            for problem in report or ():
                self._violated(
                    "bandit", round_index,
                    f"worker {worker_id} agent: {problem}",
                )
