"""Loopback-socket differential: a served run must equal a serial run.

The parameter-server service (:mod:`repro.serve`) promises that
training over real TCP sockets -- live worker processes registering,
training, and churning -- is *byte-identical* to a serial in-process
run over the same membership: same normalised history JSON, same final
weights at 0 ULP.  This module proves it with real processes:

1. **reference** -- a serial in-process run whose membership provider
   replays the same ``{round: [worker ids]}`` roster script the
   service will be pinned to;
2. **serve loopback** -- a `FedMPService` subprocess on a loopback
   port plus one client subprocess per scripted worker (the scripted
   leaver uses ``leave_after``, the scripted joiner idles until its
   round arrives), compared byte-for-byte / at 0 ULP against the
   reference;
3. **kill and resume** -- the same choreography, but the service
   process is ``SIGKILL``\\ ed in ``before_aggregate`` of a round
   *after* the scripted join, then resumed on the *same port* from its
   latest checkpoint while the clients redial with ``--reconnect``.
   The finished run -- including the worker that joined after round
   0 -- must still match the uninterrupted reference;
4. **smoke** -- the CI choreography: a live (unscripted) roster, one
   mid-run leave plus one late join, then ``SIGTERM``; the service
   must finish the round in flight, write an interrupt checkpoint,
   drain every client cleanly, and exit 0.

The scripted stages run under the sync scheduler: ``leave_after``
counts completed dispatches, which align with round boundaries only
when every present worker trains exactly once per round.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.fl.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    resolve_checkpoint,
)
from repro.fl.engine import Engine
from repro.fl.hooks import CommVolumeHook, TimingHook
from repro.fl.schedulers import make_scheduler
from repro.io import atomic_write_bytes, load_state_dict, save_state_dict
from repro.verify.differential import (
    StateCaptureHook,
    normalised_history_bytes,
)
from repro.verify.resume import (
    _build_setup,
    _final_state_ulps,
    _SigkillHook,
    _subprocess_env,
)

__all__ = [
    "ServeCheck",
    "default_roster_script",
    "differential_serve_loopback",
    "main",
]


@dataclass
class ServeCheck:
    """Outcome of one loopback-socket differential."""

    name: str
    passed: bool
    detail: str


def default_roster_script(workers: int,
                          rounds: int) -> Dict[int, List[int]]:
    """The canonical churn script: one leave and one join mid-run.

    Workers ``0 .. N-2`` are present from round 0; at round
    ``rounds // 2`` worker ``N-2`` leaves and worker ``N-1`` joins.
    Degenerates gracefully for tiny fleets or single-round runs.
    """
    if workers < 2 or rounds < 2:
        return {0: list(range(workers))}
    mid = max(1, rounds // 2)
    before = list(range(workers - 1))
    after = list(range(workers - 2)) + [workers - 1]
    return {0: before, mid: after}


def _roster_provider(script: Dict[int, List[int]]):
    def provider(round_index: int) -> List[int]:
        best = max(k for k in script if k <= round_index)
        return list(script[best])

    return provider


def _make_service_config(bench, rounds: int, seed: int,
                         checkpoint_dir: Optional[str] = None):
    # executor stays "serial": the reference runs it directly, and the
    # service injects its socket executor through the engine seam
    # without changing the stored config (checkpoint compatibility)
    return bench.make_config(
        "fedmp", max_rounds=rounds, seed=seed, target_metric=None,
        checkpoint_dir=checkpoint_dir, checkpoint_every=1,
    )


def _scripted_reference(meta: Dict[str, object], rounds: int, seed: int,
                        script: Dict[int, List[int]]):
    """Serial in-process run over the scripted roster.

    Returns ``(normalised history bytes, final global state)``.
    """
    bench, task, devices = _build_setup(meta)
    config = _make_service_config(bench, rounds, seed)
    capture = StateCaptureHook()
    engine = Engine(task, devices, config,
                    hooks=[TimingHook(), CommVolumeHook(), capture])
    engine.membership_provider = _roster_provider(script)
    try:
        history = make_scheduler(config).run(engine)
    finally:
        engine.close()
    return normalised_history_bytes(history), capture.states[-1]


def _free_port() -> int:
    """A loopback port that was free a moment ago.

    The serve side binds with ``SO_REUSEADDR``, so the brief window
    between probing and binding (and the probe socket's TIME_WAIT) is
    harmless.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _wait_for_file(path: Path, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists() and path.stat().st_size > 0:
            return
        time.sleep(0.05)
    raise TimeoutError(f"{what} did not appear within {timeout_s:.0f}s")


def _spawn(cmd: Sequence[str], log: Path, env: Dict[str, str]):
    handle = open(log, "wb")
    try:
        return subprocess.Popen(list(cmd), env=env, stdout=handle,
                                stderr=subprocess.STDOUT), handle
    except BaseException:
        handle.close()
        raise


def _terminate_all(procs) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass


def _tail(log: Path, limit: int = 500) -> str:
    try:
        return log.read_text(errors="replace")[-limit:]
    except OSError:
        return "<no output>"


def differential_serve_loopback(
        preset: str = "cnn", scenario: str = "medium", workers: int = 4,
        rounds: int = 5, seed: int = 17,
        kill_at: Optional[int] = None,
        timeout_s: float = 540.0) -> ServeCheck:
    """One scripted serve-vs-serial differential (optionally killed).

    Without ``kill_at``: serve subprocess + client subprocesses over a
    loopback socket, scripted churn, compared against the serial
    reference.  With ``kill_at``: the service is SIGKILLed in
    ``before_aggregate`` of that round, resumed on the same port from
    its latest checkpoint, and the *resumed* outcome is compared --
    clients ride out the outage with ``--reconnect``.
    """
    script = default_roster_script(workers, rounds)
    join_round = max(script)
    leaver = workers - 2 if workers >= 2 and rounds >= 2 else None
    meta = {"preset": preset, "scenario": scenario, "workers": workers,
            "non_iid": False}
    name = ("service/kill_and_resume" if kill_at is not None
            else "service/loopback_socket")
    if kill_at is not None and not (0 < kill_at < rounds):
        raise ValueError(f"kill_at must be in (0, {rounds}), "
                         f"got {kill_at}")

    ref_bytes, ref_final = _scripted_reference(meta, rounds, seed, script)

    env = _subprocess_env()
    port = _free_port()
    base = [sys.executable, "-m", "repro.verify.service"]
    procs, handles = [], []
    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        ckpt_dir = tmpdir / "ckpt"
        history_out = tmpdir / "history.bin"
        weights_out = tmpdir / "weights.npz"
        port_file = tmpdir / "port"
        serve_args = base + [
            "serve", "--preset", preset, "--scenario", scenario,
            "--workers", str(workers), "--rounds", str(rounds),
            "--seed", str(seed), "--port", str(port),
            "--port-file", str(port_file),
            "--roster-script", json.dumps(
                {str(k): v for k, v in script.items()}),
            "--checkpoint-dir", str(ckpt_dir),
            "--history-out", str(history_out),
            "--weights-out", str(weights_out),
        ]
        if kill_at is not None:
            serve_args += ["--kill-at", str(kill_at)]
        serve_log = tmpdir / "serve.log"
        try:
            server, handle = _spawn(serve_args, serve_log, env)
            procs.append(server)
            handles.append(handle)
            _wait_for_file(port_file, 60.0, "the service's port file")

            all_workers = sorted({w for ws in script.values() for w in ws})
            for wid in all_workers:
                client_args = base + [
                    "client", "--port", str(port),
                    "--worker-id", str(wid),
                ]
                if wid == leaver:
                    # the scripted leaver departs after its dispatch in
                    # round join_round - 1 (sync: one dispatch per
                    # present round)
                    client_args += ["--leave-after", str(join_round)]
                if kill_at is not None:
                    client_args += ["--reconnect",
                                    "--reconnect-timeout", "120"]
                proc, handle = _spawn(client_args,
                                      tmpdir / f"client{wid}.log", env)
                procs.append(proc)
                handles.append(handle)

            server.wait(timeout=timeout_s)
            if kill_at is not None:
                if server.returncode != -signal.SIGKILL:
                    return ServeCheck(name, False, (
                        f"serve child exited {server.returncode} instead "
                        f"of dying on SIGKILL at round {kill_at}; "
                        f"output: {_tail(serve_log)}"))
                source = latest_checkpoint(ckpt_dir)
                resume_log = tmpdir / "resume.log"
                resumed, handle = _spawn(base + [
                    "serve", "--resume", str(ckpt_dir),
                    "--port", str(port),
                    "--port-file", str(tmpdir / "port2"),
                    "--roster-script", json.dumps(
                        {str(k): v for k, v in script.items()}),
                    "--history-out", str(history_out),
                    "--weights-out", str(weights_out),
                ], resume_log, env)
                procs.append(resumed)
                handles.append(handle)
                resumed.wait(timeout=timeout_s)
                if resumed.returncode != 0:
                    return ServeCheck(name, False, (
                        f"resumed serve child exited "
                        f"{resumed.returncode} (killed at {kill_at}, "
                        f"checkpoint {source.name}); output: "
                        f"{_tail(resume_log)}"))
            elif server.returncode != 0:
                return ServeCheck(name, False, (
                    f"serve child exited {server.returncode}; "
                    f"output: {_tail(serve_log)}"))

            for proc in procs[1:]:
                proc.wait(timeout=timeout_s)
            bad = [p for p in procs[1:] if p.returncode != 0]
            if bad:
                logs = "; ".join(
                    _tail(tmpdir / f"client{w}.log", 200)
                    for w in all_workers)
                return ServeCheck(name, False, (
                    f"{len(bad)} client(s) exited non-zero; "
                    f"logs: {logs}"))

            history_identical = history_out.read_bytes() == ref_bytes
            max_ulps = _final_state_ulps(
                ref_final, load_state_dict(weights_out))
            passed = history_identical and max_ulps == 0
            churn = (f"leave@{join_round - 1} join@{join_round}"
                     if leaver is not None else "no churn")
            killed = (f", SIGKILLed at round {kill_at} and resumed on "
                      f"port {port}" if kill_at is not None else "")
            return ServeCheck(name, passed, (
                f"{len(all_workers)} socket clients, {rounds} rounds, "
                f"{churn}{killed}: history "
                f"{'identical' if history_identical else 'DIFFERS'}, "
                f"final weights at {max_ulps} ULPs"))
        except (subprocess.TimeoutExpired, TimeoutError) as exc:
            return ServeCheck(name, False, (
                f"timed out: {exc}; serve output: {_tail(serve_log)}"))
        finally:
            _terminate_all(procs)
            for handle in handles:
                handle.close()


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _parse_script(text: Optional[str]) -> Optional[Dict[int, List[int]]]:
    if text is None:
        return None
    return {int(k): [int(w) for w in ws]
            for k, ws in json.loads(text).items()}


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import FedMPService
    from repro.telemetry import JsonlSink, Telemetry, Tracer

    telemetry = (Telemetry(tracer=Tracer(JsonlSink(args.trace_out)))
                 if args.trace_out is not None else None)
    capture = StateCaptureHook()
    hooks = [TimingHook(), CommVolumeHook(), capture]
    if args.kill_at is not None:
        hooks.append(_SigkillHook(args.kill_at))

    if args.resume is not None:
        checkpoint = load_checkpoint(resolve_checkpoint(args.resume))
        meta = checkpoint.meta
        if not meta:
            print("checkpoint carries no rebuild meta", file=sys.stderr)
            return 4
        _, task, devices = _build_setup(meta)
        config = None
        resume_from = checkpoint
        checkpoint_meta = meta
    else:
        meta = {"preset": args.preset, "scenario": args.scenario,
                "workers": args.workers, "non_iid": False}
        bench, task, devices = _build_setup(meta)
        config = _make_service_config(bench, args.rounds, args.seed,
                                      checkpoint_dir=args.checkpoint_dir)
        resume_from = None
        checkpoint_meta = meta

    service = FedMPService(
        task, devices, config, host="127.0.0.1", port=args.port,
        telemetry=telemetry, hooks=hooks,
        checkpoint_meta=checkpoint_meta, resume_from=resume_from,
        min_workers=args.min_workers,
        roster_script=_parse_script(args.roster_script),
    )
    if args.port_file is not None:
        Path(args.port_file).write_text(f"{service.address[1]}\n",
                                        encoding="utf-8")
    print(f"serving on {service.address[0]}:{service.address[1]}")
    sys.stdout.flush()
    history = service.run()
    if args.history_out is not None:
        atomic_write_bytes(args.history_out,
                           normalised_history_bytes(history))
    if args.weights_out is not None:
        if not capture.states:
            print("no rounds ran; nothing to dump", file=sys.stderr)
            return 5
        save_state_dict(capture.states[-1], args.weights_out)
    if telemetry is not None:
        telemetry.close()
    print(f"served {len(history.rounds)} round(s); "
          f"fleet counters {service.counters}")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve import ServiceClient

    client = ServiceClient(
        ("127.0.0.1", args.port), worker_id=args.worker_id,
        reconnect=args.reconnect,
        reconnect_timeout_s=args.reconnect_timeout,
        leave_after=args.leave_after,
    )
    completed = client.run()
    print(f"worker {client.worker_id}: {completed} dispatch(es)")
    return 0


def _cmd_battery(args: argparse.Namespace) -> int:
    rounds = args.rounds
    kill_at = (args.kill_at if args.kill_at is not None
               else min(rounds - 1, rounds // 2 + 1))
    checks = [
        differential_serve_loopback(
            preset=args.preset, scenario=args.scenario,
            workers=args.workers, rounds=rounds, seed=args.seed,
        ),
        differential_serve_loopback(
            preset=args.preset, scenario=args.scenario,
            workers=args.workers, rounds=rounds, seed=args.seed,
            kill_at=kill_at,
        ),
    ]
    failed = False
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        print(f"[{status}] {check.name}: {check.detail}")
        failed = failed or not check.passed
    return 1 if failed else 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """The CI ``serve-smoke`` choreography (live roster, SIGTERM drain).

    A 4-slot service with a *live* (unscripted) roster runs with three
    immediate clients -- one of which leaves after its second dispatch
    -- and a fourth that joins late.  Once the checkpoint ledger shows
    ``--rounds`` completed rounds the service gets SIGTERM: it must
    finish the round in flight, write an interrupt checkpoint, drain
    every connected client, and exit 0 -- as must every client.
    """
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    env = _subprocess_env()
    port = _free_port()
    base = [sys.executable, "-m", "repro.verify.service"]
    ckpt_dir = out_dir / "ckpt"
    port_file = out_dir / "port"
    serve_log = out_dir / "serve.log"
    trace_out = out_dir / "serve-trace.jsonl"
    procs, handles = [], []
    failures: List[str] = []
    try:
        server, handle = _spawn(base + [
            "serve", "--preset", args.preset, "--scenario", args.scenario,
            "--workers", "4", "--rounds", str(args.rounds * 4),
            "--seed", str(args.seed), "--port", str(port),
            "--port-file", str(port_file), "--min-workers", "3",
            "--checkpoint-dir", str(ckpt_dir),
            "--trace-out", str(trace_out),
        ], serve_log, env)
        procs.append(server)
        handles.append(handle)
        _wait_for_file(port_file, 60.0, "the service's port file")

        def start_client(extra, tag):
            proc, handle = _spawn(
                base + ["client", "--port", str(port)] + extra,
                out_dir / f"client-{tag}.log", env)
            procs.append(proc)
            handles.append(handle)
            return proc

        # three immediate workers; one leaves after two dispatches
        start_client([], "a")
        start_client([], "b")
        start_client(["--leave-after", "2"], "leaver")
        # ... and a late joiner picks up the freed capacity
        time.sleep(1.5)
        start_client([], "late")

        deadline = time.monotonic() + args.timeout_s
        while time.monotonic() < deadline:
            if server.poll() is not None:
                failures.append(
                    f"service exited early ({server.returncode}): "
                    f"{_tail(serve_log)}")
                break
            latest = (latest_checkpoint(ckpt_dir)
                      if ckpt_dir.is_dir() else None)
            if latest is not None:
                next_round = load_checkpoint(latest).next_round
                if next_round >= args.rounds:
                    break
            time.sleep(0.2)
        else:
            failures.append(
                f"no checkpoint reached round {args.rounds} within "
                f"{args.timeout_s:.0f}s: {_tail(serve_log)}")

        if not failures:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=120)
            except subprocess.TimeoutExpired:
                failures.append("service did not drain within 120s of "
                                "SIGTERM")
            else:
                if server.returncode != 0:
                    failures.append(
                        f"drained service exited {server.returncode}: "
                        f"{_tail(serve_log)}")
        for proc in procs[1:]:
            try:
                proc.wait(timeout=120)
            except subprocess.TimeoutExpired:
                failures.append("a client did not observe the drain "
                                "within 120s")
        bad = [p for p in procs[1:] if p.returncode not in (0, None)]
        if bad:
            failures.append(f"{len(bad)} client(s) exited non-zero")
        latest = latest_checkpoint(ckpt_dir) if ckpt_dir.is_dir() else None
        if latest is None:
            failures.append("no checkpoint was written")
        else:
            resumable = load_checkpoint(latest)
            print(f"interrupt checkpoint: {latest.name} "
                  f"(next_round={resumable.next_round})")
    finally:
        _terminate_all(procs)
        for handle in handles:
            handle.close()

    for failure in failures:
        print(f"[FAIL] {failure}")
    if not failures:
        print(f"[PASS] live-roster smoke: one leave, one late join, "
              f"SIGTERM drain after >= {args.rounds} rounds, clean "
              f"checkpoint (artifacts in {out_dir})")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.service",
        description="loopback-socket service differential harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="scripted service leg (optionally SIGKILLed)")
    serve.add_argument("--preset", default="cnn")
    serve.add_argument("--scenario", default="medium")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--rounds", type=int, default=5)
    serve.add_argument("--seed", type=int, default=17)
    serve.add_argument("--port", type=int, required=True)
    serve.add_argument("--port-file", default=None)
    serve.add_argument("--min-workers", type=int, default=1)
    serve.add_argument("--roster-script", default=None,
                       help="{round: [worker ids]} JSON")
    serve.add_argument("--checkpoint-dir", default=None)
    serve.add_argument("--resume", default=None,
                       help="checkpoint file or directory (latest wins)")
    serve.add_argument("--kill-at", type=int, default=None)
    serve.add_argument("--history-out", default=None)
    serve.add_argument("--weights-out", default=None)
    serve.add_argument("--trace-out", default=None)
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser("client", help="one scripted worker client")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--worker-id", type=int, default=None)
    client.add_argument("--leave-after", type=int, default=None)
    client.add_argument("--reconnect", action="store_true")
    client.add_argument("--reconnect-timeout", type=float, default=120.0)
    client.set_defaults(func=_cmd_client)

    battery = sub.add_parser(
        "battery",
        help="loopback differential + kill-and-resume differential")
    battery.add_argument("--preset", default="cnn")
    battery.add_argument("--scenario", default="medium")
    battery.add_argument("--workers", type=int, default=4)
    battery.add_argument("--rounds", type=int, default=5)
    battery.add_argument("--seed", type=int, default=17)
    battery.add_argument("--kill-at", type=int, default=None)
    battery.set_defaults(func=_cmd_battery)

    smoke = sub.add_parser(
        "smoke",
        help="CI choreography: live roster, churn, SIGTERM drain")
    smoke.add_argument("--preset", default="cnn")
    smoke.add_argument("--scenario", default="medium")
    smoke.add_argument("--rounds", type=int, default=3,
                       help="SIGTERM once this many rounds are "
                            "checkpointed")
    smoke.add_argument("--seed", type=int, default=17)
    smoke.add_argument("--timeout-s", type=float, default=420.0)
    smoke.add_argument("--out-dir", required=True,
                       help="artifact directory (logs, trace, "
                            "checkpoints)")
    smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
