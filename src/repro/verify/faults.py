"""Deterministic fault injection for conformance testing.

:class:`FaultInjectionHook` rewrites a round's contribution set at the
engine's sanctioned ``before_aggregate`` interception point, driven by
an explicit list of :class:`FaultSpec` records -- no randomness, so a
fault scenario is exactly reproducible.

Fault taxonomy and the engine behaviour each one must produce
(asserted by :mod:`tests.test_verify.test_faults` and the ``repro
verify`` conformance stage):

========================  =================================================
kind                      defined engine behaviour
========================  =================================================
``drop``                  The contribution never reaches the aggregator.
                          Remaining workers are averaged with renormalised
                          weights; a round losing *every* contribution
                          raises :class:`EmptyRoundError`.
``duplicate``             A second contribution with the same worker id is
                          appended; the aggregator rejects the round with
                          :class:`DuplicateContributionError` (no scheduler
                          produces duplicates legitimately).
``poison``                The worker's arrays are laced with NaN.  Under
                          ``nan_policy="raise"`` the round fails with
                          :class:`PoisonedUpdateError`; under ``"skip"``
                          the contribution is dropped, counted in
                          ``poisoned_updates_total``, and the round
                          proceeds with the survivors.
``stale``                 The contribution is withheld for ``delay_rounds``
                          rounds, then *replaces* the worker's fresh
                          contribution in the round it lands in (the model
                          it was trained against is by then stale).  The
                          engine aggregates it like any other update --
                          staleness degrades quality, not validity.
``zero_samples``          The contribution reports ``num_samples=0``.
                          Sample-weighted aggregators skip it (weight 0);
                          uniform aggregators are unaffected by sample
                          counts and average it normally.
========================  =================================================

Injected faults are counted into telemetry as
``faults_injected_total`` labelled by kind.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.aggregation import Contribution
from repro.fl.hooks import RoundHook

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultInjectionHook"]

FAULT_KINDS = ("drop", "duplicate", "poison", "stale", "zero_samples")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: *kind* against *worker_id* in *round_index*.

    ``delay_rounds`` only applies to ``stale`` faults (how many rounds
    the contribution is withheld before landing).
    """

    kind: str
    round_index: int
    worker_id: int
    delay_rounds: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"available: {FAULT_KINDS}"
            )
        if self.kind == "stale" and self.delay_rounds <= 0:
            raise ValueError("stale faults need delay_rounds >= 1")


def _poisoned_copy(contribution: Contribution) -> Contribution:
    """Copy of a contribution with NaN planted in its largest array."""
    sub_state = {
        key: value.copy() for key, value in contribution.sub_state.items()
    }
    victim = max(sub_state, key=lambda key: sub_state[key].size)
    flat = sub_state[victim].reshape(-1)
    flat[: max(1, flat.size // 8)] = np.nan
    return dc_replace(contribution, sub_state=sub_state)


class FaultInjectionHook(RoundHook):
    """Apply a deterministic fault schedule at ``before_aggregate``.

    ``injected`` records every applied spec in application order;
    ``pending_stale`` holds withheld contributions between rounds.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = list(specs)
        self.injected: List[FaultSpec] = []
        self._stale: Dict[int, List[Contribution]] = {}
        self._engine = None

    def attach(self, engine) -> None:
        self._engine = engine

    @property
    def pending_stale(self) -> int:
        """Withheld contributions not yet re-injected."""
        return sum(len(held) for held in self._stale.values())

    def _count(self, spec: FaultSpec) -> None:
        self.injected.append(spec)
        if self._engine is not None:
            self._engine.telemetry.metrics.counter(
                "faults_injected_total", kind=spec.kind,
            ).inc()

    def before_aggregate(self, round_index: int,
                         contributions: List[Contribution],
                         ) -> Optional[List[Contribution]]:
        result = list(contributions)
        changed = False

        for spec in self.specs:
            if spec.round_index != round_index:
                continue
            target = next(
                (c for c in result if c.worker_id == spec.worker_id), None
            )
            if target is None:
                continue
            position = next(
                i for i, c in enumerate(result) if c is target
            )
            if spec.kind == "drop":
                del result[position]
            elif spec.kind == "duplicate":
                result.append(dc_replace(target))
            elif spec.kind == "poison":
                result[position] = _poisoned_copy(target)
            elif spec.kind == "zero_samples":
                result[position] = dc_replace(target, num_samples=0)
            elif spec.kind == "stale":
                del result[position]
                self._stale.setdefault(
                    round_index + spec.delay_rounds, []
                ).append(target)
            self._count(spec)
            changed = True

        # land withheld contributions: each replaces its worker's fresh
        # contribution this round (a worker uploads at most once)
        for held in self._stale.pop(round_index, []):
            result = [
                c for c in result if c.worker_id != held.worker_id
            ]
            result.append(held)
            changed = True

        return result if changed else None
