"""Differential testing: two configurations of the same seeded run.

The round engine promises that several configuration axes are
*semantics-preserving*:

- the dispatch/aggregation **fast path** (plan & sub-model caching +
  scatter-add accumulation) is bitwise identical to the dense
  reference path (``fast_path=False`` + ``Aggregator.dense=True``);
- a **semi-synchronous** round with an unreachable deadline admits
  every worker, so it aggregates the same contribution *set* as the
  synchronous barrier -- in arrival order rather than worker-id order,
  which reorders the floating-point summation but (for float32 models
  summed in the aggregator's float64 accumulator) cannot change it.

This module runs both sides of such a pair under one seed, captures
the global state after every aggregation, and reports the first
divergence beyond a tolerance measured in ULPs (units in the last
place): the number of representable floats between two values, the
natural scale-free metric for "how different did the arithmetic get".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.history import TrainingHistory
from repro.fl.hooks import RoundHook
from repro.fl.schedulers import make_scheduler
from repro.verify.errors import DivergenceError

__all__ = [
    "ulp_distance",
    "StateCaptureHook",
    "ParamDivergence",
    "DifferentialReport",
    "capture_run",
    "compare_state_sequences",
    "differential_fast_vs_dense",
    "differential_sync_vs_semisync",
    "differential_cohort_vs_member",
    "differential_serial_vs_process",
    "normalised_history_bytes",
]

#: a semi-sync deadline no simulated round can miss
UNREACHABLE_DEADLINE_S = 1e12


def _ulp_key(values: np.ndarray) -> np.ndarray:
    """Monotone uint64 key of IEEE-754 floats.

    Maps each float to an unsigned integer such that the float order
    is the integer order; the ULP distance between two floats is then
    the absolute difference of their keys.
    """
    if values.dtype == np.float64:
        bits = values.view(np.uint64)
        sign = np.uint64(1) << np.uint64(63)
    elif values.dtype == np.float32:
        bits = values.view(np.uint32)
        sign = np.uint32(1) << np.uint32(31)
    else:
        raise TypeError(
            f"ulp_distance needs float32/float64 arrays, got {values.dtype}"
        )
    # positives: set the sign bit; negatives: flip all bits.  Either way
    # the resulting unsigned keys sort exactly like the floats.
    keys = np.where(bits & sign, ~bits, bits | sign)
    return keys.astype(np.uint64)


def ulp_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ULP distance between two same-dtype float arrays.

    0 means bitwise identical; 1 means adjacent representable floats.
    ``+0.0`` and ``-0.0`` are adjacent (distance 1).  NaNs compare by
    bit pattern.  Distances are clipped to ``2**63 - 1``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.dtype != b.dtype:
        raise TypeError(f"dtype mismatch: {a.dtype} vs {b.dtype}")
    key_a = _ulp_key(a)
    key_b = _ulp_key(b)
    diff = np.maximum(key_a, key_b) - np.minimum(key_a, key_b)
    return np.minimum(diff, np.uint64(2 ** 63 - 1)).astype(np.int64)


@dataclass
class ParamDivergence:
    """First parameter entry that exceeded the tolerance."""

    round_index: int
    key: str
    index: int          # flat index into the parameter array
    ulps: int
    value_a: float
    value_b: float


@dataclass
class DifferentialReport:
    """Outcome of one differential comparison."""

    label_a: str
    label_b: str
    rounds_compared: int
    rounds_a: int
    rounds_b: int
    tolerance_ulps: int
    max_ulps: int
    first_divergence: Optional[ParamDivergence] = None

    @property
    def passed(self) -> bool:
        return (
            self.first_divergence is None
            and self.rounds_a == self.rounds_b
            and self.rounds_compared > 0
        )

    def describe(self) -> str:
        head = (f"{self.label_a} vs {self.label_b}: "
                f"{self.rounds_compared} rounds, "
                f"max {self.max_ulps} ULPs "
                f"(tolerance {self.tolerance_ulps})")
        if self.rounds_a != self.rounds_b:
            return (f"{head} -- FAILED: round counts differ "
                    f"({self.rounds_a} vs {self.rounds_b})")
        if self.first_divergence is not None:
            d = self.first_divergence
            return (f"{head} -- FAILED at round {d.round_index}, "
                    f"{d.key}[{d.index}]: {d.value_a!r} vs {d.value_b!r} "
                    f"({d.ulps} ULPs)")
        return f"{head} -- OK"

    def raise_if_failed(self) -> None:
        if not self.passed:
            raise DivergenceError(self.describe())


class StateCaptureHook(RoundHook):
    """Snapshot the global state after every aggregation."""

    def __init__(self) -> None:
        self.states: List[Dict[str, np.ndarray]] = []
        self._engine = None

    def attach(self, engine) -> None:
        self._engine = engine

    def on_aggregate(self, round_index, contributions) -> None:
        # global_state already returns a fresh copy
        self.states.append(self._engine.server.global_state)


def capture_run(task, devices: Sequence, config: FLConfig,
                dense: bool = False,
                extra_hooks: Sequence[RoundHook] = (),
                ) -> Tuple[TrainingHistory, List[Dict[str, np.ndarray]]]:
    """Run one experiment, returning its history and the per-round
    global states.  ``dense=True`` forces the reference aggregation
    path (full zero-expansion, no dispatch cache)."""
    capture = StateCaptureHook()
    engine = Engine(task, devices, config,
                    hooks=[capture, *extra_hooks])
    if dense:
        engine.aggregator.dense = True
    scheduler = make_scheduler(config)
    try:
        history = scheduler.run(engine)
    finally:
        engine.close()
    return history, capture.states


def compare_state_sequences(states_a: List[Dict[str, np.ndarray]],
                            states_b: List[Dict[str, np.ndarray]],
                            tolerance_ulps: int = 0,
                            label_a: str = "a",
                            label_b: str = "b") -> DifferentialReport:
    """Compare two captured state sequences round by round.

    Reports the first entry whose ULP distance exceeds the tolerance
    (round, parameter name, flat index) plus the global maximum
    distance over all compared rounds.
    """
    rounds = min(len(states_a), len(states_b))
    max_ulps = 0
    first: Optional[ParamDivergence] = None
    for round_index in range(rounds):
        state_a, state_b = states_a[round_index], states_b[round_index]
        if state_a.keys() != state_b.keys():
            missing = sorted(state_a.keys() ^ state_b.keys())
            raise ValueError(
                f"round {round_index}: state dicts disagree on keys "
                f"{missing}"
            )
        for key in sorted(state_a):
            ulps = ulp_distance(state_a[key], state_b[key])
            worst = int(ulps.max()) if ulps.size else 0
            max_ulps = max(max_ulps, worst)
            if first is None and worst > tolerance_ulps:
                index = int(np.argmax(ulps.reshape(-1)))
                first = ParamDivergence(
                    round_index=round_index, key=key, index=index,
                    ulps=int(ulps.reshape(-1)[index]),
                    value_a=float(state_a[key].reshape(-1)[index]),
                    value_b=float(state_b[key].reshape(-1)[index]),
                )
        if first is not None:
            break
    return DifferentialReport(
        label_a=label_a, label_b=label_b, rounds_compared=rounds,
        rounds_a=len(states_a), rounds_b=len(states_b),
        tolerance_ulps=tolerance_ulps, max_ulps=max_ulps,
        first_divergence=first,
    )


def differential_fast_vs_dense(task_factory: Callable[[], object],
                               devices: Sequence, config: FLConfig,
                               tolerance_ulps: int = 0,
                               ) -> DifferentialReport:
    """Fast path vs dense reference under one seed.

    The fast path is *specified* to be bitwise identical, so the
    default tolerance is zero ULPs.
    """
    fast_config = replace(config, fast_path=True)
    dense_config = replace(config, fast_path=False)
    _, states_fast = capture_run(task_factory(), devices, fast_config)
    _, states_dense = capture_run(task_factory(), devices, dense_config,
                                  dense=True)
    return compare_state_sequences(
        states_fast, states_dense, tolerance_ulps,
        label_a="fast_path", label_b="dense_reference",
    )


def differential_sync_vs_semisync(task_factory: Callable[[], object],
                                  devices: Sequence, config: FLConfig,
                                  tolerance_ulps: int = 0,
                                  ) -> DifferentialReport:
    """Sync barrier vs semi-sync with an unreachable deadline.

    Both sides aggregate every worker each round; they differ only in
    the *order* contributions are accumulated (worker id vs arrival
    time).  Summation order still cannot change the result, because
    the aggregator accumulates float32 uploads in a float64
    accumulator: each addend carries 24 significant bits, so any sum
    of a realistic fleet's contributions is *exact* in the 53-bit
    accumulator and order-independent.  The default tolerance is
    therefore 0 ULPs; it is configurable for float64-model setups,
    where reordering genuinely rounds differently.
    """
    if config.scheduler not in ("auto", "sync") or config.async_m is not None \
            or config.semi_sync_deadline_s is not None:
        raise ValueError(
            "differential_sync_vs_semisync needs a plain synchronous "
            "base config"
        )
    sync_config = replace(config, scheduler="sync")
    semi_config = replace(config, scheduler="semi_sync",
                          semi_sync_deadline_s=UNREACHABLE_DEADLINE_S)
    _, states_sync = capture_run(task_factory(), devices, sync_config)
    _, states_semi = capture_run(task_factory(), devices, semi_config)
    return compare_state_sequences(
        states_sync, states_semi, tolerance_ulps,
        label_a="sync", label_b="semi_sync_inf",
    )


def differential_cohort_vs_member(task_factory: Callable[[], object],
                                  devices: Sequence, config: FLConfig,
                                  tolerance_ulps: int = 0,
                                  ) -> DifferentialReport:
    """Cohort-sharded rounds vs the per-member path under one seed.

    The cohort path (``cohort_rounds="on"``) buckets workers by
    (pruning ratio, cluster), extracts one shared sub-model per
    cohort, optionally trains members as one vectorised batch, and
    aggregates per-cohort float64 partial sums before the global
    merge.  All of this is *specified* to be bitwise identical to
    dispatching, training and accumulating each member individually
    (DESIGN.md section 3.6), so the default tolerance is zero ULPs.
    """
    cohort_config = replace(config, fast_path=True, cohort_rounds="on")
    member_config = replace(config, cohort_rounds="off")
    _, states_cohort = capture_run(task_factory(), devices, cohort_config)
    _, states_member = capture_run(task_factory(), devices, member_config)
    return compare_state_sequences(
        states_cohort, states_member, tolerance_ulps,
        label_a="cohort", label_b="member",
    )


def normalised_history_bytes(history: TrainingHistory) -> bytes:
    """Canonical bytes of a history with wall-clock noise removed.

    Runs the real JSON serialisation path (:func:`repro.io.
    save_history`), then zeroes the two fields that measure host time
    rather than simulated behaviour -- ``overhead_s`` and any
    ``extras["wall_time_s"]`` a hook recorded -- and re-dumps with
    sorted keys.  Two runs are behaviourally identical iff these bytes
    are equal.
    """
    import json
    import tempfile
    from pathlib import Path

    from repro.io import save_history

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "history.json"
        save_history(history, path)
        payload = json.loads(path.read_text())
    for entry in payload["rounds"]:
        entry["overhead_s"] = 0.0
        extras = entry.get("extras") or {}
        extras.pop("wall_time_s", None)
    return json.dumps(payload, sort_keys=True).encode()


def differential_serial_vs_process(task_factory: Callable[[], object],
                                   devices: Sequence, config: FLConfig,
                                   tolerance_ulps: int = 0,
                                   num_procs: Optional[int] = None,
                                   ) -> Tuple[DifferentialReport, bool]:
    """Serial executor vs process-pool executor under one seed.

    The parallel runtime is *specified* to be bitwise identical
    (DESIGN.md 3.5): child workers rebuild the exact RNG streams from
    their specs and trained states travel back as exact ``float32``
    payloads, so the default tolerance is zero ULPs.  Returns the state
    report plus whether the two runs' normalised history JSON bytes
    were identical.
    """
    # the lossless escape hatch: whatever wire profile the incoming
    # config carries, the parity comparison runs over the exact wire --
    # the sparse profiles are lossy by design and cannot be 0-ULP
    serial_config = replace(config, executor="serial",
                            wire_profile="exact")
    process_config = replace(config, executor="process",
                             num_procs=num_procs, wire_profile="exact")
    history_serial, states_serial = capture_run(
        task_factory(), devices, serial_config
    )
    history_process, states_process = capture_run(
        task_factory(), devices, process_config
    )
    report = compare_state_sequences(
        states_serial, states_process, tolerance_ulps,
        label_a="serial", label_b="process",
    )
    histories_match = (
        normalised_history_bytes(history_serial)
        == normalised_history_bytes(history_process)
    )
    return report, histories_match
