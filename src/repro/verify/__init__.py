"""Verification subsystem: invariants, differential runs, fault injection.

Three complementary ways of checking that the round engine does what
it claims (see DESIGN.md section 3.4):

- :mod:`repro.verify.invariants` -- an engine hook that re-derives
  R2SP mass conservation, plan well-formedness, error-feedback
  accounting and E-UCB statistics integrity every round against slow
  reference oracles.
- :mod:`repro.verify.differential` -- runs semantics-preserving
  configuration pairs (fast path vs dense reference, sync vs
  semi-sync with an unreachable deadline) under one seed and reports
  the first ULP divergence.
- :mod:`repro.verify.faults` -- deterministic injection of dropped,
  duplicated, poisoned, stale and zero-sample contributions, with the
  engine's response pinned per fault kind.

- :mod:`repro.verify.resume` -- the kill-and-resume differential: a
  subprocess run is SIGKILLed mid-round, resumed from its latest
  checkpoint in a fresh process, and must finish byte-identical to
  the uninterrupted reference (not imported here: it doubles as the
  ``python -m repro.verify.resume`` crash/resume harness).

:func:`repro.verify.run.run_verification` (CLI: ``repro verify``)
composes them into one pass/fail battery.  Property-test
generators live in :mod:`repro.verify.strategies`; they are not
imported here so ``repro.verify`` works without ``hypothesis``.
"""

from repro.verify.differential import (
    DifferentialReport,
    ParamDivergence,
    StateCaptureHook,
    compare_state_sequences,
    differential_fast_vs_dense,
    differential_serial_vs_process,
    differential_sync_vs_semisync,
    normalised_history_bytes,
    ulp_distance,
)
from repro.verify.errors import (
    AggregationError,
    DivergenceError,
    DuplicateContributionError,
    EmptyRoundError,
    InvariantViolation,
    PoisonedUpdateError,
    VerificationError,
)
from repro.verify.faults import FAULT_KINDS, FaultInjectionHook, FaultSpec
from repro.verify.invariants import ALL_CHECKS, InvariantHook
from repro.verify.run import (
    CheckResult,
    VerificationReport,
    run_verification,
)

__all__ = [
    "AggregationError",
    "ALL_CHECKS",
    "CheckResult",
    "DifferentialReport",
    "DivergenceError",
    "DuplicateContributionError",
    "EmptyRoundError",
    "FAULT_KINDS",
    "FaultInjectionHook",
    "FaultSpec",
    "InvariantHook",
    "InvariantViolation",
    "ParamDivergence",
    "PoisonedUpdateError",
    "StateCaptureHook",
    "VerificationError",
    "VerificationReport",
    "compare_state_sequences",
    "differential_fast_vs_dense",
    "differential_serial_vs_process",
    "differential_sync_vs_semisync",
    "normalised_history_bytes",
    "run_verification",
    "ulp_distance",
]
