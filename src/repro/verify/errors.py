"""Typed failures of the verification subsystem.

The aggregation-layer errors (:class:`AggregationError` and friends)
live in :mod:`repro.fl.aggregation` -- the layer that raises them --
and are re-exported here so verification callers have one import
surface for everything a ``repro verify`` run can raise.
"""

from __future__ import annotations

from repro.fl.aggregation import (
    AggregationError,
    DuplicateContributionError,
    EmptyRoundError,
    PoisonedUpdateError,
)

__all__ = [
    "AggregationError",
    "DuplicateContributionError",
    "EmptyRoundError",
    "PoisonedUpdateError",
    "VerificationError",
    "InvariantViolation",
    "DivergenceError",
]


class VerificationError(AssertionError):
    """Base class for verification failures.

    Subclasses ``AssertionError``: a verification failure means the
    system violated a property that is supposed to hold always, which
    is exactly what a failed assertion communicates (and what test
    harnesses already report well).
    """


class InvariantViolation(VerificationError):
    """A runtime invariant check failed during a round.

    Raised by :class:`repro.verify.invariants.InvariantHook` in
    ``on_violation="raise"`` mode; in ``"record"`` mode violations are
    collected on the hook instead.
    """

    def __init__(self, check: str, round_index: int, detail: str) -> None:
        self.check = check
        self.round_index = round_index
        self.detail = detail
        super().__init__(
            f"[round {round_index}] invariant {check!r} violated: {detail}"
        )


class DivergenceError(VerificationError):
    """A differential run diverged beyond the configured tolerance.

    Raised by :mod:`repro.verify.differential` with the first diverging
    round, parameter and flat index attached.
    """
