"""Hypothesis strategies for property-based verification.

Generators for the domain objects the verification suite fuzzes over:
random state dicts, well-formed pruning plans over linear-chain
templates (with matching gathered sub-models), and heterogeneous
worker fleets.  Kept in a separate module so importing
:mod:`repro.verify` never requires ``hypothesis``.

Every strategy produces *well-formed* objects by construction (sorted
unique kept indices, chained ``kept_in`` == upstream ``kept_out``,
last layer protected) -- property tests that want malformed inputs
should corrupt these explicitly, so the failure is the property under
test and not generator noise.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from hypothesis import strategies as st

from repro.pruning.plan import LayerPrune, PruningPlan, keep_count
from repro.pruning.structured import gather_param
from repro.simulation.device import JETSON_TX2_MODES, DeviceProfile

__all__ = [
    "state_dicts",
    "pruning_ratios",
    "linear_chain_scenarios",
    "worker_fleets",
]


def _array_values(shape: Tuple[int, ...], seed: int,
                  dtype=np.float32) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape).astype(dtype)


@st.composite
def state_dicts(draw, min_entries: int = 1, max_entries: int = 4,
                max_dim: int = 6) -> Dict[str, np.ndarray]:
    """A dict of named float32 arrays with random 1-D/2-D shapes."""
    num_entries = draw(st.integers(min_entries, max_entries))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    state: Dict[str, np.ndarray] = {}
    for index in range(num_entries):
        ndim = draw(st.integers(1, 2))
        shape = tuple(
            draw(st.integers(1, max_dim)) for _ in range(ndim)
        )
        state[f"param{index}"] = _array_values(shape, seed + index)
    return state


def pruning_ratios(max_ratio: float = 0.8) -> st.SearchStrategy[float]:
    """Pruning ratios in ``[0, max_ratio]``, quantised to 1/64ths so
    shrinking produces readable values."""
    steps = int(max_ratio * 64)
    return st.integers(0, steps).map(lambda k: k / 64.0)


def _kept_indices(draw, full: int, count: int) -> np.ndarray:
    kept = draw(st.sets(st.integers(0, full - 1),
                        min_size=count, max_size=count))
    return np.asarray(sorted(kept), dtype=np.intp)


@st.composite
def linear_chain_scenarios(draw, max_layers: int = 3,
                           max_units: int = 8,
                           max_ratio: float = 0.8):
    """A consistent (template, plan, sub_state, weight) quadruple.

    The template is a chain of linear layers ``fc0 .. fcN`` (weight +
    bias each).  The plan prunes each hidden layer to
    :func:`keep_count` units at the drawn ratio with the kept set drawn
    uniformly (not just a prefix), chains ``kept_in`` to the upstream
    ``kept_out``, and keeps the last layer's outputs whole -- the same
    shape discipline the real plan builder follows.  ``sub_state`` is
    the plan's gather of the template; ``weight`` is an aggregation
    weight in ``(0, 4]``.
    """
    num_layers = draw(st.integers(1, max_layers))
    sizes = [draw(st.integers(2, max_units))
             for _ in range(num_layers + 1)]
    ratio = draw(pruning_ratios(max_ratio))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    weight = draw(
        st.floats(0.25, 4.0, allow_nan=False, allow_infinity=False)
    )

    plan = PruningPlan(ratio=ratio)
    template: Dict[str, np.ndarray] = {}
    kept_in = np.arange(sizes[0], dtype=np.intp)
    for index in range(num_layers):
        in_full, out_full = sizes[index], sizes[index + 1]
        last = index == num_layers - 1
        if last:
            kept_out = np.arange(out_full, dtype=np.intp)
        else:
            kept_out = _kept_indices(
                draw, out_full, keep_count(out_full, ratio)
            )
        name = f"fc{index}"
        plan.add(name, LayerPrune(
            kind="linear", kept_out=kept_out, out_full=out_full,
            kept_in=kept_in, in_full=in_full,
        ))
        template[f"{name}.weight"] = _array_values(
            (out_full, in_full), seed + 2 * index
        )
        template[f"{name}.bias"] = _array_values(
            (out_full,), seed + 2 * index + 1
        )
        kept_in = kept_out

    mapping = plan.param_names()
    sub_state = {
        key: gather_param(suffix, plan[layer], template[key])
        for key, (layer, suffix) in mapping.items()
    }
    return template, plan, sub_state, weight


@st.composite
def worker_fleets(draw, min_workers: int = 2, max_workers: int = 6):
    """A heterogeneous device fleet: mixed Table II modes and
    log-uniform link bandwidths, ids dense from 0."""
    count = draw(st.integers(min_workers, max_workers))
    devices = []
    for device_id in range(count):
        mode = JETSON_TX2_MODES[draw(st.integers(0, 3))]
        exponent = draw(
            st.floats(6.0, 8.0, allow_nan=False, allow_infinity=False)
        )
        devices.append(DeviceProfile(
            device_id=device_id, mode=mode,
            bandwidth_bps=float(10.0 ** exponent),
            cluster=draw(st.sampled_from(("A", "B"))),
        ))
    return devices
