"""Experiment plumbing shared by the benchmark harness.

- :mod:`repro.experiments.setups` -- bench-scale instantiations of the
  paper's four CNN tasks and the RNN task, with per-task targets and
  budgets (scaled versions of Section V's settings; the scaling is
  documented in DESIGN.md and EXPERIMENTS.md);
- :mod:`repro.experiments.reporting` -- fixed-width table printing in
  the shape of the paper's tables/figures plus the paper-reported
  reference numbers;
- :mod:`repro.experiments.cache` -- a per-process result cache so
  benches that share runs (e.g. Table III and Fig. 6) pay for them once.
"""

from repro.experiments.cache import run_cached
from repro.experiments.reporting import print_series, print_table
from repro.experiments.setups import (
    BENCH_TASKS,
    BenchTask,
    bench_scale,
    make_bench_task,
    make_devices,
)

__all__ = [
    "run_cached",
    "print_table",
    "print_series",
    "BENCH_TASKS",
    "BenchTask",
    "bench_scale",
    "make_bench_task",
    "make_devices",
]
