"""Fleet-scale round-throughput workload (shared with the benchmark).

The synthetic fleet workload behind ``benchmarks/bench_fleet.py`` and
``repro bench check --smoke``: a deliberately small shared-shard MLP
task whose fleet size scales the *engine* work (dispatch, pricing,
training-loop overhead, aggregation) rather than raw model flops.
Living inside the package -- ``benchmarks/`` is not importable -- lets
the CLI's regression gate re-run the exact committed workload.

Three operating points on the same seeded task:

- ``member_full`` -- the pre-cohort engine: every worker is dispatched
  its own sub-model clone and trained individually, every round;
- ``member_sampled`` -- per-member dispatch/training, but only
  ``clients_per_round`` sampled workers per round;
- ``cohort_sampled`` -- the cohort-sharded path: sampled workers are
  bucketed by (ratio, cluster), one shared sub-model per bucket, local
  training vectorised across each cohort, per-cohort aggregation
  partial sums.

All three points run bit-identical arithmetic per trained member.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.module import Sequential
from repro.simulation.cluster import make_scenario_devices

__all__ = [
    "CLIENTS_PER_ROUND",
    "FLEETS",
    "MODES",
    "FleetTask",
    "make_task",
    "make_fleet",
    "measure",
    "rounds_for",
]

CLIENTS_PER_ROUND = 256
FLEETS = (1_000, 10_000, 100_000)

MODES = {
    "member_full": dict(cohort_rounds="off", clients_per_round=None),
    "member_sampled": dict(cohort_rounds="off",
                           clients_per_round=CLIENTS_PER_ROUND),
    "cohort_sampled": dict(cohort_rounds="on",
                           clients_per_round=CLIENTS_PER_ROUND),
}


def _build_mlp(num_classes=10, input_shape=(1, 28, 28), rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape
    model = Sequential(
        ("flatten", Flatten()),
        ("fc1", Linear(channels * height * width, 64, rng=rng)),
        ("relu1", ReLU()),
        ("fc2", Linear(64, num_classes, rng=rng)),
    )
    model.input_shape = input_shape
    model.num_classes = num_classes
    model.name = "fleet_mlp"
    return model


class FleetTask(ClassificationTask):
    """Shared-shard MLP task: every worker trains the same small shard,
    so fleet size scales the *engine* work, not the dataset."""

    def build_model(self, rng):
        return _build_mlp(self.dataset.num_classes,
                          self.dataset.input_shape, rng)

    def partition(self, num_workers, rng):
        shard = (self.dataset.train_x, self.dataset.train_y)
        return [shard] * num_workers


def make_task() -> FleetTask:
    dataset = make_synthetic_mnist(train_per_class=8, test_per_class=2,
                                   rng=np.random.default_rng(0))
    return FleetTask(dataset, "cnn")


def make_fleet(count: int):
    half = count // 2
    return make_scenario_devices({"A": count - half, "B": half},
                                 np.random.default_rng(5))


def rounds_for(mode: str, fleet: int) -> int:
    """Round count keeping per-member full-fleet wall time bounded."""
    if mode == "member_full":
        return 3 if fleet <= 1_000 else (2 if fleet <= 10_000 else 1)
    return 3


def measure(task: FleetTask, devices: List, mode: str, rounds: int,
            telemetry=None) -> dict:
    """Run ``rounds`` rounds of ``mode`` and report throughput.

    ``telemetry`` is threaded into the engine when given (the overhead
    benchmark measures enabled-vs-disabled on this exact workload).
    """
    config = FLConfig(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                      max_rounds=rounds, local_iterations=2,
                      batch_size=8, eval_every=10_000, seed=7,
                      **MODES[mode])
    start = time.perf_counter()
    engine = Engine(task, devices, config, telemetry=telemetry)
    build_s = time.perf_counter() - start
    start = time.perf_counter()
    try:
        history = make_scheduler(config).run(engine)
    finally:
        engine.close()
    wall_s = time.perf_counter() - start
    sampled = config.clients_per_round or len(devices)
    return {
        "rounds": len(history.rounds),
        "members_trained_per_round": min(sampled, len(devices)),
        "engine_build_s": round(build_s, 3),
        "wall_s_total": round(wall_s, 4),
        "rounds_per_s": round(len(history.rounds) / wall_s, 4),
    }


def sweep(fleets: Tuple[int, ...], smoke: bool,
          progress: Optional[callable] = None) -> dict:
    """The full benchmark sweep (``smoke`` = one cohort-sampled point).

    ``progress`` receives one formatted line per measurement.
    """
    task = make_task()
    entries = []
    for fleet in fleets:
        devices = make_fleet(fleet)
        entry = {"fleet": fleet}
        modes = ("cohort_sampled",) if smoke else tuple(MODES)
        for mode in modes:
            rounds = 1 if smoke else rounds_for(mode, fleet)
            entry[mode] = measure(task, devices, mode, rounds)
            if progress is not None:
                progress(
                    f"fleet={fleet:>7} {mode:<15} "
                    f"{entry[mode]['rounds_per_s']:>9.4f} rounds/s "
                    f"(build {entry[mode]['engine_build_s']:.2f}s)"
                )
        if not smoke:
            entry["speedup_vs_member_full"] = round(
                entry["cohort_sampled"]["rounds_per_s"]
                / entry["member_full"]["rounds_per_s"], 2)
            entry["speedup_vs_member_sampled"] = round(
                entry["cohort_sampled"]["rounds_per_s"]
                / entry["member_sampled"]["rounds_per_s"], 2)
        entries.append(entry)
    return {
        "benchmark": "fleet_scale_rounds",
        "model": "fleet_mlp (784-64-10, shared shard)",
        "clients_per_round": CLIENTS_PER_ROUND,
        "local_iterations": 2,
        "batch_size": 8,
        "smoke": smoke,
        "fleets": entries,
    }
