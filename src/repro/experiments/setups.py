"""Bench-scale task instantiations of the paper's workloads.

The paper trains full-size models for 20,000-100,000 seconds on
physical boards.  The benchmarks reproduce the *experiment structure*
(same models, same datasets, same decision logic) at a scale a CPU can
sweep in minutes: scaled widths, prototype datasets, and proportionally
scaled time budgets / accuracy targets.  ``REPRO_BENCH_SCALE`` (a float,
default 1.0) multiplies the round budgets for deeper runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.data.synthetic import (
    make_synthetic_cifar10,
    make_synthetic_emnist,
    make_synthetic_mnist,
    make_synthetic_tiny_imagenet,
)
from repro.data.text import make_synthetic_ptb
from repro.fl.config import FLConfig
from repro.fl.tasks import ClassificationTask, LanguageModelTask
from repro.simulation.cluster import make_scenario_devices


def bench_scale() -> float:
    """Round-budget multiplier from ``REPRO_BENCH_SCALE`` (default 1)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@dataclass
class BenchTask:
    """One paper workload at benchmark scale."""

    key: str                    # "cnn", "alexnet", "vgg19", "resnet50", "lstm"
    label: str                  # "CNN on MNIST" etc.
    task_factory: Callable[[float], Any]   # non_iid_level -> task adapter
    target_metric: float        # scaled analogue of the paper's target
    max_rounds: int
    local_iterations: int = 3
    batch_size: int = 16
    lr: float = 0.05
    momentum: float = 0.0
    #: kwargs for the bandit strategies (fedmp / upfl); narrow bench
    #: models need a lower max_ratio ceiling than the paper's 0.9
    bandit_kwargs: Dict[str, Any] = field(default_factory=dict)
    paper_target: str = ""      # the paper's own target, for reporting

    def make_task(self, non_iid_level: float = 0.0):
        return self.task_factory(non_iid_level)

    def make_config(self, strategy: str, **overrides) -> FLConfig:
        """Standard config for this task; overrides win."""
        params: Dict[str, Any] = dict(
            strategy=strategy,
            max_rounds=max(3, int(round(self.max_rounds * bench_scale()))),
            local_iterations=self.local_iterations,
            batch_size=self.batch_size,
            lr=self.lr,
            momentum=self.momentum,
            eval_every=1,
            seed=17,
        )
        if strategy in ("fedmp", "upfl") and self.bandit_kwargs:
            params["strategy_kwargs"] = dict(self.bandit_kwargs)
        params.update(overrides)
        return FLConfig(**params)


def _cnn_task(non_iid_level: float) -> ClassificationTask:
    dataset = make_synthetic_mnist(train_per_class=60, test_per_class=15,
                                   rng=np.random.default_rng(100))
    return ClassificationTask(dataset, "cnn", non_iid_level=non_iid_level)


def _alexnet_task(non_iid_level: float) -> ClassificationTask:
    dataset = make_synthetic_cifar10(train_per_class=60, test_per_class=15,
                                     rng=np.random.default_rng(101))
    return ClassificationTask(
        dataset, "alexnet",
        model_kwargs={"width_mult": 0.2, "dropout": 0.1},
        non_iid_level=non_iid_level,
    )


def _vgg_task(non_iid_level: float) -> ClassificationTask:
    # EMNIST stand-in scaled to 30 classes / low noise: the 16-layer
    # stack at width 0.1 is otherwise unoptimisable at bench scale
    dataset = make_synthetic_emnist(train_per_class=20, test_per_class=5,
                                    num_classes=30, noise=0.3,
                                    rng=np.random.default_rng(102))
    return ClassificationTask(
        dataset, "vgg19",
        model_kwargs={"width_mult": 0.1, "dropout": 0.0},
        non_iid_level=non_iid_level,
    )


def _resnet_task(non_iid_level: float) -> ClassificationTask:
    dataset = make_synthetic_tiny_imagenet(
        train_per_class=8, test_per_class=2, num_classes=50, noise=0.5,
        rng=np.random.default_rng(103),
    )
    return ClassificationTask(
        dataset, "resnet50",
        model_kwargs={"width_mult": 0.125, "blocks_per_stage": (1, 1, 1, 1)},
        non_iid_level=non_iid_level,
    )


def _lstm_task(non_iid_level: float) -> LanguageModelTask:
    corpus = make_synthetic_ptb(vocab_size=300, train_tokens=30_000,
                                valid_tokens=3_000, test_tokens=3_000,
                                rng=np.random.default_rng(104))
    return LanguageModelTask(
        corpus, seq_len=12, lm_batch_size=8,
        model_kwargs={"embedding_dim": 24, "hidden_size": 48},
    )


#: The paper's four CNN tasks (Section V-A) plus the RNN task (VI),
#: bench-scale.  Targets are reachable analogues of the paper's
#: 90% / 80% / 80% / 45% accuracy and 150 perplexity goals.
BENCH_TASKS: Dict[str, BenchTask] = {
    "cnn": BenchTask(
        key="cnn", label="CNN on MNIST", task_factory=_cnn_task,
        target_metric=0.90, max_rounds=16, lr=0.05,
        bandit_kwargs={"max_ratio": 0.7},
        paper_target="90% acc / 20000s budget",
    ),
    "alexnet": BenchTask(
        key="alexnet", label="AlexNet on CIFAR-10",
        task_factory=_alexnet_task,
        target_metric=0.80, max_rounds=16, lr=0.08,
        bandit_kwargs={"max_ratio": 0.6},
        paper_target="80% acc / 30000s budget",
    ),
    "vgg19": BenchTask(
        key="vgg19", label="VGG-19 on EMNIST", task_factory=_vgg_task,
        target_metric=0.70, max_rounds=14, local_iterations=5,
        lr=0.05, momentum=0.9,
        bandit_kwargs={"max_ratio": 0.15, "exploration": 0.25,
                       "warmup_rounds": 2},
        paper_target="80% acc / 50000s budget",
    ),
    "resnet50": BenchTask(
        key="resnet50", label="ResNet-50 on Tiny-ImageNet",
        task_factory=_resnet_task,
        target_metric=0.45, max_rounds=16, local_iterations=4,
        lr=0.1, momentum=0.9, batch_size=8,
        bandit_kwargs={"max_ratio": 0.3, "exploration": 0.25,
                       "warmup_rounds": 2},
        paper_target="45% acc / 100000s budget",
    ),
    "lstm": BenchTask(
        key="lstm", label="LSTM on PTB", task_factory=_lstm_task,
        target_metric=150.0, max_rounds=12, lr=0.8, batch_size=1,
        bandit_kwargs={"max_ratio": 0.6},
        paper_target="perplexity 150",
    ),
}

#: The five synchronous methods in the paper's comparison order.
METHOD_ORDER: List[str] = ["synfl", "upfl", "fedprox", "flexcom", "fedmp"]

METHOD_LABELS: Dict[str, str] = {
    "synfl": "Syn-FL",
    "upfl": "UP-FL",
    "fedprox": "FedProx",
    "flexcom": "FlexCom",
    "fedmp": "FedMP",
}


def make_bench_task(key: str) -> BenchTask:
    try:
        return BENCH_TASKS[key]
    except KeyError:
        raise KeyError(
            f"unknown bench task {key!r}; available: {sorted(BENCH_TASKS)}"
        ) from None


def make_devices(scenario="medium", seed: int = 42,
                 count: Optional[int] = None):
    """Devices for a scenario; ``count`` replicates the half-A/half-B
    composition of Section V-G for worker-scaling sweeps."""
    rng = np.random.default_rng(seed)
    if count is None:
        return make_scenario_devices(scenario, rng)
    half = count // 2
    return make_scenario_devices({"A": count - half, "B": half}, rng)
