"""Per-process result cache for the benchmark harness.

Table III and Fig. 6 report the same training runs from different
angles; Fig. 8's *Medium* column repeats the default scenario, and so
on.  ``run_cached`` keys a training run by a caller-supplied string so
each distinct experiment executes exactly once per pytest session.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

_CACHE: Dict[str, Any] = {}


def run_cached(key: str, factory: Callable[[], Any]) -> Any:
    """Return the cached value for ``key``, computing it on first use."""
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached results (used by tests)."""
    _CACHE.clear()
