"""Paper-style table and series printing for the benchmark harness.

Every bench prints (a) the rows/series measured here and (b) the
numbers the paper reports for the same experiment, so the qualitative
comparison (who wins, by roughly what factor) is visible in the bench
output itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def print_table(title: str, columns: Sequence[str],
                rows: Sequence[Sequence], note: str = "") -> None:
    """Fixed-width table with a title banner."""
    widths = [
        max(len(str(col)), *(len(str(row[i])) for row in rows)) + 2
        for i, col in enumerate(columns)
    ] if rows else [len(str(col)) + 2 for col in columns]

    print()
    print("=" * max(len(title), sum(widths)))
    print(title)
    print("=" * max(len(title), sum(widths)))
    header = "".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        print(f"\n{note}")


def print_series(title: str, series: Dict[str, List[tuple]],
                 x_label: str = "t", y_label: str = "value",
                 max_points: int = 12) -> None:
    """Print (x, y) series per method, subsampled to ``max_points``."""
    print(f"\n--- {title} ({x_label} -> {y_label}) ---")
    for name, points in series.items():
        if len(points) > max_points:
            step = max(1, len(points) // max_points)
            points = points[::step] + [points[-1]]
        text = ", ".join(
            f"({x:.0f}, {y:.3f})" if isinstance(y, float) else f"({x}, {y})"
            for x, y in points
        )
        print(f"  {name:<10} {text}")


def fmt_time(value: Optional[float]) -> str:
    """Format a time-to-target value, '--' when the target was missed."""
    return f"{value:.0f}s" if value is not None else "--"


def fmt_speedup(baseline: Optional[float], other: Optional[float]) -> str:
    """Speedup of ``other`` relative to ``baseline``."""
    if baseline is None or other is None or other == 0:
        return "--"
    return f"{baseline / other:.2f}x"
