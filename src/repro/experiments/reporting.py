"""Paper-style table and series printing for the benchmark harness.

Every bench prints (a) the rows/series measured here and (b) the
numbers the paper reports for the same experiment, so the qualitative
comparison (who wins, by roughly what factor) is visible in the bench
output itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def print_table(title: str, columns: Sequence[str],
                rows: Sequence[Sequence], note: str = "") -> None:
    """Fixed-width table with a title banner."""
    widths = [
        max(len(str(col)), *(len(str(row[i])) for row in rows)) + 2
        for i, col in enumerate(columns)
    ] if rows else [len(str(col)) + 2 for col in columns]

    print()
    print("=" * max(len(title), sum(widths)))
    print(title)
    print("=" * max(len(title), sum(widths)))
    header = "".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        print(f"\n{note}")


def print_series(title: str, series: Dict[str, List[tuple]],
                 x_label: str = "t", y_label: str = "value",
                 max_points: int = 12) -> None:
    """Print (x, y) series per method, subsampled to ``max_points``."""
    print(f"\n--- {title} ({x_label} -> {y_label}) ---")
    for name, points in series.items():
        if len(points) > max_points:
            step = max(1, len(points) // max_points)
            points = points[::step] + [points[-1]]
        text = ", ".join(
            f"({x:.0f}, {y:.3f})" if isinstance(y, float) else f"({x}, {y})"
            for x, y in points
        )
        print(f"  {name:<10} {text}")


def print_metrics_summary(registry) -> None:
    """Console summary of a :class:`~repro.telemetry.MetricsRegistry`.

    Histograms print count/mean/p50/p95/p99, counters and gauges print
    their current values; instruments are keyed by their Prometheus-ish
    ``name{label=value,...}`` rendering.
    """
    from repro.telemetry.metrics import format_instrument

    rows = []
    for hist in registry.histograms:
        summary = hist.summary()
        if not summary["count"]:
            continue
        rows.append((
            format_instrument(hist.name, hist.labels),
            summary["count"],
            f"{summary['mean']:.4g}",
            f"{summary['p50']:.4g}",
            f"{summary['p95']:.4g}",
            f"{summary['p99']:.4g}",
        ))
    if rows:
        print_table("telemetry: histograms",
                    ("instrument", "count", "mean", "p50", "p95", "p99"),
                    rows)
    counter_rows = [
        (format_instrument(counter.name, counter.labels),
         f"{counter.value:g}")
        for counter in registry.counters
    ]
    if counter_rows:
        print_table("telemetry: counters", ("instrument", "total"),
                    counter_rows)


def print_profile_summary(profiler) -> None:
    """Console summary of a :class:`~repro.telemetry.LayerProfiler`."""
    records = profiler.summary()
    if not records:
        print("\nprofiler: no layers recorded")
        return
    rows = []
    for record in records:
        flops = (
            f"{record['total_flops'] / 1e6:.2f}M"
            if record["total_flops"] is not None else "--"
        )
        rows.append((
            record["name"], record["layer_type"],
            record["forward_calls"],
            f"{record['forward_s'] * 1e3:.2f}ms",
            f"{record['backward_s'] * 1e3:.2f}ms",
            flops,
        ))
    worker = "" if profiler.worker_id is None \
        else f" (worker {profiler.worker_id})"
    print_table(
        f"profiler: per-layer forward/backward{worker}",
        ("layer", "type", "fwd calls", "fwd time", "bwd time", "flops"),
        rows,
        note=f"total instrumented time {profiler.total_s:.3f}s",
    )


def fmt_time(value: Optional[float]) -> str:
    """Format a time-to-target value, '--' when the target was missed."""
    return f"{value:.0f}s" if value is not None else "--"


def fmt_speedup(baseline: Optional[float], other: Optional[float]) -> str:
    """Speedup of ``other`` relative to ``baseline``."""
    if baseline is None or other is None or other == 0:
        return "--"
    return f"{baseline / other:.2f}x"
