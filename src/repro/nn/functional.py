"""Functional building blocks: im2col convolution, pooling, activations.

Convolution is implemented with the classic im2col lowering so both the
forward and backward passes are single matrix multiplications; this is
the fastest pure-NumPy formulation and is exact (no approximation), so
gradient checks in the test suite validate it to ~1e-8.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int,
           padding: int) -> np.ndarray:
    """Lower image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kh * kw)`` where each row is
    one receptive field.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    # Work in NHWC: one cheap layout change up front, then every patch
    # copy moves contiguous channel rows (much faster than gathering a
    # 6-D transpose at the end).
    x_nhwc = np.ascontiguousarray(x.transpose(0, 2, 3, 1))
    cols = np.empty((n, out_h, out_w, c, kh, kw), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, :, :, i, j] = x_nhwc[:, i:i_max:stride, j:j_max:stride, :]
    return cols.reshape(n * out_h * out_w, -1)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
           kw: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image.

    Overlapping patches are summed, which is exactly the adjoint
    operation needed for convolution backward.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw)

    # Accumulate in NHWC (contiguous channel rows), convert back once.
    padded = np.zeros((n, h + 2 * padding, w + 2 * padding, c),
                      dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, i:i_max:stride, j:j_max:stride, :] += cols[:, :, :, :, i, j]
    out = padded.transpose(0, 3, 1, 2)
    if padding > 0:
        out = out[:, :, padding:-padding, padding:-padding]
    return np.ascontiguousarray(out)


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Elementwise hyperbolic tangent."""
    return np.tanh(x)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax of a ``(N, K)`` logit matrix."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
