"""Pure-NumPy neural-network substrate.

The paper's prototype is built on PyTorch; no deep-learning framework is
available offline here, so this subpackage provides the minimal but
complete substrate FedMP needs: convolution / linear / batch-norm /
pooling / dropout layers with exact manual backpropagation, LSTM
recurrent layers, losses, initialisers and SGD-family optimisers.

Every layer follows the same contract:

- ``forward(x)`` stores whatever the backward pass needs,
- ``backward(grad_out)`` accumulates parameter gradients into
  ``layer.grads`` and returns the gradient w.r.t. the input,
- parameters live in ``layer.params`` as plain ``numpy`` arrays.
"""

from repro.nn.module import Module, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.recurrent import LSTM, Embedding
from repro.nn.loss import CrossEntropyLoss, MSELoss, softmax
from repro.nn.optim import SGD, ProximalSGD
from repro.nn import init
from repro.nn import functional

__all__ = [
    "Module",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Dropout",
    "LSTM",
    "Embedding",
    "CrossEntropyLoss",
    "MSELoss",
    "softmax",
    "SGD",
    "ProximalSGD",
    "init",
    "functional",
]
