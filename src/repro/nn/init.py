"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so
every model build is reproducible from a single seed; there is no global
RNG state anywhere in the package.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.nn.dtype import get_default_dtype


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor.

    Linear weights are ``(out, in)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init, the default for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init, used for LSTM input/hidden weights."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator,
            bound: float) -> np.ndarray:
    """Plain uniform init in ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros array (bias default)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones array (batch-norm scale default)."""
    return np.ones(shape, dtype=get_default_dtype())
