"""Recurrent layers for the paper's RNN extension (Section VI).

The paper trains a language model with two stacked LSTM layers on Penn
TreeBank and prunes it with the Intrinsic Sparse Structure (ISS) method:
an ISS component couples one hidden unit across *all* gate blocks of a
layer, the matching column of the next layer's input weights, and so on,
so removing it shrinks the hidden dimension without breaking recurrence.
The weight layout below (gate blocks stacked along the first axis) is
chosen so :mod:`repro.pruning.iss` can slice ISS components directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module


class Embedding(Module):
    """Token-id to dense-vector lookup table.

    Weight shape is ``(vocab_size, embedding_dim)``.  Columns of the
    embedding matrix align with LSTM input columns, so ISS pruning can
    shrink ``embedding_dim`` coherently.
    """

    def __init__(self, vocab_size: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        rng = rng if rng is not None else np.random.default_rng(0)
        self.add_param("weight", init.uniform((vocab_size, embedding_dim), rng, 0.1))
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Look up ``(T, B)`` integer ids, returning ``(T, B, D)``."""
        self._ids = ids
        return self.params["weight"][ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.grads["weight"], self._ids.reshape(-1),
                  grad_out.reshape(-1, self.embedding_dim))
        return grad_out  # ids carry no gradient; return value unused


class LSTM(Module):
    """Single LSTM layer over ``(T, B, I)`` sequences.

    Parameters are laid out with the four gate blocks (input, forget,
    cell, output) stacked along axis 0:

    - ``w_ih``: ``(4*H, I)``
    - ``w_hh``: ``(4*H, H)``
    - ``bias``: ``(4*H,)``

    Hidden unit ``j`` therefore owns rows ``{j, H+j, 2H+j, 3H+j}`` of
    ``w_ih``/``w_hh``/``bias`` plus column ``j`` of ``w_hh`` — the ISS
    component used by structured RNN pruning.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = rng if rng is not None else np.random.default_rng(0)
        self.add_param("w_ih", init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.add_param("w_hh", init.xavier_uniform((4 * hidden_size, hidden_size), rng))
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size: 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.add_param("bias", bias)
        self._cache: Optional[dict] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the layer over a full sequence, returning all hidden states."""
        t_steps, batch, _ = x.shape
        h_dim = self.hidden_size
        w_ih, w_hh = self.params["w_ih"], self.params["w_hh"]
        bias = self.params["bias"]

        h = np.zeros((batch, h_dim))
        c = np.zeros((batch, h_dim))
        gates_cache: List[Tuple[np.ndarray, ...]] = []
        h_seq = np.empty((t_steps, batch, h_dim))
        h_prev_seq = np.empty((t_steps, batch, h_dim))
        c_prev_seq = np.empty((t_steps, batch, h_dim))

        for t in range(t_steps):
            h_prev_seq[t] = h
            c_prev_seq[t] = c
            pre = x[t] @ w_ih.T + h @ w_hh.T + bias
            i_g = F.sigmoid(pre[:, 0 * h_dim: 1 * h_dim])
            f_g = F.sigmoid(pre[:, 1 * h_dim: 2 * h_dim])
            g_g = F.tanh(pre[:, 2 * h_dim: 3 * h_dim])
            o_g = F.sigmoid(pre[:, 3 * h_dim: 4 * h_dim])
            c = f_g * c + i_g * g_g
            tanh_c = F.tanh(c)
            h = o_g * tanh_c
            h_seq[t] = h
            gates_cache.append((i_g, f_g, g_g, o_g, tanh_c, c))

        self._cache = {
            "x": x,
            "gates": gates_cache,
            "h_prev": h_prev_seq,
            "c_prev": c_prev_seq,
        }
        return h_seq

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through time given ``(T, B, H)`` output grads."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        t_steps, batch, _ = x.shape
        h_dim = self.hidden_size
        w_ih, w_hh = self.params["w_ih"], self.params["w_hh"]

        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, h_dim))
        dc_next = np.zeros((batch, h_dim))
        d_w_ih = np.zeros_like(w_ih)
        d_w_hh = np.zeros_like(w_hh)
        d_bias = np.zeros_like(self.params["bias"])

        for t in reversed(range(t_steps)):
            i_g, f_g, g_g, o_g, tanh_c, _ = cache["gates"][t]
            c_prev = cache["c_prev"][t]
            h_prev = cache["h_prev"][t]

            dh = grad_out[t] + dh_next
            do = dh * tanh_c
            dc = dh * o_g * (1.0 - tanh_c ** 2) + dc_next
            di = dc * g_g
            df = dc * c_prev
            dg = dc * i_g
            dc_next = dc * f_g

            dpre = np.concatenate(
                [
                    di * i_g * (1.0 - i_g),
                    df * f_g * (1.0 - f_g),
                    dg * (1.0 - g_g ** 2),
                    do * o_g * (1.0 - o_g),
                ],
                axis=1,
            )
            d_w_ih += dpre.T @ x[t]
            d_w_hh += dpre.T @ h_prev
            d_bias += dpre.sum(axis=0)
            grad_x[t] = dpre @ w_ih
            dh_next = dpre @ w_hh

        self.grads["w_ih"] += d_w_ih
        self.grads["w_hh"] += d_w_hh
        self.grads["bias"] += d_bias
        return grad_x
