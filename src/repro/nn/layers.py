"""Feed-forward layers with exact manual backpropagation.

These are the prunable building blocks of the model zoo.  Conv2d and
Linear are the structured-pruning targets (filters and neurons
respectively); BatchNorm2d is pruned alongside its preceding
convolution, exactly as Section III-B of the paper prescribes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module


class Linear(Module):
    """Fully-connected layer ``y = x @ W.T + b``.

    Weight shape is ``(out_features, in_features)`` so that row ``i``
    holds everything connected to output neuron ``i`` — the unit of
    structured pruning for fully-connected layers.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng(0)
        self.add_param("weight", init.kaiming_uniform((out_features, in_features), rng))
        self.add_param("bias", init.zeros((out_features,)))
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.params["weight"].T + self.params["bias"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["weight"] += grad_out.T @ self._x
        self.grads["bias"] += grad_out.sum(axis=0)
        return grad_out @ self.params["weight"]


class Conv2d(Module):
    """2-D convolution over ``(N, C, H, W)`` inputs via im2col.

    Weight shape is ``(out_channels, in_channels, kh, kw)``; output
    channel ``i`` is one *filter*, the unit of structured pruning for
    convolutional layers.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        #: When False (set for a network's first layer), backward skips
        #: the input-gradient col2im -- nothing consumes it.
        self.requires_input_grad = True
        rng = rng if rng is not None else np.random.default_rng(0)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.add_param("weight", init.kaiming_uniform(shape, rng))
        self.add_param("bias", init.zeros((out_channels,)))
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)

        cols = F.im2col(x, k, k, s, p)
        self._cols = cols
        self._x_shape = x.shape

        w_mat = self.params["weight"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params["bias"]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)

        self.grads["weight"] += (grad_mat.T @ self._cols).reshape(
            self.params["weight"].shape
        )
        self.grads["bias"] += grad_mat.sum(axis=0)

        if not self.requires_input_grad:
            return np.zeros(self._x_shape, dtype=grad_out.dtype)
        w_mat = self.params["weight"].reshape(self.out_channels, -1)
        grad_cols = grad_mat @ w_mat
        return F.col2im(grad_cols, self._x_shape, k, k, s, p)


class BatchNorm2d(Module):
    """Per-channel batch normalisation for ``(N, C, H, W)`` tensors.

    Maintains running mean/variance buffers for evaluation mode.  When
    the preceding convolution is pruned, the corresponding channels of
    ``gamma``/``beta`` (and the running statistics) are removed too.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.add_param("gamma", init.ones((num_features,)))
        self.add_param("beta", init.zeros((num_features,)))
        self.add_buffer("running_mean", init.zeros((num_features,)))
        self.add_buffer("running_var", init.ones((num_features,)))
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        gamma = self.params["gamma"].reshape(1, -1, 1, 1)
        beta = self.params["beta"].reshape(1, -1, 1, 1)
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self.buffers["running_mean"] = (
                (1 - m) * self.buffers["running_mean"] + m * mean
            )
            self.buffers["running_var"] = (
                (1 - m) * self.buffers["running_var"] + m * var
            )
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
            self._cache = (x_hat, inv_std)
        else:
            mean = self.buffers["running_mean"]
            inv_std = 1.0 / np.sqrt(self.buffers["running_var"] + self.eps)
            x_hat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
            self._cache = (x_hat, inv_std)
        return gamma * x_hat + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        n, _, h, w = grad_out.shape
        m = n * h * w

        self.grads["gamma"] += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.grads["beta"] += grad_out.sum(axis=(0, 2, 3))

        gamma = self.params["gamma"].reshape(1, -1, 1, 1)
        grad_x_hat = grad_out * gamma
        if not self.training:
            return grad_x_hat * inv_std.reshape(1, -1, 1, 1)

        sum_g = grad_x_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (grad_x_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std.reshape(1, -1, 1, 1)
            * (grad_x_hat - sum_g / m - x_hat * sum_gx / m)
        )


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class MaxPool2d(Module):
    """Max pooling with square windows (kernel == stride by default).

    The common non-overlapping case (stride == kernel) uses a pure
    reshape formulation; overlapping windows fall back to im2col.
    """

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = F.conv_output_size(h, k, s, 0)
        out_w = F.conv_output_size(w, k, s, 0)

        if s == k:
            windows = (
                x[:, :, : out_h * k, : out_w * k]
                .reshape(n, c, out_h, k, out_w, k)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(n, c, out_h, out_w, k * k)
            )
            argmax = windows.argmax(axis=-1)
            out = np.take_along_axis(
                windows, argmax[..., None], axis=-1
            )[..., 0]
            self._cache = ("fast", argmax, x.shape)
            return out

        cols = F.im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = ("cols", argmax, cols.shape, x.shape)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if self._cache[0] == "fast":
            _, argmax, x_shape = self._cache
            n, c, h, w = x_shape
            k = self.kernel_size
            out_h, out_w = argmax.shape[2], argmax.shape[3]
            grad_windows = np.zeros(
                (n, c, out_h, out_w, k * k), dtype=grad_out.dtype
            )
            np.put_along_axis(
                grad_windows, argmax[..., None], grad_out[..., None], axis=-1
            )
            grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
            grad_x[:, :, : out_h * k, : out_w * k] = (
                grad_windows
                .reshape(n, c, out_h, out_w, k, k)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(n, c, out_h * k, out_w * k)
            )
            return grad_x

        _, argmax, cols_shape, x_shape = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        grad_cols = np.zeros(cols_shape, dtype=grad_out.dtype)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_out.reshape(-1)
        grad_x = F.col2im(grad_cols, (n * c, 1, h, w), k, k, s, 0)
        return grad_x.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling; with ``kernel_size=None`` pools globally."""

    def __init__(self, kernel_size: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        if self.kernel_size is None:
            return x.mean(axis=(2, 3), keepdims=True)
        k = self.kernel_size
        n, c, h, w = x.shape
        out_h, out_w = h // k, w // k
        trimmed = x[:, :, : out_h * k, : out_w * k]
        return trimmed.reshape(n, c, out_h, k, out_w, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        if self.kernel_size is None:
            return np.broadcast_to(grad_out / (h * w), self._x_shape).copy()
        k = self.kernel_size
        grad_x = np.zeros(self._x_shape, dtype=grad_out.dtype)
        expanded = np.repeat(np.repeat(grad_out, k, axis=2), k, axis=3) / (k * k)
        grad_x[:, :, : expanded.shape[2], : expanded.shape[3]] = expanded
        return grad_x


class Flatten(Module):
    """Flatten ``(N, C, H, W)`` activations into ``(N, C*H*W)`` rows."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode.

    The mask RNG is owned by the layer so worker-side training remains
    reproducible under an explicit seed.
    """

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
