"""Module base class and the :class:`Sequential` container.

The contract is intentionally close to (a tiny subset of) ``torch.nn``:
modules own named parameter arrays and gradient arrays, can be walked
recursively, and expose ``state_dict`` / ``load_state_dict`` for the
parameter-server exchange format used throughout :mod:`repro.fl`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.dtype import get_default_dtype


class Module:
    """Base class for all neural-network layers and containers.

    Subclasses register parameters with :meth:`add_param` and buffers
    (non-trainable state such as batch-norm running statistics) with
    :meth:`add_buffer`.  Parameters and their gradients are stored as
    plain ``numpy`` arrays in ``self.params`` and ``self.grads``.
    """

    def __init__(self) -> None:
        self.params: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.grads: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._children: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_param(self, name: str, value: np.ndarray) -> None:
        """Register a trainable parameter and its zero-filled gradient."""
        value = np.asarray(value, dtype=get_default_dtype())
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)

    def add_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable buffer (e.g. running statistics)."""
        self.buffers[name] = np.asarray(value, dtype=get_default_dtype())

    def add_child(self, name: str, module: "Module") -> None:
        """Register a sub-module under ``name``."""
        self._children[name] = module

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def children(self) -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(name, module)`` for direct sub-modules."""
        yield from self._children.items()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for this module and all
        descendants, depth first (self first, with an empty name at the
        root when ``prefix`` is empty)."""
        yield prefix, self
        for name, child in self._children.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def leaf_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for child-free modules.

        These are the compute layers -- containers delegate all work to
        their children -- which is what per-layer instrumentation (the
        telemetry profiler) wants to wrap exactly once each.
        """
        for name, module in self.named_modules(prefix):
            if not module._children:
                yield name, module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, array)`` for every parameter."""
        for mod_name, module in self.named_modules(prefix):
            for p_name, value in module.params.items():
                full = f"{mod_name}.{p_name}" if mod_name else p_name
                yield full, value

    def named_grads(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, array)`` for every gradient."""
        for mod_name, module in self.named_modules(prefix):
            for g_name, value in module.grads.items():
                full = f"{mod_name}.{g_name}" if mod_name else g_name
                yield full, value

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, array)`` for every buffer."""
        for mod_name, module in self.named_modules(prefix):
            for b_name, value in module.buffers.items():
                full = f"{mod_name}.{b_name}" if mod_name else b_name
                yield full, value

    # ------------------------------------------------------------------
    # state exchange
    # ------------------------------------------------------------------
    def state_dict(self, include_buffers: bool = True) -> Dict[str, np.ndarray]:
        """Return a copy of all parameters (and optionally buffers).

        The returned mapping is the canonical exchange format between
        workers and the parameter server.
        """
        state = {name: value.copy() for name, value in self.named_parameters()}
        if include_buffers:
            state.update(
                {name: value.copy() for name, value in self.named_buffers()}
            )
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters/buffers from ``state`` (copies the arrays).

        With ``strict=True`` every expected entry must be present and
        shape-compatible; otherwise missing entries are skipped.
        """
        for mod_name, module in self.named_modules():
            for p_name in module.params:
                full = f"{mod_name}.{p_name}" if mod_name else p_name
                if full not in state:
                    if strict:
                        raise KeyError(f"missing parameter {full!r} in state dict")
                    continue
                incoming = np.asarray(state[full], dtype=get_default_dtype())
                if incoming.shape != module.params[p_name].shape:
                    raise ValueError(
                        f"shape mismatch for {full!r}: expected "
                        f"{module.params[p_name].shape}, got {incoming.shape}"
                    )
                module.params[p_name] = incoming.copy()
                module.grads[p_name] = np.zeros_like(incoming)
            for b_name in module.buffers:
                full = f"{mod_name}.{b_name}" if mod_name else b_name
                if full in state:
                    module.buffers[b_name] = np.asarray(
                        state[full], dtype=get_default_dtype()
                    ).copy()

    # ------------------------------------------------------------------
    # training mode / gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch this module and all descendants into training mode."""
        for _, module in self.named_modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module and all descendants into evaluation mode."""
        for _, module in self.named_modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Reset all accumulated gradients to zero."""
        for _, module in self.named_modules():
            for name in module.grads:
                module.grads[name].fill(0.0)

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(value.size for _, value in self.named_parameters()))

    # ------------------------------------------------------------------
    # computation (to be provided by subclasses)
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of layers executed in order.

    Layers may be passed positionally (auto-named ``"0"``, ``"1"``, ...)
    or as ``(name, layer)`` pairs, which the model zoo uses so that
    pruning plans can refer to stable layer names.
    """

    def __init__(self, *layers) -> None:
        super().__init__()
        for index, entry in enumerate(layers):
            if isinstance(entry, tuple):
                name, layer = entry
            else:
                name, layer = str(index), entry
            if not isinstance(layer, Module):
                raise TypeError(f"layer {name!r} is not a Module: {layer!r}")
            self.add_child(name, layer)

    @property
    def layers(self) -> List[Module]:
        """The contained layers, in execution order."""
        return list(self._children.values())

    @property
    def layer_names(self) -> List[str]:
        """Names of the contained layers, in execution order."""
        return list(self._children.keys())

    def get(self, name: str) -> Module:
        """Return the direct child layer called ``name``."""
        return self._children[name]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._children.values():
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(list(self._children.values())):
            grad_out = layer.backward(grad_out)
        return grad_out
