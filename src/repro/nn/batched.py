"""Vectorised cohort training: one forward/backward per cohort step.

A *cohort* is a set of workers that received the same pruned sub-model
(same :class:`~repro.pruning.plan.PruningPlan`, same dispatched state).
Training them one by one repeats identical-shape matmuls ``M`` times per
step; this module instead stacks the ``M`` member shards into batched
tensors and runs each layer **once** per step over a member-major
``(M * B, ...)`` activation block.

The stacked computation is *specified to be bitwise identical* to the
per-member reference path (the cohort differential in ``repro verify``
pins this at 0 ULPs).  The equivalences it relies on:

- per-sample layers (ReLU, pooling, Flatten, im2col/col2im) act row- or
  sample-wise, so running them on the stacked block is literally the
  same arithmetic per member slice;
- NumPy's batched matmul ``(M, B, I) @ (M, I, O)`` computes each
  ``(B, I) @ (I, O)`` slice with the same kernel as the 2-D call, so
  stacked Linear/Conv2d forward/backward products match per-member
  products bit for bit;
- float scalars (``lr``, ``momentum``, clip scales) are applied
  elementwise, and the clipping norm is accumulated per member in the
  exact same python-float order the per-member optimiser uses.

Members share weights only at dispatch: after the first step their
parameters diverge (different local batches), hence every Linear/Conv2d
carries *stacked per-member* weights of shape ``(M, ...)``.

Unsupported architectures (anything with cross-sample statistics such
as BatchNorm2d, RNG-bearing layers such as Dropout, or recurrent cells)
are rejected by :func:`supports_cohort_training`; callers fall back to
the per-member path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.loss import softmax
from repro.nn.module import Module, Sequential

__all__ = ["supports_cohort_training", "train_cohort"]

#: layers with no parameters and strictly per-sample semantics: they run
#: unchanged on the stacked ``(M * B, ...)`` activation block
_STATELESS_TYPES = (ReLU, MaxPool2d, AvgPool2d, Flatten)


def supports_cohort_training(model: Module) -> bool:
    """True iff ``model`` can be trained with the stacked cohort path.

    Requires a flat :class:`Sequential` whose layers are exactly
    ``Linear``/``Conv2d`` (stacked weights) or per-sample stateless
    layers.  Exact type checks on purpose: a subclass may override
    ``forward`` with semantics the batched formulas do not replicate.
    """
    if type(model) is not Sequential:
        return False
    for layer in model.layers:
        if layer._children:
            return False
        if type(layer) not in (Linear, Conv2d) + _STATELESS_TYPES:
            return False
    return True


def _fresh_stateless(layer: Module) -> Module:
    """Clone a stateless layer so cohort runs never disturb the
    template's forward caches."""
    if type(layer) is ReLU:
        return ReLU()
    if type(layer) is MaxPool2d:
        return MaxPool2d(layer.kernel_size, layer.stride)
    if type(layer) is AvgPool2d:
        return AvgPool2d(layer.kernel_size)
    if type(layer) is Flatten:
        return Flatten()
    raise TypeError(f"not a supported stateless layer: {type(layer)!r}")


class _StackedLinear:
    """``M`` independent Linear layers as one batched computation."""

    def __init__(self, name: str, weight: np.ndarray, bias: np.ndarray,
                 members: int) -> None:
        self.name = name
        self.members = members
        self.params = {
            "weight": np.repeat(weight[None], members, axis=0),
            "bias": np.repeat(bias[None], members, axis=0),
        }
        self.grads = {
            "weight": np.zeros_like(self.params["weight"]),
            "bias": np.zeros_like(self.params["bias"]),
        }
        self._x3: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        m = self.members
        x3 = x.reshape(m, -1, x.shape[-1])
        self._x3 = x3
        out = x3 @ self.params["weight"].transpose(0, 2, 1)
        out = out + self.params["bias"][:, None, :]
        return out.reshape(-1, out.shape[-1])

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x3 is None:
            raise RuntimeError("backward called before forward")
        m = self.members
        g3 = grad_out.reshape(m, -1, grad_out.shape[-1])
        # one backward per step: write the fresh gradients in place
        # (identical values to zero + accumulate, no temporaries)
        np.matmul(g3.transpose(0, 2, 1), self._x3,
                  out=self.grads["weight"])
        np.sum(g3, axis=1, out=self.grads["bias"])
        dx = g3 @ self.params["weight"]
        return dx.reshape(-1, dx.shape[-1])


class _StackedConv2d:
    """``M`` independent Conv2d layers as one batched computation.

    im2col/col2im are per-sample, so one lowering of the stacked
    ``(M * B, C, H, W)`` block yields every member's patch rows in
    member-major order; only the weight products need batching.
    """

    def __init__(self, name: str, template: Conv2d, weight: np.ndarray,
                 bias: np.ndarray, members: int) -> None:
        self.name = name
        self.members = members
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.stride = template.stride
        self.padding = template.padding
        self.requires_input_grad = template.requires_input_grad
        self.params = {
            "weight": np.repeat(weight[None], members, axis=0),
            "bias": np.repeat(bias[None], members, axis=0),
        }
        self.grads = {
            "weight": np.zeros_like(self.params["weight"]),
            "bias": np.zeros_like(self.params["bias"]),
        }
        self._cols3: Optional[np.ndarray] = None
        self._x_shape: Optional[tuple] = None

    def _w_mat3(self) -> np.ndarray:
        m = self.members
        return self.params["weight"].reshape(m, self.out_channels, -1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        m = self.members
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)

        cols = F.im2col(x, k, k, s, p)
        cols3 = cols.reshape(m, -1, cols.shape[-1])
        self._cols3 = cols3
        self._x_shape = x.shape

        out = cols3 @ self._w_mat3().transpose(0, 2, 1)
        out = out + self.params["bias"][:, None, :]
        return (out.reshape(n, out_h, out_w, self.out_channels)
                .transpose(0, 3, 1, 2))

    def backward(self, grad_out: np.ndarray) -> Optional[np.ndarray]:
        if self._cols3 is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        m = self.members
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_mat = (grad_out.transpose(0, 2, 3, 1)
                    .reshape(-1, self.out_channels))
        g3 = grad_mat.reshape(m, -1, self.out_channels)

        # one backward per step: write fresh gradients straight into the
        # (C-contiguous) grad buffers through reshaped views
        np.matmul(g3.transpose(0, 2, 1), self._cols3,
                  out=self.grads["weight"].reshape(
                      m, self.out_channels, -1))
        np.sum(g3, axis=1, out=self.grads["bias"])

        if not self.requires_input_grad:
            return None
        grad_cols = (g3 @ self._w_mat3()).reshape(grad_mat.shape[0], -1)
        return F.col2im(grad_cols, self._x_shape, k, k, s, p)


def _build_stacked(model: Sequential, init_state: Dict[str, np.ndarray],
                   members: int) -> List[object]:
    """Mirror the template architecture with stacked/cloned layers, all
    members initialised from the shared dispatched state."""
    stacked: List[object] = []
    for name, layer in zip(model.layer_names, model.layers):
        if type(layer) is Linear:
            stacked.append(_StackedLinear(
                name, init_state[f"{name}.weight"],
                init_state[f"{name}.bias"], members,
            ))
        elif type(layer) is Conv2d:
            stacked.append(_StackedConv2d(
                name, layer, init_state[f"{name}.weight"],
                init_state[f"{name}.bias"], members,
            ))
        else:
            clone = _fresh_stateless(layer)
            clone.name = name            # type: ignore[attr-defined]
            stacked.append(clone)
    return stacked


def _param_layers(stacked: Sequence[object]) -> List[object]:
    return [layer for layer in stacked
            if isinstance(layer, (_StackedLinear, _StackedConv2d))]


def train_cohort(model: Sequential, init_state: Dict[str, np.ndarray],
                 iterators: Sequence, tau: int, lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 prox_mu: float = 0.0, clip_norm: Optional[float] = None,
                 anchor: Optional[Dict[str, np.ndarray]] = None,
                 ) -> Tuple[List[Dict[str, np.ndarray]], List[float]]:
    """Train one cohort for ``tau`` steps, one batched pass per step.

    ``model`` is any member's sub-model (architecture template only; it
    is never mutated), ``init_state`` the shared dispatched state and
    ``iterators`` the members' batch iterators, in cohort order.  Every
    iterator is consumed exactly ``tau`` times, in member order per
    step, so each member sees the identical batch sequence the
    per-member path would have drawn.

    Returns the per-member trained state dicts and mean batch losses,
    both in cohort order -- bitwise equal to running
    :meth:`repro.fl.worker.Worker.local_train` per member.
    """
    members = len(iterators)
    if members == 0:
        return [], []
    stacked = _build_stacked(model, init_state, members)
    param_layers = _param_layers(stacked)
    velocity: Dict[int, Dict[str, np.ndarray]] = {}
    anchor_state = anchor if anchor is not None else init_state
    totals = [0.0] * members
    batch: Optional[int] = None

    for _ in range(tau):
        inputs_list, targets_list = [], []
        for iterator in iterators:
            inputs, targets = iterator.next_batch()
            if batch is None:
                batch = inputs.shape[0]
            elif inputs.shape[0] != batch:
                raise ValueError(
                    "cohort members drew unequal batch sizes "
                    f"({inputs.shape[0]} vs {batch}); the caller must "
                    "group members by batch shape"
                )
            inputs_list.append(inputs)
            targets_list.append(targets)
        x = np.concatenate(inputs_list, axis=0)
        targets = np.concatenate(targets_list, axis=0)

        for layer in stacked:
            x = layer.forward(x)

        # --- loss: per-member mean over its own B rows -----------------
        logits = x
        rows = logits.shape[0]
        probs = softmax(logits)
        log_probs = F.log_softmax(logits)
        picked = log_probs[np.arange(rows), targets]
        for index in range(members):
            member_rows = picked[index * batch:(index + 1) * batch]
            totals[index] += float(-member_rows.mean())
        grad = probs.copy()
        grad[np.arange(rows), targets] -= 1.0
        grad /= batch

        # --- backward (layers overwrite their grads: zero_grad +
        # accumulate collapses to a single in-place write per step) ---
        for layer in reversed(stacked):
            grad = layer.backward(grad)
            if grad is None:       # first layer skipped its input grad
                break

        _sgd_step(param_layers, velocity, members, lr, momentum,
                  weight_decay, prox_mu, clip_norm, anchor_state)

    states = []
    for index in range(members):
        state = {}
        for layer in param_layers:
            for name, value in layer.params.items():
                state[f"{layer.name}.{name}"] = value[index].copy()
        states.append(state)
    losses = [total / tau for total in totals]
    return states, losses


def _sgd_step(param_layers: Sequence[object],
              velocity: Dict[int, Dict[str, np.ndarray]], members: int,
              lr: float, momentum: float, weight_decay: float,
              prox_mu: float, clip_norm: Optional[float],
              anchor: Dict[str, np.ndarray]) -> None:
    """One stacked SGD step replicating :class:`repro.nn.optim.SGD`
    (and the FedProx proximal term) in the exact per-member order:
    proximal gradient, then clipping, then decay/momentum/update."""
    if prox_mu > 0.0:
        for layer in param_layers:
            for name, param in layer.params.items():
                ref = anchor.get(f"{layer.name}.{name}")
                if ref is not None and param.shape[1:] == ref.shape:
                    layer.grads[name] += prox_mu * (param - ref[None])

    if clip_norm is not None:
        # per-member squared-norm totals, accumulated in the same
        # parameter order (and python-float addition order) as
        # SGD._apply_clipping
        norms = np.zeros(members, dtype=np.float64)
        for layer in param_layers:
            for name in layer.grads:
                grad = layer.grads[name].astype(np.float64)
                axes = tuple(range(1, grad.ndim))
                norms += (grad ** 2).sum(axis=axes)
        for index in range(members):
            norm = float(norms[index]) ** 0.5
            if norm > clip_norm and norm > 0:
                scale = clip_norm / norm
                for layer in param_layers:
                    for name in layer.grads:
                        layer.grads[name][index] *= scale

    for layer in param_layers:
        for name, param in layer.params.items():
            grad = layer.grads[name]
            if weight_decay:
                grad = grad + weight_decay * param
            if momentum:
                slot = velocity.setdefault(id(layer), {})
                vel = slot.get(name)
                if vel is None or vel.shape != grad.shape:
                    vel = np.zeros_like(grad)
                vel = momentum * vel + grad
                slot[name] = vel
                # vel lives across steps: keep the update out of place
                param -= lr * vel
            else:
                # grad is this layer's scratch buffer (or the decay
                # temporary): scale it in place, then update in place --
                # same float ops as ``param - lr * grad``, no new arrays
                np.multiply(grad, lr, out=grad)
                np.subtract(param, grad, out=param)
