"""SGD-family optimisers.

:class:`SGD` covers the local update every strategy performs;
:class:`ProximalSGD` adds the FedProx proximal term
``(mu/2) * ||w - w_global||^2`` whose gradient is ``mu * (w - w_global)``
— exactly the baseline in Li et al., "Federated Optimization in
Heterogeneous Networks".
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module


class SGD:
    """Stochastic gradient descent with optional momentum, weight decay
    and global-norm gradient clipping (``clip_norm``)."""

    def __init__(self, model: Module, lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def _apply_clipping(self) -> None:
        """Scale all gradients so their global l2 norm <= clip_norm."""
        if self.clip_norm is None:
            return
        total = 0.0
        for _, grad in self.model.named_grads():
            total += float((grad.astype(np.float64) ** 2).sum())
        norm = total ** 0.5
        if norm > self.clip_norm and norm > 0:
            scale = self.clip_norm / norm
            for _, module in self.model.named_modules():
                for name in module.grads:
                    module.grads[name] *= scale

    def step(self) -> None:
        """Apply one update using the gradients accumulated in the model."""
        self._apply_clipping()
        for _, module in self.model.named_modules():
            for name, param in module.params.items():
                grad = module.grads[name]
                if self.weight_decay:
                    grad = grad + self.weight_decay * param
                if self.momentum:
                    slot = self._velocity.setdefault(id(module), {})
                    vel = slot.get(name)
                    if vel is None or vel.shape != grad.shape:
                        vel = np.zeros_like(grad)
                    vel = self.momentum * vel + grad
                    slot[name] = vel
                    grad = vel
                module.params[name] = param - self.lr * grad

    def zero_grad(self) -> None:
        """Clear the model's gradients."""
        self.model.zero_grad()


class ProximalSGD(SGD):
    """SGD with a FedProx proximal term anchored at the round's global model.

    ``set_anchor`` must be called with the global state dict at the start
    of each round; the step then subtracts ``mu * (w - w_anchor)`` in
    addition to the stochastic gradient.
    """

    def __init__(self, model: Module, lr: float, mu: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None) -> None:
        super().__init__(model, lr, momentum, weight_decay,
                         clip_norm=clip_norm)
        if mu < 0:
            raise ValueError(f"proximal coefficient must be non-negative, got {mu}")
        self.mu = mu
        self._anchor: Optional[Dict[str, np.ndarray]] = None

    def set_anchor(self, state: Dict[str, np.ndarray]) -> None:
        """Anchor the proximal term at ``state`` (the global model)."""
        self._anchor = {name: value.copy() for name, value in state.items()}

    def step(self) -> None:
        if self._anchor is not None and self.mu > 0:
            for full_name, _ in self.model.named_parameters():
                anchor = self._anchor.get(full_name)
                if anchor is None:
                    continue
                # locate owning module to add the proximal gradient
                mod_path, _, p_name = full_name.rpartition(".")
                module = self._resolve(mod_path)
                if module.params[p_name].shape == anchor.shape:
                    module.grads[p_name] += self.mu * (
                        module.params[p_name] - anchor
                    )
        super().step()

    def _resolve(self, path: str) -> Module:
        module: Module = self.model
        if path:
            for part in path.split("."):
                module = dict(module.children())[part]
        return module
