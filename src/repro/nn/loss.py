"""Loss functions.

Each loss exposes ``forward(pred, target) -> float`` and
``backward() -> grad_pred``; the gradient is averaged over the batch so
learning rates are batch-size independent, matching the SGD convention
the paper's convergence analysis assumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a ``(N, K)`` logit matrix."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Accepts ``(N, K)`` logits with ``(N,)`` labels; also accepts
    ``(T, B, K)`` sequence logits with ``(T, B)`` labels (used by the
    LSTM language model), which are flattened internally.
    """

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._orig_shape: Optional[tuple] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._orig_shape = logits.shape
        if logits.ndim == 3:
            logits = logits.reshape(-1, logits.shape[-1])
            targets = targets.reshape(-1)
        self._probs = softmax(logits)
        self._targets = targets
        n = logits.shape[0]
        log_probs = F.log_softmax(logits)
        return float(-log_probs[np.arange(n), targets].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        grad /= n
        if self._orig_shape is not None and len(self._orig_shape) == 3:
            grad = grad.reshape(self._orig_shape)
        return grad

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class MSELoss:
    """Mean squared error, mainly for substrate tests."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._diff = pred - target
        return float((self._diff ** 2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def perplexity(cross_entropy: float) -> float:
    """Perplexity = exp(cross entropy), the paper's RNN metric."""
    return float(np.exp(cross_entropy))
