"""Global compute dtype for the NN substrate.

float32 is the default: it halves memory traffic in the im2col
convolution path (the CPU bottleneck) with no effect on any of the
paper's algorithms.  The gradient-check tests switch to float64 for
1e-8-level finite-difference accuracy.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_DTYPE = np.float32


def get_default_dtype() -> np.dtype:
    """The dtype new parameters, buffers and datasets are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the global compute dtype (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported dtype {dtype}")
    _DEFAULT_DTYPE = dtype.type
