"""Evaluation metrics shared by the FL runner and the benchmarks."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy for ``(N, K)`` logits."""
    return float((logits.argmax(axis=1) == targets).mean())


def evaluate_classifier(model: Module, inputs: np.ndarray,
                        targets: np.ndarray,
                        batch_size: int = 256) -> Tuple[float, float]:
    """Return ``(accuracy, mean cross-entropy loss)`` over a test set.

    Runs in evaluation mode (batch-norm uses running statistics,
    dropout is disabled) and restores the previous mode afterwards.
    """
    was_training = model.training
    model.eval()
    criterion = CrossEntropyLoss()
    correct = 0
    total_loss = 0.0
    n = inputs.shape[0]
    for start in range(0, n, batch_size):
        xb = inputs[start:start + batch_size]
        yb = targets[start:start + batch_size]
        logits = model.forward(xb)
        total_loss += criterion(logits, yb) * xb.shape[0]
        correct += int((logits.argmax(axis=1) == yb).sum())
    if was_training:
        model.train()
    return correct / n, total_loss / n


def evaluate_language_model(model: Module, sequences: np.ndarray,
                            targets: np.ndarray) -> Tuple[float, float]:
    """Return ``(perplexity, cross entropy)`` of an LM over id batches.

    ``sequences`` and ``targets`` have shape ``(num_batches, T, B)``.
    """
    was_training = model.training
    model.eval()
    criterion = CrossEntropyLoss()
    total = 0.0
    count = 0
    for seq, tgt in zip(sequences, targets):
        logits = model.forward(seq)
        total += criterion(logits, tgt) * seq.size
        count += seq.size
    if was_training:
        model.train()
    ce = total / count
    return float(np.exp(ce)), ce
