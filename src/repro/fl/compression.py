"""Top-k gradient/update sparsification (the FlexCom baseline's tool).

FlexCom (Li et al., INFOCOM 2021) lets heterogeneous workers compress
their *uploads* to different levels.  We implement magnitude top-k
sparsification of the local model delta with per-worker error feedback
(the standard memory trick that keeps compressed SGD convergent).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def top_k_sparsify(delta: Dict[str, np.ndarray],
                   keep_fraction: float) -> Tuple[Dict[str, np.ndarray], int]:
    """Keep the globally largest ``keep_fraction`` of delta entries.

    Returns the sparsified delta (zeros elsewhere) and the number of
    surviving scalars (what actually crosses the uplink).
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    flat = np.concatenate([value.reshape(-1) for value in delta.values()])
    total = flat.size
    keep = max(1, int(round(total * keep_fraction)))
    if keep >= total:
        return {key: value.copy() for key, value in delta.items()}, total

    threshold = np.partition(np.abs(flat), total - keep)[total - keep]
    sparsified: Dict[str, np.ndarray] = {}
    kept = 0
    for key, value in delta.items():
        mask = np.abs(value) >= threshold
        kept += int(mask.sum())
        sparsified[key] = np.where(mask, value, 0.0)
    return sparsified, kept


class ErrorFeedback:
    """Per-worker error memory for compressed updates.

    ``compensate`` adds the accumulated residual before compression;
    ``update`` stores what the compressor dropped this round.
    """

    def __init__(self) -> None:
        self._memory: Dict[str, np.ndarray] = {}

    def compensate(self, delta: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        if not self._memory:
            return {key: value.copy() for key, value in delta.items()}
        return {
            key: value + self._memory.get(key, 0.0)
            for key, value in delta.items()
        }

    def update(self, compensated: Dict[str, np.ndarray],
               transmitted: Dict[str, np.ndarray]) -> None:
        self._memory = {
            key: compensated[key] - transmitted[key] for key in compensated
        }
