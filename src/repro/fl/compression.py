"""Top-k gradient/update sparsification (the FlexCom baseline's tool).

FlexCom (Li et al., INFOCOM 2021) lets heterogeneous workers compress
their *uploads* to different levels.  We implement magnitude top-k
sparsification of the local model delta with per-worker error feedback
(the standard memory trick that keeps compressed SGD convergent).

Error feedback under **adaptive pruning** needs care: the sub-model a
worker trains changes shape (and which global units each position maps
to) round to round, so keying the residual memory by parameter name in
*sub-model* coordinates either crashes on a shape mismatch or silently
adds mass to the wrong units.  :class:`ErrorFeedback` therefore stores
its memory in **global** coordinates whenever the round's
:class:`~repro.pruning.plan.PruningPlan` is supplied: ``compensate``
gathers the memory through the plan into the current sub-model shape,
and ``update`` scatters the newly dropped mass back, leaving the memory
of currently-pruned units untouched until they are dispatched again.
The plan-less calls keep the legacy fixed-shape behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.pruning.plan import PruningPlan
from repro.pruning.structured import gather_param, scatter_assign_param


def top_k_sparsify(delta: Dict[str, np.ndarray],
                   keep_fraction: float) -> Tuple[Dict[str, np.ndarray], int]:
    """Keep the globally largest ``keep_fraction`` of delta entries.

    Returns the sparsified delta (zeros elsewhere) and the number of
    surviving scalars (what actually crosses the uplink).  Exactly
    ``max(1, round(total * keep_fraction))`` scalars survive: magnitude
    ties at the threshold are broken deterministically by position
    (earliest entry in dict-then-C order wins), so the kept count always
    agrees with the pre-priced upload volume.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    flat = np.concatenate([value.reshape(-1) for value in delta.values()])
    total = flat.size
    keep = max(1, int(round(total * keep_fraction)))
    if keep >= total:
        return {key: value.copy() for key, value in delta.items()}, total

    abs_flat = np.abs(flat)
    threshold = np.partition(abs_flat, total - keep)[total - keep]
    keep_mask = abs_flat > threshold
    need = keep - int(keep_mask.sum())
    if need > 0:
        # admit exactly `need` threshold-magnitude ties, lowest offset
        # first (np.flatnonzero returns ascending positions)
        ties = np.flatnonzero(abs_flat == threshold)[:need]
        keep_mask[ties] = True

    sparsified: Dict[str, np.ndarray] = {}
    offset = 0
    kept = 0
    for key, value in delta.items():
        mask = keep_mask[offset:offset + value.size].reshape(value.shape)
        offset += value.size
        kept += int(mask.sum())
        sparsified[key] = np.where(mask, value, 0.0)
    return sparsified, kept


class ErrorFeedback:
    """Per-worker error memory for compressed updates.

    ``compensate`` adds the accumulated residual before compression;
    ``update`` stores what the compressor dropped this round.

    When the round's pruning ``plan`` is supplied, the memory lives in
    global coordinates (see the module docstring); ``update`` then also
    needs ``template`` (the global state dict) to size first-touch
    entries.  Without a plan, shapes must stay fixed across rounds.
    """

    def __init__(self) -> None:
        self._memory: Dict[str, np.ndarray] = {}

    def memory_snapshot(self) -> Dict[str, np.ndarray]:
        """Copy of the banked residual memory (global coordinates when a
        plan was ever supplied).  Observational: used by the verification
        subsystem's mass-accounting invariant."""
        return {key: value.copy() for key, value in self._memory.items()}

    def compensate(self, delta: Dict[str, np.ndarray],
                   plan: Optional[PruningPlan] = None,
                   ) -> Dict[str, np.ndarray]:
        if plan is None:
            if not self._memory:
                return {key: value.copy() for key, value in delta.items()}
            return {
                key: value + self._memory.get(key, 0.0)
                for key, value in delta.items()
            }
        mapping = plan.param_names()
        compensated: Dict[str, np.ndarray] = {}
        for key, value in delta.items():
            memory = self._memory.get(key)
            if memory is None:
                compensated[key] = value.copy()
                continue
            info = mapping.get(key)
            if info is None:
                compensated[key] = value + memory
            else:
                layer_name, suffix = info
                compensated[key] = value + gather_param(
                    suffix, plan[layer_name], memory
                )
        return compensated

    def update(self, compensated: Dict[str, np.ndarray],
               transmitted: Dict[str, np.ndarray],
               plan: Optional[PruningPlan] = None,
               template: Optional[Dict[str, np.ndarray]] = None) -> None:
        if plan is None:
            self._memory = {
                key: compensated[key] - transmitted[key] for key in compensated
            }
            return
        mapping = plan.param_names()
        for key in compensated:
            dropped = compensated[key] - transmitted[key]
            info = mapping.get(key)
            if info is None:
                self._memory[key] = dropped
                continue
            layer_name, suffix = info
            memory = self._memory.get(key)
            if memory is None:
                if template is None:
                    raise ValueError(
                        "plan-aware ErrorFeedback.update needs the global "
                        "template to allocate first-touch memory"
                    )
                memory = np.zeros_like(template[key])
                self._memory[key] = memory
            # this round's dispatched positions had their memory consumed
            # by compensate; overwrite them with the freshly dropped mass.
            # Positions pruned this round keep their banked residual.
            scatter_assign_param(memory, suffix, plan[layer_name], dropped)
