"""The parameter server: global model custody.

Aggregation semantics live in :mod:`repro.fl.aggregation` (R2SP / BSP
and their sample-count-weighted variants); the server holds the global
model, keeps the shape template for zero-expansion, and applies
whichever :class:`~repro.fl.aggregation.Aggregator` it is given.

Scheme summary (Section V-D compares the first two):

- **R2SP** (the paper's contribution): each sub-model is recovered
  (zero-expanded) to the global shape, its residual model is added
  back, and the results are averaged -- every parameter either carries
  its trained value or its pre-round global value, so pruned parameters
  survive to be trained in later rounds.
- **BSP**: plain averaging of the recovered sub-models without residual
  recovery; positions that a worker pruned contribute zeros to the
  average, so parameters that were ever pruned shrink towards zero --
  the degradation Fig. 7 shows.
- **Weighted variants** (``r2sp_weighted`` / ``bsp_weighted``): same
  recovery rules, but each participant is weighted by its local sample
  count (renormalised over the round's actual participants) instead of
  ``1/N`` -- the right average under churn- or deadline-induced
  partial participation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fl.aggregation import (
    Aggregator,
    Contribution,
    R2SPAggregator,
    make_aggregator,
)
from repro.nn.module import Module

__all__ = ["Contribution", "ParameterServer"]


class ParameterServer:
    """Holds the global model and applies global aggregation.

    ``aggregator`` sets the default scheme (R2SP when omitted); each
    :meth:`apply` call may override it.
    """

    def __init__(self, model: Module,
                 aggregator: Optional[Aggregator] = None) -> None:
        self.model = model
        self._template = model.state_dict()
        self.aggregator = (
            aggregator if aggregator is not None else R2SPAggregator()
        )

    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    @property
    def template(self) -> Dict[str, np.ndarray]:
        """Shape template captured at construction (values are stale;
        read only shapes/keys from it)."""
        return self._template

    def apply(self, contributions: List[Contribution],
              aggregator: Optional[Aggregator] = None) -> Dict[str, np.ndarray]:
        """Aggregate one round of contributions and update the model.

        Returns the new global state (also loaded into ``self.model``).
        """
        active = aggregator if aggregator is not None else self.aggregator
        new_state = active.aggregate(contributions, self._template)
        self.model.load_state_dict(new_state)
        return self.model.state_dict()

    def aggregate(self, contributions: List[Contribution],
                  scheme: str = "r2sp") -> Dict[str, np.ndarray]:
        """String-dispatch facade kept for pre-engine callers; prefer
        constructing an :class:`~repro.fl.aggregation.Aggregator` and
        calling :meth:`apply`."""
        return self.apply(contributions, make_aggregator(scheme))
