"""The parameter server: global model custody and aggregation schemes.

Two synchronisation schemes are implemented (Section V-D compares them):

- **R2SP** (the paper's contribution): each sub-model is recovered
  (zero-expanded) to the global shape, its residual model is added back,
  and the results are averaged -- every parameter either carries its
  trained value or its pre-round global value, so pruned parameters
  survive to be trained in later rounds.
- **BSP**: plain averaging of the recovered sub-models without residual
  recovery; positions a worker pruned contribute zeros, shrinking
  parameters that were ever pruned -- the degradation Fig. 7 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.pruning.plan import PruningPlan
from repro.pruning.structured import recover_state_dict


@dataclass
class Contribution:
    """One worker's round output, ready for aggregation."""

    worker_id: int
    sub_state: Dict[str, np.ndarray]
    plan: PruningPlan
    residual: Optional[Dict[str, np.ndarray]] = None  # required for R2SP


class ParameterServer:
    """Holds the global model and performs global aggregation."""

    def __init__(self, model: Module) -> None:
        self.model = model
        self._template = model.state_dict()

    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    def aggregate(self, contributions: List[Contribution],
                  scheme: str = "r2sp") -> Dict[str, np.ndarray]:
        """Aggregate one round of contributions and update the model.

        Returns the new global state (also loaded into ``self.model``).
        """
        if not contributions:
            raise ValueError("cannot aggregate an empty contribution set")
        if scheme not in ("r2sp", "bsp"):
            raise ValueError(f"unknown aggregation scheme {scheme!r}")

        template = self._template
        accumulator: Dict[str, np.ndarray] = {
            key: np.zeros_like(value, dtype=np.float64)
            for key, value in template.items()
        }
        for contribution in contributions:
            recovered = recover_state_dict(
                contribution.sub_state, contribution.plan, template
            )
            for key in accumulator:
                accumulator[key] += recovered[key]
            if scheme == "r2sp":
                if contribution.residual is None:
                    raise ValueError(
                        f"R2SP needs a residual model for worker "
                        f"{contribution.worker_id}"
                    )
                for key in accumulator:
                    accumulator[key] += contribution.residual[key]

        count = float(len(contributions))
        new_state = {key: value / count for key, value in accumulator.items()}
        self.model.load_state_dict(new_state)
        return self.model.state_dict()
