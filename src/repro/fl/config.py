"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class FLConfig:
    """All knobs of one federated-training run.

    Defaults follow Section V-A: 10 workers, discount factor 0.95,
    granularity ``theta`` in the recommended ``[0.01, 0.05]`` band.
    """

    # model / task
    model_name: str = "cnn"
    model_kwargs: Dict[str, Any] = field(default_factory=dict)

    # strategy
    strategy: str = "fedmp"
    strategy_kwargs: Dict[str, Any] = field(default_factory=dict)
    sync_scheme: str = "r2sp"  # "r2sp" | "bsp"

    # local training
    local_iterations: int = 5          # tau
    batch_size: int = 16
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    clip_norm: Optional[float] = 5.0

    # stopping criteria (any that is set may stop the run)
    max_rounds: int = 50
    time_budget_s: Optional[float] = None
    target_metric: Optional[float] = None

    # bookkeeping
    eval_every: int = 1
    eval_max_samples: Optional[int] = None
    seed: int = 0
    jitter_sigma: float = 0.08
    deadline_quorum: Optional[float] = None   # e.g. 0.85 enables deadlines
    deadline_multiplier: float = 1.5

    # membership churn (Section V-A: joins/leaves do not affect the
    # workflow); 0 disables churn
    churn_leave_prob: float = 0.0
    churn_rejoin_after: int = 2

    # asynchronous setting (Algorithm 2)
    async_m: Optional[int] = None

    def __post_init__(self) -> None:
        if self.local_iterations <= 0:
            raise ValueError("local_iterations must be positive")
        if self.sync_scheme not in ("r2sp", "bsp"):
            raise ValueError(
                f"sync_scheme must be 'r2sp' or 'bsp', got {self.sync_scheme!r}"
            )
        if self.async_m is not None and self.async_m <= 0:
            raise ValueError("async_m must be positive when set")
