"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class FLConfig:
    """All knobs of one federated-training run.

    Defaults follow Section V-A: 10 workers, discount factor 0.95,
    granularity ``theta`` in the recommended ``[0.01, 0.05]`` band.
    """

    # model / task
    model_name: str = "cnn"
    model_kwargs: Dict[str, Any] = field(default_factory=dict)

    # strategy
    strategy: str = "fedmp"
    strategy_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: aggregation scheme: "r2sp" | "bsp" | "r2sp_weighted" | "bsp_weighted"
    #: (the weighted variants weight participants by local sample count)
    sync_scheme: str = "r2sp"

    # local training
    local_iterations: int = 5          # tau
    batch_size: int = 16
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    clip_norm: Optional[float] = 5.0

    # stopping criteria (any that is set may stop the run)
    max_rounds: int = 50
    time_budget_s: Optional[float] = None
    target_metric: Optional[float] = None

    # hot-loop fast path: per-round dispatch cache (plan/sub-model reuse
    # across same-ratio workers) + scatter-add aggregation with the
    # residual folded from one shared global snapshot.  Bitwise-identical
    # to the dense slow path; disable only for A/B debugging.
    fast_path: bool = True

    # NaN/Inf-poisoned uploads: "raise" rejects the round with a typed
    # PoisonedUpdateError, "skip" drops the offending contribution (and
    # counts it in telemetry), "off" disables the finiteness scan
    nan_policy: str = "raise"

    # execution backend: "serial" trains inline, "process" fans local
    # training out to a persistent process pool behind the wire codec
    # (bitwise-identical results; see repro.runtime)
    executor: str = "serial"
    #: process-pool size; None means one process per CPU, clamped to the
    #: fleet size
    num_procs: Optional[int] = None
    #: device-time emulation: before training, occupy real wall-clock for
    #: ``emulate_device_factor * costs.total_s`` seconds (both executors,
    #: so serial-vs-process comparisons stay fair).  0 disables.  Used by
    #: benchmarks to surface parallel speedup on latency-dominated
    #: workloads; never affects simulated time or training results.
    emulate_device_factor: float = 0.0
    #: contribution wire profile for executor="process": "exact" ships
    #: dense float32 states (bitwise parity with serial), "sparse"
    #: ships top-k moved positions with exact values, "sparse+quantized"
    #: additionally quantizes the shipped deltas (Section III-C).
    #: Ignored by the serial executor (nothing crosses a wire there).
    wire_profile: str = "exact"
    #: top-k keep fraction for the sparse wire profiles
    wire_keep_fraction: float = 0.25
    #: delta code width (bits) for wire_profile="sparse+quantized"
    wire_quantize_bits: int = 8
    #: bound on the executor's shared-memory template store (plan
    #: signatures retained); evictions propagate to child caches
    template_cache_limit: int = 8

    # checkpoint/resume: when checkpoint_dir is set, the engine writes a
    # versioned, atomic checkpoint every checkpoint_every completed
    # rounds (and always at the end of the run), from which
    # Engine/run_federated_training can resume with byte-identical
    # continuation; None disables checkpointing
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1

    # bookkeeping
    eval_every: int = 1
    eval_max_samples: Optional[int] = None
    seed: int = 0
    jitter_sigma: float = 0.08
    deadline_quorum: Optional[float] = None   # e.g. 0.85 enables deadlines
    deadline_multiplier: float = 1.5

    # membership churn (Section V-A: joins/leaves do not affect the
    # workflow); 0 disables churn
    churn_leave_prob: float = 0.0
    churn_rejoin_after: int = 2

    # scheduling: "auto" derives the rule from the legacy knobs below
    # (async_m set -> "async", semi_sync_deadline_s set -> "semi_sync",
    # otherwise "sync"); set explicitly to force one
    scheduler: str = "auto"   # "auto" | "sync" | "async" | "semi_sync"

    # asynchronous setting (Algorithm 2)
    async_m: Optional[int] = None

    # semi-synchronous setting: per-round deadline in simulated seconds
    # (aggregate whoever arrived by then, carry stragglers over)
    semi_sync_deadline_s: Optional[float] = None

    # fleet scale: sample this many clients per round from the present
    # workers (seeded via the engine's master RNG, after all existing
    # streams, so unsampled runs keep their bit-exact traces); None
    # trains the whole present fleet every round
    clients_per_round: Optional[int] = None

    # cohort-sharded rounds: workers that share a (pruning-plan, cluster)
    # bucket are dispatched/trained/aggregated as one cohort.  "auto"
    # enables cohorts whenever the fast path can share sub-models,
    # "on"/"off" force the choice.  "off" is the per-member reference
    # path the cohort differential compares against.
    cohort_rounds: str = "auto"   # "auto" | "on" | "off"

    # history granularity: "member" keeps per-worker ratios/completion
    # times in every RoundRecord (O(fleet) JSON), "cohort" stores
    # per-cohort aggregates instead; "auto" picks member below
    # _HISTORY_DETAIL_AUTO_FLEET workers and cohort at fleet scale
    history_detail: str = "auto"   # "auto" | "member" | "cohort"

    _SYNC_SCHEMES = ("r2sp", "bsp", "r2sp_weighted", "bsp_weighted")
    _SCHEDULERS = ("auto", "sync", "async", "semi_sync")
    _NAN_POLICIES = ("raise", "skip", "off")
    _EXECUTORS = ("serial", "process")
    _WIRE_PROFILES = ("exact", "sparse", "sparse+quantized")
    _COHORT_MODES = ("auto", "on", "off")
    _HISTORY_DETAILS = ("auto", "member", "cohort")
    #: fleet size at which history_detail="auto" switches to cohort
    _HISTORY_DETAIL_AUTO_FLEET = 1024

    def __post_init__(self) -> None:
        if self.local_iterations <= 0:
            raise ValueError("local_iterations must be positive")
        if self.executor not in self._EXECUTORS:
            raise ValueError(
                f"executor must be one of {self._EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.num_procs is not None and self.num_procs <= 0:
            raise ValueError("num_procs must be positive when set")
        if self.emulate_device_factor < 0:
            raise ValueError("emulate_device_factor must be >= 0")
        if self.wire_profile not in self._WIRE_PROFILES:
            raise ValueError(
                f"wire_profile must be one of {self._WIRE_PROFILES}, "
                f"got {self.wire_profile!r}"
            )
        if not 0.0 < self.wire_keep_fraction <= 1.0:
            raise ValueError(
                f"wire_keep_fraction must be in (0, 1], "
                f"got {self.wire_keep_fraction}"
            )
        if not 2 <= self.wire_quantize_bits <= 16:
            raise ValueError(
                f"wire_quantize_bits must be in [2, 16], "
                f"got {self.wire_quantize_bits}"
            )
        if self.template_cache_limit < 1:
            raise ValueError(
                f"template_cache_limit must be >= 1, "
                f"got {self.template_cache_limit}"
            )
        if self.nan_policy not in self._NAN_POLICIES:
            raise ValueError(
                f"nan_policy must be one of {self._NAN_POLICIES}, "
                f"got {self.nan_policy!r}"
            )
        if self.sync_scheme not in self._SYNC_SCHEMES:
            raise ValueError(
                f"sync_scheme must be one of {self._SYNC_SCHEMES}, "
                f"got {self.sync_scheme!r}"
            )
        if self.scheduler not in self._SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {self._SCHEDULERS}, "
                f"got {self.scheduler!r}"
            )
        if self.async_m is not None and self.async_m <= 0:
            raise ValueError("async_m must be positive when set")
        if (self.semi_sync_deadline_s is not None
                and self.semi_sync_deadline_s <= 0):
            raise ValueError("semi_sync_deadline_s must be positive when set")
        if self.scheduler == "async" and self.async_m is None:
            raise ValueError("scheduler='async' requires async_m")
        if (self.scheduler == "semi_sync"
                and self.semi_sync_deadline_s is None):
            raise ValueError(
                "scheduler='semi_sync' requires semi_sync_deadline_s"
            )
        if self.scheduler == "sync" and self.async_m is not None:
            raise ValueError("scheduler='sync' conflicts with async_m")
        if self.async_m is not None and self.semi_sync_deadline_s is not None:
            raise ValueError(
                "async_m and semi_sync_deadline_s are mutually exclusive"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.clients_per_round is not None and self.clients_per_round <= 0:
            raise ValueError("clients_per_round must be positive when set")
        if self.cohort_rounds not in self._COHORT_MODES:
            raise ValueError(
                f"cohort_rounds must be one of {self._COHORT_MODES}, "
                f"got {self.cohort_rounds!r}"
            )
        if self.history_detail not in self._HISTORY_DETAILS:
            raise ValueError(
                f"history_detail must be one of {self._HISTORY_DETAILS}, "
                f"got {self.history_detail!r}"
            )
