"""Task adapters: one interface for all five of the paper's workloads.

A task bundles a dataset with the matching model family and the pruning
machinery that applies to it (structured l1 pruning for CNNs, ISS
pruning for the LSTM), so the runners in :mod:`repro.fl.runner` never
special-case the workload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.data.loader import BatchIterator
from repro.data.partition import partition_dataset
from repro.data.synthetic import ImageDataset
from repro.data.text import TextDataset
from repro.models import build_model, count_model_flops
from repro.nn.metrics import evaluate_classifier, evaluate_language_model
from repro.nn.module import Module
from repro.pruning import (
    build_iss_plan,
    build_pruning_plan,
    extract_iss_submodel,
    extract_submodel,
)
from repro.pruning.plan import PruningPlan


class ClassificationTask:
    """Image classification (CNN / AlexNet / VGG-19 / ResNet-50 tasks)."""

    higher_is_better = True
    metric_name = "accuracy"
    #: iterator family a pool child must rebuild (see repro.runtime.pool)
    iterator_kind = "batch"

    def __init__(self, dataset: ImageDataset, model_name: str,
                 model_kwargs: Optional[Dict[str, Any]] = None,
                 non_iid_level: float = 0.0) -> None:
        self.dataset = dataset
        self.model_name = model_name
        self.model_kwargs = dict(model_kwargs or {})
        self.model_kwargs.setdefault("num_classes", dataset.num_classes)
        self.model_kwargs.setdefault("input_shape", dataset.input_shape)
        self.non_iid_level = non_iid_level

    @property
    def name(self) -> str:
        return f"{self.model_name}/{self.dataset.name}"

    def build_model(self, rng: np.random.Generator) -> Module:
        return build_model(self.model_name, rng=rng, **self.model_kwargs)

    def build_plan(self, model: Module, ratio: float) -> PruningPlan:
        return build_pruning_plan(model, ratio)

    def extract(self, model: Module, plan: PruningPlan,
                rng: np.random.Generator) -> Module:
        return extract_submodel(model, plan, rng=rng)

    def partition(self, num_workers: int,
                  rng: np.random.Generator) -> List[Tuple[np.ndarray, np.ndarray]]:
        parts = partition_dataset(self.dataset, num_workers, rng,
                                  self.non_iid_level)
        return [
            (self.dataset.train_x[idx], self.dataset.train_y[idx])
            for idx in parts
        ]

    def make_iterator(self, shard: Tuple[np.ndarray, np.ndarray],
                      batch_size: int,
                      rng: np.random.Generator) -> BatchIterator:
        inputs, targets = shard
        return BatchIterator(inputs, targets, batch_size, rng=rng)

    def evaluate(self, model: Module,
                 max_samples: Optional[int] = None) -> Tuple[float, float]:
        xs, ys = self.dataset.test_x, self.dataset.test_y
        if max_samples is not None and xs.shape[0] > max_samples:
            xs, ys = xs[:max_samples], ys[:max_samples]
        return evaluate_classifier(model, xs, ys)

    def count_flops(self, model: Module) -> float:
        return float(count_model_flops(model))


class _SequenceBatchIterator:
    """Samples one ``(T, B)`` sequence batch per local iteration."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray,
                 rng: np.random.Generator) -> None:
        if inputs.shape[0] == 0:
            raise ValueError("worker received an empty sequence shard")
        self.inputs = inputs
        self.targets = targets
        self.rng = rng

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        index = int(self.rng.integers(self.inputs.shape[0]))
        return self.inputs[index], self.targets[index]


class LanguageModelTask:
    """LSTM language modelling on the synthetic PTB corpus (Table IV).

    ``metric`` is the test perplexity, so lower is better.
    """

    higher_is_better = False
    metric_name = "perplexity"
    #: iterator family a pool child must rebuild (see repro.runtime.pool)
    iterator_kind = "sequence"

    def __init__(self, dataset: TextDataset, seq_len: int = 20,
                 lm_batch_size: int = 8,
                 model_kwargs: Optional[Dict[str, Any]] = None) -> None:
        self.dataset = dataset
        self.seq_len = seq_len
        self.lm_batch_size = lm_batch_size
        self.model_kwargs = dict(model_kwargs or {})
        self.model_kwargs.setdefault("vocab_size", dataset.vocab_size)
        self._test_batches = dataset.batchify("test", seq_len, lm_batch_size)

    @property
    def name(self) -> str:
        return f"lstm_lm/{self.dataset.name}"

    def build_model(self, rng: np.random.Generator) -> Module:
        return build_model("lstm_lm", rng=rng, **self.model_kwargs)

    def build_plan(self, model: Module, ratio: float) -> PruningPlan:
        return build_iss_plan(model, ratio)

    def extract(self, model: Module, plan: PruningPlan,
                rng: np.random.Generator) -> Module:
        return extract_iss_submodel(model, plan, rng=rng)

    def partition(self, num_workers: int,
                  rng: np.random.Generator) -> List[Tuple[np.ndarray, np.ndarray]]:
        inputs, targets = self.dataset.batchify(
            "train", self.seq_len, self.lm_batch_size
        )
        order = rng.permutation(inputs.shape[0])
        shards = np.array_split(order, num_workers)
        return [(inputs[idx], targets[idx]) for idx in shards]

    def make_iterator(self, shard: Tuple[np.ndarray, np.ndarray],
                      batch_size: int,
                      rng: np.random.Generator) -> _SequenceBatchIterator:
        inputs, targets = shard
        return _SequenceBatchIterator(inputs, targets, rng)

    def evaluate(self, model: Module,
                 max_samples: Optional[int] = None) -> Tuple[float, float]:
        inputs, targets = self._test_batches
        if max_samples is not None and inputs.shape[0] > max_samples:
            inputs, targets = inputs[:max_samples], targets[:max_samples]
        return evaluate_language_model(model, inputs, targets)

    def count_flops(self, model: Module) -> float:
        # one "sample" = one (T, B) sequence batch
        return float(
            count_model_flops(model, seq_len=self.seq_len) * self.lm_batch_size
        )
