"""The round engine: shared dispatch/train/record plumbing.

An :class:`Engine` owns everything one federated experiment needs --
the global model and parameter server, the worker pool, the strategy,
the simulated clock, the aggregator and the hook list -- and exposes
the per-round building blocks (``dispatch``, ``train``, ``aggregate``,
``evaluate``, ``finish_round``).  It deliberately contains **no round
loop**: a :mod:`repro.fl.schedulers` scheduler decides *when* to call
the blocks (barrier, first-``m`` arrivals, or per-round deadline), so
new synchronisation rules are one scheduler file, not a runner fork.

RNG discipline: every random stream is derived from ``config.seed`` in
a fixed order at construction time, and the building blocks consume
their streams in call order -- two runs with the same config, task and
devices are bitwise identical, whichever scheduler drives them.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.aggregation import Aggregator, Contribution, make_aggregator
from repro.fl.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
)
from repro.fl.cohort import Cohort
from repro.fl.compression import ErrorFeedback, top_k_sparsify
from repro.fl.config import FLConfig
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.hooks import HookList, RoundHook
from repro.fl.server import ParameterServer
from repro.fl.strategies import Strategy, make_strategy
from repro.fl.worker import Worker
from repro.nn.batched import supports_cohort_training
from repro.pruning.masks import residual_state_dict
from repro.pruning.plan import plan_signature_digest
from repro.runtime.codec import TrainHyper
from repro.runtime.executor import (
    CohortTrainRequest,
    Executor,
    TrainRequest,
    make_executor,
)
from repro.runtime.pool import WorkerSpec
from repro.simulation.clock import SimulationClock
from repro.simulation.device import DeviceProfile
from repro.simulation.faults import DeadlinePolicy, simulate_membership_churn
from repro.simulation.timing import RoundCosts
from repro.telemetry.runtime import DISABLED_TELEMETRY, Telemetry


@dataclass
class Dispatch:
    """Everything the PS remembers about one dispatched sub-model."""

    worker_id: int
    ratio: float
    plan: object
    submodel: object
    dispatched_state: Dict[str, np.ndarray]
    residual: Optional[Dict[str, np.ndarray]]
    tau: int
    costs: RoundCosts
    dispatch_time: float = 0.0
    download_params: int = 0
    upload_params: int = 0
    #: frozen pre-round global state shared by the round's dispatches;
    #: set on the fast path instead of materialising ``residual``
    global_state: Optional[Dict[str, np.ndarray]] = None
    #: local shard size, carried so aggregation-time weighting never
    #: re-resolves the full worker table
    num_samples: int = 1
    #: owning :class:`~repro.fl.cohort.Cohort` on the cohort path, in
    #: which case ``submodel`` is None (the cohort template is shared)
    cohort: Optional[Cohort] = None
    #: raw trained sub-model state (pre upload-compression), recorded by
    #: ``train_all`` for observer hooks and invariant checks
    trained_state: Optional[Dict[str, np.ndarray]] = None

    @property
    def finish_time(self) -> float:
        return self.dispatch_time + self.costs.total_s


class Engine:
    """Shared state and building blocks of one experiment.

    Parameters
    ----------
    task:
        A :mod:`repro.fl.tasks` adapter.
    devices:
        Heterogeneous device profiles, one worker per device.
    config:
        The run configuration; selects strategy, aggregation scheme and
        stopping criteria.
    aggregator:
        Optional explicit :class:`~repro.fl.aggregation.Aggregator`;
        defaults to the one named by ``config.sync_scheme``.
    hooks:
        Optional iterable of :class:`~repro.fl.hooks.RoundHook`
        observers threaded through every round.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle; the engine
        and its scheduler open spans (``round`` / ``decide`` / ``prune``
        / ``dispatch`` / ``local_train`` / ``aggregate`` / ``eval``)
        against it.  Defaults to the shared disabled bundle, whose
        instruments are all no-ops.
    """

    def __init__(self, task, devices: Sequence[DeviceProfile],
                 config: FLConfig,
                 aggregator: Optional[Aggregator] = None,
                 hooks: Optional[Iterable[RoundHook]] = None,
                 telemetry: Optional[Telemetry] = None,
                 executor: Optional[Executor] = None,
                 restore: Optional[Checkpoint] = None,
                 checkpoint_meta: Optional[dict] = None) -> None:
        self.task = task
        self.config = config
        #: caller-supplied context stored in every checkpoint (e.g. how
        #: to rebuild the task/devices for a fresh-process resume)
        self.checkpoint_meta = checkpoint_meta
        #: pending resume target set by :meth:`_apply_restore`, consumed
        #: once by the scheduler via :meth:`take_resume`
        self._resume: Optional[Dict[str, object]] = None
        #: service-mode seam: when set, :meth:`present_workers` asks
        #: this callable (round_index -> worker ids) instead of the
        #: churn simulation; consumes no engine RNG either way
        self.membership_provider: Optional[
            Callable[[int], List[int]]] = None
        #: service-mode seam: extra state stored under the checkpoint's
        #: ``service`` key (fleet roster, protocol counters)
        self.checkpoint_extra_provider: Optional[Callable[[], dict]] = None
        #: the restored checkpoint's ``service`` payload, if any; the
        #: service rebuilds its roster from it after ``Engine.restore``
        self.restored_service_state: Optional[dict] = None
        #: cooperative-stop flag (SIGTERM drain): schedulers finish the
        #: round in flight, checkpoint with the true next round (NOT
        #: the early-stop pin), and return
        self._interrupt = False
        self.telemetry = (
            telemetry if telemetry is not None else DISABLED_TELEMETRY
        )
        self.master_rng = np.random.default_rng(config.seed)

        self.model = task.build_model(
            np.random.default_rng(self.master_rng.integers(2 ** 31))
        )
        self.aggregator = (
            aggregator if aggregator is not None
            else make_aggregator(config.sync_scheme,
                                 nan_policy=config.nan_policy)
        )
        self.aggregator.metrics = self.telemetry.metrics
        self.server = ParameterServer(self.model, aggregator=self.aggregator)
        self.hooks = HookList(hooks)

        shard_rng = np.random.default_rng(self.master_rng.integers(2 ** 31))
        shards = task.partition(len(devices), shard_rng)
        self.workers: Dict[int, Worker] = {}
        self.worker_specs: List[WorkerSpec] = []
        for device, shard in zip(devices, shards):
            # the seed is recorded (not just the generator) so a pool
            # child can replay the exact construction sequence below
            worker_seed = int(self.master_rng.integers(2 ** 31))
            worker_rng = np.random.default_rng(worker_seed)
            iterator = task.make_iterator(shard, config.batch_size, worker_rng)
            self.workers[device.device_id] = Worker(
                device.device_id, iterator, device,
                jitter_sigma=config.jitter_sigma, rng=worker_rng,
                num_samples=int(shard[0].shape[0]),
            )
            self.worker_specs.append(WorkerSpec(
                worker_id=device.device_id, seed=worker_seed,
                shard_inputs=shard[0], shard_targets=shard[1],
                batch_size=config.batch_size, device=device,
                jitter_sigma=config.jitter_sigma,
                num_samples=int(shard[0].shape[0]),
                iterator_kind=getattr(task, "iterator_kind", "batch"),
                task_name=task.name,
            ))

        self.worker_ids = sorted(self.workers)
        self.strategy: Strategy = make_strategy(
            config.strategy, self.worker_ids, config,
            rng=np.random.default_rng(self.master_rng.integers(2 ** 31)),
            devices=devices,
        )
        if getattr(self.strategy, "needs_calibration", False):
            self.strategy.calibrate(
                devices, task.count_flops(self.model),
                self.model.num_parameters(),
            )
        self.extract_rng = np.random.default_rng(self.master_rng.integers(2 ** 31))

        # Dispatch fast path: within one cache epoch (between two
        # aggregations) the global model is frozen, so same-ratio workers
        # share one plan / extracted sub-model and the round needs at most
        # one global-state snapshot.  Sub-model sharing is only exact when
        # extraction consumes no randomness (no rng-bearing modules such
        # as Dropout, whose per-clone seed draw must stay per-worker).
        self.fast_path = bool(getattr(config, "fast_path", True))
        self._has_rng_modules = any(
            getattr(module, "rng", None) is not None
            for _, module in self.model.named_modules()
        )
        self._share_submodels = self.fast_path and not self._has_rng_modules
        self._plan_cache: Dict[float, object] = {}
        self._submodel_cache: Dict[float, Tuple[object, Dict[str, np.ndarray]]] = {}
        self._round_state: Optional[Dict[str, np.ndarray]] = None

        self.clock = SimulationClock()
        self.history = TrainingHistory(
            strategy=config.strategy, model_name=task.name,
            higher_is_better=task.higher_is_better,
        )
        self.error_feedback: Dict[int, ErrorFeedback] = {
            wid: ErrorFeedback() for wid in self.worker_ids
        }
        self.deadline_policy = (
            DeadlinePolicy(config.deadline_quorum, config.deadline_multiplier)
            if config.deadline_quorum is not None else None
        )
        self._prev_train_loss: Optional[float] = None
        self._churn_rng = np.random.default_rng(
            self.master_rng.integers(2 ** 31)
        )
        # client sampling draws from its own stream, derived after every
        # pre-existing one so unsampled runs keep their bit-exact traces
        self._sampling_rng = np.random.default_rng(
            self.master_rng.integers(2 ** 31)
        )

        # Cohort-sharded rounds: bucket sampled workers by
        # (ratio, cluster) and dispatch/train/aggregate per bucket.
        # Requires the sub-model-sharing fast path (one template serves
        # the whole cohort), so "auto" follows _share_submodels.
        if config.cohort_rounds == "on" and not self._share_submodels:
            raise ValueError(
                "cohort_rounds='on' requires the sub-model-sharing fast "
                "path (fast_path=True and no rng-bearing modules)"
            )
        self.cohort_mode = (
            self._share_submodels and config.cohort_rounds != "off"
        )
        self.history_detail = config.history_detail
        if self.history_detail == "auto":
            self.history_detail = (
                "member"
                if len(devices) < FLConfig._HISTORY_DETAIL_AUTO_FLEET
                else "cohort"
            )
        self.checkpointer: Optional[CheckpointManager] = (
            CheckpointManager(config.checkpoint_dir,
                              every=config.checkpoint_every)
            if config.checkpoint_dir is not None else None
        )
        # a restore is applied after all normal construction (so every
        # stream exists to be overwritten) but BEFORE hooks attach and
        # the executor forks: attach must see the restored strategy, and
        # pool children must spawn from specs carrying restored runtime
        # state
        if restore is not None:
            self._apply_restore(restore)
        self.hooks.attach(self)
        # the execution seam is built last: with the process executor the
        # pool forks here, after every RNG stream above has been derived
        self.executor: Executor = (
            executor if executor is not None
            else make_executor(
                config, workers=self.workers, specs=self.worker_specs,
                telemetry=self.telemetry,
                pickle_submodels=self._has_rng_modules,
            )
        )

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    @classmethod
    def restore(cls, task, devices: Sequence[DeviceProfile],
                checkpoint: Checkpoint, **kwargs) -> "Engine":
        """Build an engine resumed from ``checkpoint``.

        ``task`` and ``devices`` must be reconstructed the same way as
        for the original run (the checkpoint's ``meta`` records how);
        the checkpoint supplies the config and every piece of mutable
        state.  The scheduler then picks the run up at
        ``checkpoint.next_round`` via :meth:`take_resume`.
        """
        return cls(task, devices, checkpoint.config, restore=checkpoint,
                   **kwargs)

    def _apply_restore(self, checkpoint: Checkpoint) -> None:
        payload = checkpoint.payload
        if payload["config"] != self.config:
            raise CheckpointError(
                "checkpoint config does not match the engine config; "
                "resume with the checkpoint's own config "
                "(Engine.restore passes it through automatically)"
            )
        saved_workers: Dict[int, Dict[str, object]] = payload["workers"]
        if set(saved_workers) != set(self.worker_ids):
            raise CheckpointError(
                f"checkpoint covers workers {sorted(saved_workers)} but "
                f"the rebuilt fleet has {self.worker_ids}"
            )

        self.master_rng.bit_generator.state = payload["rng"]["master"]
        self.extract_rng.bit_generator.state = payload["rng"]["extract"]
        self._churn_rng.bit_generator.state = payload["rng"]["churn"]
        self._sampling_rng.bit_generator.state = payload["rng"]["sampling"]

        self.model.load_state_dict(payload["model_state"])
        modules = dict(self.model.named_modules())
        for name, rng_state in payload["module_rngs"].items():
            module = modules.get(name)
            if module is None or getattr(module, "rng", None) is None:
                raise CheckpointError(
                    f"checkpoint carries an RNG state for module "
                    f"{name!r} that the rebuilt model does not have"
                )
            module.rng.bit_generator.state = rng_state

        specs_by_id = {spec.worker_id: spec for spec in self.worker_specs}
        for worker_id, state in saved_workers.items():
            self.workers[worker_id].restore_runtime_state(state)
            # the spec carries the state too, so a process pool spawned
            # below respawns children at the captured stream position
            specs_by_id[worker_id].runtime_state = state

        self.strategy = payload["strategy"]
        self.error_feedback = payload["error_feedback"]
        self.clock = payload["clock"]
        self.history = payload["history"]
        self._prev_train_loss = payload["prev_train_loss"]
        self._plan_cache = payload["plan_cache"]
        self._submodel_cache = payload["submodel_cache"]
        self._round_state = payload["round_state"]

        # hook states match by class name, in order: the resumed run
        # must attach the same hook stack as the original (extra saved
        # states for hooks not re-attached are an error -- silently
        # dropping one would desynchronise the resumed extras)
        unclaimed = list(self.hooks.hooks)
        for class_name, state in payload["hooks"]:
            for position, hook in enumerate(unclaimed):
                if type(hook).__name__ == class_name:
                    hook.restore_state(state)
                    del unclaimed[position]
                    break
            else:
                raise CheckpointError(
                    f"checkpoint carries state for hook {class_name!r} "
                    f"but no unmatched attached hook has that type"
                )

        # optional service-mode extras (fleet roster, protocol
        # counters); absent in checkpoints from batch runs
        self.restored_service_state = payload.get("service")

        self._resume = {
            "scheduler": payload["scheduler"],
            "next_round": int(payload["next_round"]),
            "queue": payload["queue"],
        }

    def take_resume(self, scheduler_name: str) -> Optional[Dict[str, object]]:
        """Hand the pending resume target to the scheduler (once).

        Returns ``None`` for a fresh run.  Raises if the engine was
        restored for a different scheduler: replaying an async
        checkpoint under the barrier would silently diverge.
        """
        resume = self._resume
        if resume is None:
            return None
        self._resume = None
        if resume["scheduler"] != scheduler_name:
            raise CheckpointError(
                f"checkpoint was written by the {resume['scheduler']!r} "
                f"scheduler but this run uses {scheduler_name!r}"
            )
        return resume

    def worker_runtime_states(self) -> Dict[int, Dict[str, object]]:
        """Per-worker runtime state for checkpointing, executor-aware.

        Parent-side captures cover the timing stream (always consumed
        in the parent at dispatch pricing); in process mode the data /
        worker generator and iterator position advance in the pool
        children, so the executor's view overlays them -- keeping the
        parent's timing state -- and a resumed run replays every stream
        from the same position under either executor.
        """
        states = {
            worker_id: worker.capture_runtime_state()
            for worker_id, worker in self.workers.items()
        }
        for worker_id, child_state in \
                self.executor.capture_worker_states().items():
            merged = dict(child_state)
            merged["timing_rng"] = states[worker_id]["timing_rng"]
            states[worker_id] = merged
        return states

    def maybe_checkpoint(self, scheduler_name: str, next_round: int,
                         queue=None, stop: bool = False) -> None:
        """Scheduler notification: a round just finished.

        Writes a checkpoint when a manager is configured and the
        cadence is due (always at the end of the run).  When the
        scheduler is about to stop early, the recorded ``next_round``
        is pinned to ``max_rounds`` so resuming the checkpoint is a
        no-op instead of running rounds the original run never ran.
        """
        if self.checkpointer is None:
            return
        final = stop or next_round >= self.config.max_rounds
        recorded_next = self.config.max_rounds if stop else next_round
        if self._interrupt and not final:
            # a drain was requested: the run is pausing, not finishing,
            # so force a checkpoint at the true next round regardless
            # of the cadence -- resuming must pick up exactly here
            self.checkpointer.save(self, scheduler_name, recorded_next,
                                   queue=queue)
            return
        self.checkpointer.maybe_save(
            self, scheduler_name, recorded_next,
            queue=queue, final=final,
        )

    def request_interrupt(self) -> None:
        """Ask the scheduler to pause after the round in flight.

        Used by the service's SIGTERM drain: unlike early *stopping*
        (:meth:`should_stop`), an interrupt checkpoint records the true
        next round so a resumed run continues instead of no-opping.
        """
        self._interrupt = True

    @property
    def interrupt_requested(self) -> bool:
        return self._interrupt

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def present_workers(self, round_index: int) -> List[int]:
        """Workers participating this round.

        With a :attr:`membership_provider` installed (service mode) the
        live roster decides; otherwise the churn model simulates
        presence.  The provider path consumes no engine RNG, exactly
        like the churn-disabled path, so a serial reference run driven
        by a scripted provider stays bit-identical to a service run
        whose roster follows the same script.
        """
        if self.membership_provider is not None:
            return sorted(self.membership_provider(round_index))
        if self.config.churn_leave_prob <= 0:
            return list(self.worker_ids)
        return simulate_membership_churn(
            self.worker_ids, round_index,
            leave_prob=self.config.churn_leave_prob,
            rejoin_after=self.config.churn_rejoin_after,
            rng=self._churn_rng,
        )

    def sample_clients(self, candidates: Sequence[int],
                       round_index: int) -> List[int]:
        """Sample ``clients_per_round`` workers from ``candidates``.

        Draws from the dedicated sampling stream only when the config
        actually subsamples, so runs without ``clients_per_round`` (and
        rounds where everyone fits) consume no extra randomness.  The
        sample is returned in ``candidates`` order, keeping downstream
        iteration order deterministic.
        """
        candidates = list(candidates)
        m = self.config.clients_per_round
        metrics = self.telemetry.metrics
        if m is None or m >= len(candidates):
            if candidates:
                metrics.gauge("fleet_sampled_fraction").set(1.0)
            return candidates
        picked = self._sampling_rng.choice(
            len(candidates), size=m, replace=False
        )
        metrics.counter("clients_sampled_total").inc(m)
        metrics.gauge("fleet_sampled_fraction").set(m / len(candidates))
        return [candidates[index] for index in sorted(picked)]

    # ------------------------------------------------------------------
    # per-round building blocks
    # ------------------------------------------------------------------
    def dispatch(self, worker_id: int, ratio: float, dispatch_time: float,
                 round_index: int) -> Dispatch:
        """Prune the global model for one worker and price the round."""
        with self.telemetry.span("dispatch", round=round_index,
                                 worker=worker_id, ratio=ratio) as span:
            with self.telemetry.span("prune", round=round_index,
                                     worker=worker_id, ratio=ratio):
                plan, submodel, dispatched_state = self._pruned_submodel(ratio)
                residual = None
                global_state = None
                if self.aggregator.needs_residual:
                    if self.fast_path:
                        global_state = self._round_global_state()
                    else:
                        residual = residual_state_dict(
                            self.server.global_state, plan
                        )

            tau = self.strategy.local_iterations(worker_id)
            num_params = submodel.num_parameters()
            keep = self.strategy.upload_keep_fraction(worker_id)
            upload_params = max(1, int(round(num_params * keep)))
            costs = self.workers[worker_id].round_costs(
                self.task.count_flops(submodel),
                download_params=num_params, upload_params=upload_params,
                batch_size=self.config.batch_size, tau=tau,
            )
            span.set("download_params", num_params)
            span.set("upload_params", upload_params)
            span.set("tau", tau)
            span.set("completion_time_s", costs.total_s)
            dispatch = Dispatch(
                worker_id=worker_id, ratio=ratio, plan=plan,
                submodel=submodel, dispatched_state=dispatched_state,
                residual=residual, tau=tau, costs=costs,
                dispatch_time=dispatch_time, download_params=num_params,
                upload_params=upload_params, global_state=global_state,
                num_samples=self.workers[worker_id].num_samples,
            )
            self.hooks.on_dispatch(round_index, dispatch)
        return dispatch

    def dispatch_many(self, ratios: Dict[int, float], dispatch_time: float,
                      round_index: int) -> Dict[int, Dispatch]:
        """Dispatch a round's worth of workers, cohort-sharded when on.

        On the cohort path, workers are bucketed by ``(ratio, cluster)``
        in first-occurrence order -- which preserves the per-member
        path's cache-miss order, hence its ``extract_rng`` consumption
        -- and each bucket materialises one plan/template/state for all
        its members.  Per-member work shrinks to pricing (round costs)
        and a lightweight :class:`Dispatch` that points at the shared
        :class:`~repro.fl.cohort.Cohort`.
        """
        if not self.cohort_mode:
            return {
                worker_id: self.dispatch(
                    worker_id, ratios[worker_id], dispatch_time, round_index
                )
                for worker_id in ratios
            }

        buckets: Dict[Tuple[float, str], List[int]] = {}
        for worker_id, ratio in ratios.items():
            key = (float(ratio), self.workers[worker_id].device.cluster)
            buckets.setdefault(key, []).append(worker_id)

        metrics = self.telemetry.metrics
        dispatches: Dict[int, Dispatch] = {}
        for (ratio, cluster), member_ids in buckets.items():
            with self.telemetry.span(
                "dispatch_cohort", round=round_index, ratio=ratio,
                cluster=cluster, members=len(member_ids),
            ) as cohort_span:
                with self.telemetry.span("prune", round=round_index,
                                         ratio=ratio, cluster=cluster):
                    plan, template, state, fresh = self._cohort_submodel(
                        ratio
                    )
                num_params = template.num_parameters()
                saved_clones = len(member_ids) - 1 if fresh else len(member_ids)
                if saved_clones > 0:
                    metrics.counter("dispatch_alloc_saved_params_total").inc(
                        saved_clones * num_params
                    )
                global_state = (
                    self._round_global_state()
                    if self.aggregator.needs_residual else None
                )
                flops = self.task.count_flops(template)
                cohort = Cohort(
                    ratio=ratio, cluster=cluster, plan=plan,
                    template=template, dispatched_state=state,
                    member_ids=list(member_ids), num_params=num_params,
                    supports_vectorised=supports_cohort_training(template),
                    global_state=global_state,
                )
                cohort_span.set("download_params", num_params)
                if self.telemetry.tracer.enabled:
                    cohort_span.set("plan_sig",
                                    plan_signature_digest(plan))
                metrics.gauge("cohort_members", ratio=ratio,
                              cluster=cluster).set(len(member_ids))
                for worker_id in member_ids:
                    with self.telemetry.span(
                        "dispatch", round=round_index, worker=worker_id,
                        ratio=ratio,
                    ) as span:
                        tau = self.strategy.local_iterations(worker_id)
                        keep = self.strategy.upload_keep_fraction(worker_id)
                        upload_params = max(1, int(round(num_params * keep)))
                        costs = self.workers[worker_id].round_costs(
                            flops, download_params=num_params,
                            upload_params=upload_params,
                            batch_size=self.config.batch_size, tau=tau,
                        )
                        span.set("download_params", num_params)
                        span.set("upload_params", upload_params)
                        span.set("tau", tau)
                        span.set("completion_time_s", costs.total_s)
                        dispatch = Dispatch(
                            worker_id=worker_id, ratio=ratio, plan=plan,
                            submodel=None, dispatched_state=state,
                            residual=None, tau=tau, costs=costs,
                            dispatch_time=dispatch_time,
                            download_params=num_params,
                            upload_params=upload_params,
                            global_state=global_state,
                            num_samples=self.workers[worker_id].num_samples,
                            cohort=cohort,
                        )
                        dispatches[worker_id] = dispatch
                        self.hooks.on_dispatch(round_index, dispatch)
            metrics.counter("dispatch_cohorts_total").inc()
            metrics.counter("dispatch_cohort_members_total").inc(
                len(member_ids)
            )
        return {worker_id: dispatches[worker_id] for worker_id in ratios}

    def _cohort_submodel(self, ratio: float):
        """Like :meth:`_pruned_submodel`, but returns the shared cached
        template itself (no per-call clone) plus whether it was freshly
        extracted; cohort-mode callers never train the template."""
        metrics = self.telemetry.metrics
        key = float(ratio)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.task.build_plan(self.model, ratio)
            self._plan_cache[key] = plan
            metrics.counter("dispatch_cache_misses_total", kind="plan").inc()
        else:
            metrics.counter("dispatch_cache_hits_total", kind="plan").inc()

        cached = self._submodel_cache.get(key)
        if cached is None:
            submodel = self.task.extract(self.model, plan, self.extract_rng)
            state = submodel.state_dict()
            self._submodel_cache[key] = (submodel, state)
            metrics.counter("dispatch_cache_misses_total",
                            kind="submodel").inc()
            return plan, submodel, state, True
        template, state = cached
        metrics.counter("dispatch_cache_hits_total", kind="submodel").inc()
        return plan, template, state, False

    def _pruned_submodel(self, ratio: float):
        """Plan + extracted sub-model + its pristine state for ``ratio``,
        served from the per-epoch cache when the fast path allows it.

        On a sub-model cache hit the clone is rebuilt by deep-copying the
        cached template and reloading the pristine state, which skips the
        l1 walk, the fancy-indexed weight extraction and the layer-init
        RNG draws entirely.  The shared ``dispatched_state`` dict is
        treated as immutable by all consumers.
        """
        if not self.fast_path:
            plan = self.task.build_plan(self.model, ratio)
            submodel = self.task.extract(self.model, plan, self.extract_rng)
            return plan, submodel, submodel.state_dict()

        metrics = self.telemetry.metrics
        key = float(ratio)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.task.build_plan(self.model, ratio)
            self._plan_cache[key] = plan
            metrics.counter("dispatch_cache_misses_total", kind="plan").inc()
        else:
            metrics.counter("dispatch_cache_hits_total", kind="plan").inc()

        if not self._share_submodels:
            submodel = self.task.extract(self.model, plan, self.extract_rng)
            return plan, submodel, submodel.state_dict()

        cached = self._submodel_cache.get(key)
        if cached is None:
            submodel = self.task.extract(self.model, plan, self.extract_rng)
            state = submodel.state_dict()
            self._submodel_cache[key] = (submodel, state)
            metrics.counter("dispatch_cache_misses_total",
                            kind="submodel").inc()
            return plan, submodel, state
        template, state = cached
        clone = copy.deepcopy(template)
        clone.load_state_dict(state)
        metrics.counter("dispatch_cache_hits_total", kind="submodel").inc()
        metrics.counter("dispatch_alloc_saved_params_total").inc(
            clone.num_parameters()
        )
        return plan, clone, state

    def _round_global_state(self) -> Dict[str, np.ndarray]:
        """One frozen global-state snapshot per cache epoch, shared by
        every R2SP dispatch of the round in place of a materialised
        residual model."""
        if self._round_state is None:
            self._round_state = self.server.global_state
        else:
            self.telemetry.metrics.counter(
                "dispatch_alloc_saved_arrays_total", kind="residual",
            ).inc(2 * len(self._round_state))
        return self._round_state

    def train(self, dispatch: Dispatch,
              round_index: int) -> Tuple[Contribution, float]:
        """Run one worker's local training; returns its contribution and
        mean training loss.  Convenience wrapper over :meth:`train_all`."""
        return self.train_all([dispatch], round_index)[0]

    def train_all(self, dispatches: Sequence[Dispatch],
                  round_index: int) -> List[Tuple[Contribution, float]]:
        """Run local training for a batch of dispatches via the executor.

        Results come back in dispatch order regardless of executor, and
        the post-processing below (upload compression, contribution
        assembly, hook notification) always runs sequentially in that
        order in the parent -- so hook observations and every RNG-free
        reduction are independent of the execution backend.
        """
        dispatches = list(dispatches)
        results = self._run_training(dispatches, round_index)

        out: List[Tuple[Contribution, float]] = []
        for dispatch, result in zip(dispatches, results):
            sub_state = result.sub_state
            train_loss = result.train_loss
            dispatch.trained_state = sub_state
            keep = self.strategy.upload_keep_fraction(dispatch.worker_id)
            if keep < 1.0:
                sub_state = self._compress_upload(
                    dispatch.worker_id, dispatch.dispatched_state, sub_state,
                    keep, dispatch.plan,
                )
            contribution = Contribution(
                worker_id=dispatch.worker_id, sub_state=sub_state,
                plan=dispatch.plan, residual=dispatch.residual,
                num_samples=dispatch.num_samples,
                global_state=dispatch.global_state,
            )
            self.hooks.on_contribution(round_index, dispatch, contribution,
                                       train_loss)
            out.append((contribution, train_loss))
        return out

    def _run_training(self, dispatches: Sequence[Dispatch],
                      round_index: int) -> List[object]:
        """Route dispatches to the executor, cohort-grouped when on.

        Returns :class:`~repro.runtime.executor.TrainResult` objects
        aligned with ``dispatches`` whichever route each one took.
        """
        hyper = TrainHyper(
            lr=self.config.lr, momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
            prox_mu=self.strategy.proximal_mu(),
            clip_norm=self.config.clip_norm,
        )
        emulate = self.config.emulate_device_factor

        def member_request(dispatch: Dispatch) -> TrainRequest:
            return TrainRequest(
                worker_id=dispatch.worker_id, ratio=dispatch.ratio,
                tau=dispatch.tau, plan=dispatch.plan,
                submodel=dispatch.submodel,
                dispatched_state=dispatch.dispatched_state,
                hyper=hyper,
                emulate_s=dispatch.costs.total_s * emulate,
            )

        if not self.cohort_mode:
            return self.executor.run(
                [member_request(dispatch) for dispatch in dispatches],
                round_index,
            )

        # group by owning cohort, preserving dispatch order within and
        # across groups so result scatter-back is deterministic
        groups: Dict[int, List[int]] = {}
        for index, dispatch in enumerate(dispatches):
            groups.setdefault(id(dispatch.cohort), []).append(index)

        results: List[object] = [None] * len(dispatches)
        for indices in groups.values():
            cohort = dispatches[indices[0]].cohort
            if cohort is None:
                # dispatched via the per-member API (e.g. direct callers)
                batch = self.executor.run(
                    [member_request(dispatches[i]) for i in indices],
                    round_index,
                )
            else:
                request = CohortTrainRequest(
                    cohort=cohort,
                    worker_ids=[dispatches[i].worker_id for i in indices],
                    taus=[dispatches[i].tau for i in indices],
                    hyper=hyper,
                    emulate_s=[
                        dispatches[i].costs.total_s * emulate
                        for i in indices
                    ],
                )
                batch = self.executor.run_cohort(request, round_index)
            for index, result in zip(indices, batch):
                results[index] = result
        return results

    def round_detail(self, ratios: Dict[int, float],
                     times: Dict[int, float],
                     dispatches: Dict[int, Dispatch]):
        """Round-record detail at the configured history granularity.

        Returns ``(ratios, completion_times, cohorts)``: the member
        dicts verbatim (and no cohort list) under ``member`` detail, or
        empty dicts plus a per-cohort aggregate list under ``cohort``
        detail so record size is O(cohorts), not O(fleet).
        """
        if self.history_detail == "member":
            return dict(ratios), dict(times), None

        buckets: Dict[Tuple[float, str], List[int]] = {}
        for worker_id, ratio in ratios.items():
            dispatch = dispatches.get(worker_id)
            if dispatch is not None and dispatch.cohort is not None:
                cluster = dispatch.cohort.cluster
            else:
                cluster = self.workers[worker_id].device.cluster
            buckets.setdefault((float(ratio), cluster), []).append(worker_id)

        cohorts = []
        for (ratio, cluster), member_ids in buckets.items():
            entry = {
                "ratio": ratio, "cluster": cluster,
                "members": len(member_ids),
                "num_samples": int(sum(
                    dispatches[w].num_samples if w in dispatches
                    else self.workers[w].num_samples
                    for w in member_ids
                )),
            }
            member_times = [
                times[w] for w in member_ids if w in times
            ]
            if member_times:
                entry["time_min"] = min(member_times)
                entry["time_mean"] = sum(member_times) / len(member_times)
                entry["time_max"] = max(member_times)
            cohorts.append(entry)
        return {}, {}, cohorts

    def close(self) -> None:
        """Release the executor (worker processes, pipes).  Idempotent."""
        self.executor.close()

    def _compress_upload(self, worker_id: int,
                         dispatched: Dict[str, np.ndarray],
                         trained: Dict[str, np.ndarray],
                         keep: float, plan) -> Dict[str, np.ndarray]:
        """FlexCom path: top-k sparsify the update with error feedback.

        The error memory is kept in global coordinates via the round's
        pruning plan, so adaptive pruning may change the sub-model
        shape (and which units each position maps to) between rounds
        without corrupting or crashing the feedback loop.
        """
        delta = {key: trained[key] - dispatched[key] for key in trained}
        feedback = self.error_feedback[worker_id]
        compensated = feedback.compensate(delta, plan=plan)
        sparse_delta, _ = top_k_sparsify(compensated, keep)
        feedback.update(compensated, sparse_delta, plan=plan,
                        template=self.server.template)
        return {
            key: dispatched[key] + sparse_delta[key] for key in trained
        }

    def aggregate(self, contributions: List[Contribution],
                  round_index: int) -> Dict[str, np.ndarray]:
        """Fold one round of contributions into the global model.

        ``before_aggregate`` hooks may rewrite the contribution set
        first (the sanctioned interception point fault injectors use);
        every observer hook then sees the set that was aggregated.
        """
        # the span records the contribution *count*, not the id list: a
        # sampled fleet round can carry thousands of members and the
        # trace must stay O(cohorts) per round
        with self.telemetry.span(
            "aggregate", round=round_index,
            contributions=len(contributions),
        ) as span:
            contributions = self.hooks.before_aggregate(round_index,
                                                        contributions)
            apply_start = time.perf_counter()
            new_state = self.server.apply(contributions)
            apply_s = time.perf_counter() - apply_start
            span.set("apply_s", apply_s)
            self.telemetry.metrics.histogram(
                "aggregate_apply_s",
            ).observe(apply_s)
            if self.fast_path and not self.aggregator.dense:
                saved = len(contributions) * len(self.server.template)
                if self.aggregator.needs_residual:
                    saved += len(self.server.template) * sum(
                        1 for c in contributions
                        if c.residual is None and c.global_state is not None
                    )
                self.telemetry.metrics.counter(
                    "aggregate_alloc_saved_arrays_total",
                ).inc(saved)
            # the global model changed: every cached plan/sub-model and
            # the round snapshot are stale from here on
            self._plan_cache.clear()
            self._submodel_cache.clear()
            self._round_state = None
            self.hooks.on_aggregate(round_index, contributions)
        return new_state

    def evaluate(self, round_index: int,
                 force: bool = False) -> Tuple[Optional[float], Optional[float]]:
        due = (round_index + 1) % self.config.eval_every == 0
        if not (due or force):
            return None, None
        with self.telemetry.span("eval", round=round_index) as span:
            metric, loss = self.task.evaluate(
                self.model, max_samples=self.config.eval_max_samples
            )
            if metric is not None:
                span.set("metric", float(metric))
            if loss is not None:
                span.set("eval_loss", float(loss))
        return metric, loss

    def delta_loss(self, mean_train_loss: float) -> float:
        """Loss decrease vs the previous round (0 on the first round)."""
        if self._prev_train_loss is None:
            delta = 0.0
        else:
            delta = self._prev_train_loss - mean_train_loss
        self._prev_train_loss = mean_train_loss
        return delta

    def finish_round(self, record: RoundRecord) -> None:
        """Close the round: notify hooks, append to the history."""
        self.hooks.on_round_end(record)
        self.history.append(record)

    def should_stop(self, record: RoundRecord) -> bool:
        config = self.config
        if record.metric is not None and config.target_metric is not None:
            reached = (
                record.metric >= config.target_metric
                if self.history.higher_is_better
                else record.metric <= config.target_metric
            )
            if reached:
                return True
        if config.time_budget_s is not None:
            if record.sim_time_s >= config.time_budget_s:
                return True
        return False
