"""Training runners: the synchronous round loop and Algorithm 2.

``run_federated_training`` orchestrates everything: per-round ratio
decisions, distributed pruning, simulated local training, Eq. 5 cost
accounting, optional deadline-based fault tolerance, R2SP/BSP
aggregation, and history recording.  With ``config.async_m`` set it
switches to the event-driven asynchronous loop of Algorithm 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.compression import ErrorFeedback, top_k_sparsify
from repro.fl.config import FLConfig
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.server import Contribution, ParameterServer
from repro.fl.strategies import Strategy, make_strategy
from repro.fl.strategies.base import RoundObservation
from repro.fl.worker import Worker
from repro.pruning.masks import residual_state_dict
from repro.simulation.clock import SimulationClock
from repro.simulation.device import DeviceProfile
from repro.simulation.faults import DeadlinePolicy, simulate_membership_churn
from repro.simulation.timing import RoundCosts


@dataclass
class _Dispatch:
    """Everything the PS remembers about one dispatched sub-model."""

    worker_id: int
    ratio: float
    plan: object
    submodel: object
    dispatched_state: Dict[str, np.ndarray]
    residual: Optional[Dict[str, np.ndarray]]
    tau: int
    costs: RoundCosts
    dispatch_time: float = 0.0

    @property
    def finish_time(self) -> float:
        return self.dispatch_time + self.costs.total_s


def run_federated_training(task, devices: Sequence[DeviceProfile],
                           config: FLConfig) -> TrainingHistory:
    """Run one federated-training experiment and return its history.

    ``task`` is a :mod:`repro.fl.tasks` adapter; ``devices`` defines the
    heterogeneous workers (one per device); ``config`` selects strategy,
    synchronisation scheme and stopping criteria.
    """
    session = _Session(task, devices, config)
    if config.async_m is not None:
        return session.run_async(config.async_m)
    return session.run_sync()


class _Session:
    """Shared state of one experiment (sync or async)."""

    def __init__(self, task, devices: Sequence[DeviceProfile],
                 config: FLConfig) -> None:
        self.task = task
        self.config = config
        self.master_rng = np.random.default_rng(config.seed)

        self.model = task.build_model(
            np.random.default_rng(self.master_rng.integers(2 ** 31))
        )
        self.server = ParameterServer(self.model)

        shard_rng = np.random.default_rng(self.master_rng.integers(2 ** 31))
        shards = task.partition(len(devices), shard_rng)
        self.workers: Dict[int, Worker] = {}
        for device, shard in zip(devices, shards):
            worker_rng = np.random.default_rng(self.master_rng.integers(2 ** 31))
            iterator = task.make_iterator(shard, config.batch_size, worker_rng)
            self.workers[device.device_id] = Worker(
                device.device_id, iterator, device,
                jitter_sigma=config.jitter_sigma, rng=worker_rng,
            )

        self.worker_ids = sorted(self.workers)
        self.strategy: Strategy = make_strategy(
            config.strategy, self.worker_ids, config,
            rng=np.random.default_rng(self.master_rng.integers(2 ** 31)),
        )
        if getattr(self.strategy, "needs_calibration", False):
            self.strategy.calibrate(
                devices, task.count_flops(self.model),
                self.model.num_parameters(),
            )
        self.extract_rng = np.random.default_rng(self.master_rng.integers(2 ** 31))
        self.clock = SimulationClock()
        self.history = TrainingHistory(
            strategy=config.strategy, model_name=task.name,
            higher_is_better=task.higher_is_better,
        )
        self.error_feedback: Dict[int, ErrorFeedback] = {
            wid: ErrorFeedback() for wid in self.worker_ids
        }
        self.deadline_policy = (
            DeadlinePolicy(config.deadline_quorum, config.deadline_multiplier)
            if config.deadline_quorum is not None else None
        )
        self._prev_train_loss: Optional[float] = None
        self._churn_rng = np.random.default_rng(
            self.master_rng.integers(2 ** 31)
        )

    def _present_workers(self, round_index: int) -> List[int]:
        """Workers participating this round under the churn model."""
        if self.config.churn_leave_prob <= 0:
            return list(self.worker_ids)
        return simulate_membership_churn(
            self.worker_ids, round_index,
            leave_prob=self.config.churn_leave_prob,
            rejoin_after=self.config.churn_rejoin_after,
            rng=self._churn_rng,
        )

    # ------------------------------------------------------------------
    # shared building blocks
    # ------------------------------------------------------------------
    def _dispatch(self, worker_id: int, ratio: float,
                  dispatch_time: float) -> _Dispatch:
        """Prune the global model for one worker and price the round."""
        plan = self.task.build_plan(self.model, ratio)
        submodel = self.task.extract(self.model, plan, self.extract_rng)
        residual = None
        if self.config.sync_scheme == "r2sp":
            residual = residual_state_dict(self.server.global_state, plan)

        tau = self.strategy.local_iterations(worker_id)
        num_params = submodel.num_parameters()
        keep = self.strategy.upload_keep_fraction(worker_id)
        upload_params = max(1, int(round(num_params * keep)))
        costs = self.workers[worker_id].round_costs(
            self.task.count_flops(submodel),
            download_params=num_params, upload_params=upload_params,
            batch_size=self.config.batch_size, tau=tau,
        )
        return _Dispatch(
            worker_id=worker_id, ratio=ratio, plan=plan, submodel=submodel,
            dispatched_state=submodel.state_dict(), residual=residual,
            tau=tau, costs=costs, dispatch_time=dispatch_time,
        )

    def _train_dispatch(self, dispatch: _Dispatch) -> Tuple[Contribution, float]:
        """Run the worker's local training; returns its contribution and
        mean training loss."""
        worker = self.workers[dispatch.worker_id]
        train_loss = worker.local_train(
            dispatch.submodel, tau=dispatch.tau, lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
            prox_mu=self.strategy.proximal_mu(),
            clip_norm=self.config.clip_norm,
            anchor=dispatch.dispatched_state,
        )
        sub_state = dispatch.submodel.state_dict()

        keep = self.strategy.upload_keep_fraction(dispatch.worker_id)
        if keep < 1.0:
            sub_state = self._compress_upload(
                dispatch.worker_id, dispatch.dispatched_state, sub_state, keep
            )
        contribution = Contribution(
            worker_id=dispatch.worker_id, sub_state=sub_state,
            plan=dispatch.plan, residual=dispatch.residual,
        )
        return contribution, train_loss

    def _compress_upload(self, worker_id: int,
                         dispatched: Dict[str, np.ndarray],
                         trained: Dict[str, np.ndarray],
                         keep: float) -> Dict[str, np.ndarray]:
        """FlexCom path: top-k sparsify the update with error feedback."""
        delta = {key: trained[key] - dispatched[key] for key in trained}
        feedback = self.error_feedback[worker_id]
        compensated = feedback.compensate(delta)
        sparse_delta, _ = top_k_sparsify(compensated, keep)
        feedback.update(compensated, sparse_delta)
        return {
            key: dispatched[key] + sparse_delta[key] for key in trained
        }

    def _evaluate(self, round_index: int,
                  force: bool = False) -> Tuple[Optional[float], Optional[float]]:
        due = (round_index + 1) % self.config.eval_every == 0
        if not (due or force):
            return None, None
        metric, loss = self.task.evaluate(
            self.model, max_samples=self.config.eval_max_samples
        )
        return metric, loss

    def _delta_loss(self, mean_train_loss: float) -> float:
        if self._prev_train_loss is None:
            delta = 0.0
        else:
            delta = self._prev_train_loss - mean_train_loss
        self._prev_train_loss = mean_train_loss
        return delta

    def _should_stop(self, record: RoundRecord) -> bool:
        config = self.config
        if record.metric is not None and config.target_metric is not None:
            reached = (
                record.metric >= config.target_metric
                if self.history.higher_is_better
                else record.metric <= config.target_metric
            )
            if reached:
                return True
        if config.time_budget_s is not None:
            if record.sim_time_s >= config.time_budget_s:
                return True
        return False

    # ------------------------------------------------------------------
    # synchronous loop (Fig. 1 / Eq. 6)
    # ------------------------------------------------------------------
    def run_sync(self) -> TrainingHistory:
        for round_index in range(self.config.max_rounds):
            present = self._present_workers(round_index)
            overhead_start = time.perf_counter()
            ratios = self.strategy.select_ratios(round_index,
                                                 worker_ids=present)
            dispatches = {
                wid: self._dispatch(wid, ratio, self.clock.now)
                for wid, ratio in ratios.items()
            }
            overhead_s = time.perf_counter() - overhead_start

            times = {
                wid: dispatch.costs.total_s
                for wid, dispatch in dispatches.items()
            }
            if self.deadline_policy is not None and len(times) > 1:
                outcome = self.deadline_policy.apply(times)
                accepted_ids = outcome.accepted
                discarded = outcome.discarded
                round_time = outcome.round_time_s
            else:
                accepted_ids = list(times)
                discarded = []
                round_time = max(times.values())

            contributions = []
            train_losses = []
            for wid in accepted_ids:
                contribution, loss = self._train_dispatch(dispatches[wid])
                contributions.append(contribution)
                train_losses.append(loss)
            self.server.aggregate(contributions, scheme=self.config.sync_scheme)

            self.clock.advance(round_time)
            self.clock.mark_round()
            mean_train_loss = float(np.mean(train_losses))
            delta_loss = self._delta_loss(mean_train_loss)
            self.strategy.observe_round(RoundObservation(
                round_index=round_index,
                costs={wid: dispatches[wid].costs for wid in accepted_ids},
                delta_loss=delta_loss,
                discarded=discarded,
            ))

            is_last = round_index == self.config.max_rounds - 1
            metric, eval_loss = self._evaluate(round_index, force=is_last)
            record = RoundRecord(
                round_index=round_index, sim_time_s=self.clock.now,
                round_time_s=round_time, metric=metric, eval_loss=eval_loss,
                train_loss=mean_train_loss, ratios=dict(ratios),
                completion_times=times, discarded=discarded,
                overhead_s=overhead_s,
            )
            self.history.append(record)
            if self._should_stop(record):
                break
        return self.history

    # ------------------------------------------------------------------
    # asynchronous loop (Algorithm 2)
    # ------------------------------------------------------------------
    def run_async(self, m: int) -> TrainingHistory:
        if m > len(self.worker_ids):
            raise ValueError(
                f"async_m={m} exceeds the number of workers "
                f"({len(self.worker_ids)})"
            )
        outstanding: Dict[int, _Dispatch] = {}
        initial_ratios = self.strategy.select_ratios(0)
        for wid, ratio in initial_ratios.items():
            outstanding[wid] = self._dispatch(wid, ratio, self.clock.now)

        for round_index in range(self.config.max_rounds):
            arrivals = sorted(
                outstanding.values(), key=lambda d: d.finish_time
            )[:m]
            now = arrivals[-1].finish_time
            previous_now = self.clock.now
            self.clock.advance_to(max(now, previous_now))
            self.clock.mark_round()

            contributions = []
            train_losses = []
            costs: Dict[int, RoundCosts] = {}
            for dispatch in arrivals:
                contribution, loss = self._train_dispatch(dispatch)
                contributions.append(contribution)
                train_losses.append(loss)
                costs[dispatch.worker_id] = dispatch.costs
                del outstanding[dispatch.worker_id]
            self.server.aggregate(contributions, scheme=self.config.sync_scheme)

            mean_train_loss = float(np.mean(train_losses))
            delta_loss = self._delta_loss(mean_train_loss)
            self.strategy.observe_round(RoundObservation(
                round_index=round_index, costs=costs, delta_loss=delta_loss,
            ))

            arrived_ids = sorted(costs)
            overhead_start = time.perf_counter()
            new_ratios = self.strategy.select_ratios(
                round_index + 1, worker_ids=arrived_ids
            )
            for wid, ratio in new_ratios.items():
                outstanding[wid] = self._dispatch(wid, ratio, self.clock.now)
            overhead_s = time.perf_counter() - overhead_start

            is_last = round_index == self.config.max_rounds - 1
            metric, eval_loss = self._evaluate(round_index, force=is_last)
            record = RoundRecord(
                round_index=round_index, sim_time_s=self.clock.now,
                round_time_s=self.clock.now - previous_now, metric=metric,
                eval_loss=eval_loss, train_loss=mean_train_loss,
                ratios={wid: outstanding[wid].ratio for wid in arrived_ids},
                completion_times={
                    wid: cost.total_s for wid, cost in costs.items()
                },
                overhead_s=overhead_s,
            )
            self.history.append(record)
            if self._should_stop(record):
                break
        return self.history
