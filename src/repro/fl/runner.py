"""Backward-compatible facade over the round engine.

The round protocol used to live here as one monolithic session class;
it is now composed from three pluggable layers:

- :mod:`repro.fl.engine` -- shared dispatch/train/record plumbing;
- :mod:`repro.fl.schedulers` -- synchronisation rules (sync barrier,
  async first-``m`` arrivals, semi-sync per-round deadline);
- :mod:`repro.fl.aggregation` -- R2SP/BSP aggregators and their
  sample-count-weighted variants;
- :mod:`repro.fl.hooks` -- per-round instrumentation callbacks.

``run_federated_training`` keeps the original one-call entrypoint:
it builds an :class:`~repro.fl.engine.Engine` from the config and runs
it under the scheduler the config selects.  Behaviour (including the
random streams, hence the trained models) is identical to the
pre-engine runner for every pre-engine configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.fl.checkpoint import (
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    resolve_checkpoint,
)
from repro.fl.config import FLConfig
from repro.fl.engine import Dispatch, Engine
from repro.fl.history import TrainingHistory
from repro.fl.hooks import RoundHook
from repro.fl.schedulers import make_scheduler
from repro.simulation.device import DeviceProfile
from repro.telemetry.runtime import Telemetry

__all__ = ["Dispatch", "Engine", "run_federated_training"]


def run_federated_training(
        task, devices: Sequence[DeviceProfile],
        config: Optional[FLConfig],
        hooks: Optional[Iterable[RoundHook]] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint_meta: Optional[dict] = None,
        resume_from: Optional[Union[str, Path, Checkpoint]] = None,
        ) -> TrainingHistory:
    """Run one federated-training experiment and return its history.

    ``task`` is a :mod:`repro.fl.tasks` adapter; ``devices`` defines the
    heterogeneous workers (one per device); ``config`` selects strategy,
    scheduler, aggregation scheme and stopping criteria.  ``hooks``
    optionally attaches :class:`~repro.fl.hooks.RoundHook` observers;
    ``telemetry`` optionally attaches a :class:`~repro.telemetry.
    Telemetry` bundle the engine and scheduler emit spans/metrics into
    (pair it with :class:`~repro.telemetry.TelemetryHook` in ``hooks``
    for the per-round metrics and E-UCB snapshots).

    ``resume_from`` continues a checkpointed run: a checkpoint file, a
    checkpoint directory (its latest checkpoint is used) or an already
    loaded :class:`~repro.fl.checkpoint.Checkpoint`.  ``config`` may
    then be ``None`` (the checkpoint's config is used) or must equal
    the checkpoint's exactly.  The resumed run re-attaches the same
    hook stack and finishes with a history byte-identical (after
    wall-time normalisation) to the uninterrupted run's.
    """
    if resume_from is not None:
        if isinstance(resume_from, Checkpoint):
            checkpoint = resume_from
        else:
            checkpoint = load_checkpoint(resolve_checkpoint(resume_from))
        if config is not None and config != checkpoint.config:
            raise CheckpointError(
                "explicit config differs from the checkpoint's; pass "
                "config=None to resume with the checkpointed config"
            )
        config = checkpoint.config
    else:
        checkpoint = None
        if config is None:
            raise ValueError("config is required unless resume_from is set")
    engine = Engine(task, devices, config, hooks=hooks,
                    telemetry=telemetry, restore=checkpoint,
                    checkpoint_meta=checkpoint_meta)
    scheduler = make_scheduler(config)
    try:
        return scheduler.run(engine)
    finally:
        # with executor="process" this tears down the worker pool; the
        # serial executor's close is a no-op
        engine.close()
