"""Backward-compatible facade over the round engine.

The round protocol used to live here as one monolithic session class;
it is now composed from three pluggable layers:

- :mod:`repro.fl.engine` -- shared dispatch/train/record plumbing;
- :mod:`repro.fl.schedulers` -- synchronisation rules (sync barrier,
  async first-``m`` arrivals, semi-sync per-round deadline);
- :mod:`repro.fl.aggregation` -- R2SP/BSP aggregators and their
  sample-count-weighted variants;
- :mod:`repro.fl.hooks` -- per-round instrumentation callbacks.

``run_federated_training`` keeps the original one-call entrypoint:
it builds an :class:`~repro.fl.engine.Engine` from the config and runs
it under the scheduler the config selects.  Behaviour (including the
random streams, hence the trained models) is identical to the
pre-engine runner for every pre-engine configuration.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.fl.config import FLConfig
from repro.fl.engine import Dispatch, Engine
from repro.fl.history import TrainingHistory
from repro.fl.hooks import RoundHook
from repro.fl.schedulers import make_scheduler
from repro.simulation.device import DeviceProfile
from repro.telemetry.runtime import Telemetry

__all__ = ["Dispatch", "Engine", "run_federated_training"]


def run_federated_training(
        task, devices: Sequence[DeviceProfile], config: FLConfig,
        hooks: Optional[Iterable[RoundHook]] = None,
        telemetry: Optional[Telemetry] = None) -> TrainingHistory:
    """Run one federated-training experiment and return its history.

    ``task`` is a :mod:`repro.fl.tasks` adapter; ``devices`` defines the
    heterogeneous workers (one per device); ``config`` selects strategy,
    scheduler, aggregation scheme and stopping criteria.  ``hooks``
    optionally attaches :class:`~repro.fl.hooks.RoundHook` observers;
    ``telemetry`` optionally attaches a :class:`~repro.telemetry.
    Telemetry` bundle the engine and scheduler emit spans/metrics into
    (pair it with :class:`~repro.telemetry.TelemetryHook` in ``hooks``
    for the per-round metrics and E-UCB snapshots).
    """
    engine = Engine(task, devices, config, hooks=hooks,
                    telemetry=telemetry)
    scheduler = make_scheduler(config)
    try:
        return scheduler.run(engine)
    finally:
        # with executor="process" this tears down the worker pool; the
        # serial executor's close is a no-op
        engine.close()
