"""FedMP: per-worker E-UCB pruning-ratio decisions (Sections III-IV)."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.bandit.eucb import EUCBAgent
from repro.bandit.reward import eucb_reward
from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, RoundObservation, Strategy


class FedMPStrategy(Strategy):
    """Adaptive per-worker pruning via one E-UCB agent per worker.

    Each agent learns, purely from completion times and global loss
    movement, which pruning ratio fits its worker's capabilities -- no
    prior knowledge of compute or bandwidth is used anywhere.

    ``strategy_kwargs`` accepted: ``discount`` (lambda, default 0.95),
    ``theta`` (granularity, default 0.05), ``max_ratio`` (default 0.9),
    ``exploration`` and ``warmup_rounds`` (ratio 0 for the first rounds
    so early rewards reflect the unpruned baseline), and ``scope``:
    ``"worker"`` (the paper's setting, one agent per worker) or
    ``"cluster"`` (one agent per device cluster -- the fleet-scale
    setting, where the agent observes each cohort's mean reward with
    member multiplicity; see ``repro.fl.cohort``).
    """

    name = "fedmp"
    #: the factory passes the device profiles so cluster scope can map
    #: workers to their device cluster
    accepts_devices = True
    capabilities = Capabilities(
        efficient_computation=True,
        efficient_communication=True,
        hardware_independent=True,
        computation_heterogeneity=True,
        communication_heterogeneity=True,
        convergence_guarantee=True,
    )

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None,
                 devices=None) -> None:
        super().__init__(worker_ids, config, rng)
        kwargs = config.strategy_kwargs
        self.discount = kwargs.get("discount", 0.95)
        self.theta = kwargs.get("theta", 0.05)
        self.max_ratio = kwargs.get("max_ratio", 0.9)
        # 0.5 keeps the padding term from drowning the normalised
        # rewards at FL round horizons (tens to hundreds of rounds)
        self.exploration = kwargs.get("exploration", 0.5)
        self.warmup_rounds = kwargs.get("warmup_rounds", 1)
        # reward shape: "eq8" (the paper's fit-to-capability reward) or
        # "time" (loss decrease per second -- the ablation baseline)
        self.reward = kwargs.get("reward", "eq8")
        if self.reward not in ("eq8", "time"):
            raise ValueError(f"unknown reward shape {self.reward!r}")
        self.scope = kwargs.get("scope", "worker")
        if self.scope not in ("worker", "cluster"):
            raise ValueError(f"unknown agent scope {self.scope!r}")
        self._cluster_of: Optional[Dict[int, str]] = None
        if self.scope == "cluster":
            if devices is None:
                raise ValueError(
                    "scope='cluster' needs the device profiles to map "
                    "workers to clusters"
                )
            self._cluster_of = {
                device.device_id: device.cluster for device in devices
            }
            keys = sorted({
                self._cluster_of[wid] for wid in self.worker_ids
            })
        else:
            keys = self.worker_ids
        self.agents: Dict[object, EUCBAgent] = {
            key: EUCBAgent(
                discount=self.discount, theta=self.theta,
                max_ratio=self.max_ratio, exploration=self.exploration,
                rng=np.random.default_rng(self.rng.integers(2 ** 31)),
            )
            for key in keys
        }
        self._pending: Dict[int, float] = {}

    def _agent_key(self, worker_id: int):
        if self._cluster_of is not None:
            return self._cluster_of[worker_id]
        return worker_id

    def select_ratios(self, round_index: int,
                      worker_ids: Optional[List[int]] = None) -> Dict[int, float]:
        ids = worker_ids if worker_ids is not None else self.worker_ids
        if round_index < self.warmup_rounds:
            ratios = {}
            for wid in ids:
                # play arm 0 explicitly so the agent still learns from it
                agent = self.agents[self._agent_key(wid)]
                agent._pending_arm = 0.0
                ratios[wid] = 0.0
            self._pending = dict(ratios)
            return ratios
        if self._cluster_of is None:
            ratios = {wid: self.agents[wid].select_ratio() for wid in ids}
            self._pending = dict(ratios)
            return ratios
        # cluster scope: one arm decision per cluster per round; workers
        # whose cluster already has an in-flight play (async/semi-sync
        # re-dispatch before the earlier wave was observed) join it
        ratios = {}
        arm_by_key: Dict[object, float] = {}
        for wid in ids:
            key = self._agent_key(wid)
            if key not in arm_by_key:
                agent = self.agents[key]
                if agent._pending_arm is not None:
                    arm_by_key[key] = agent._pending_arm
                else:
                    arm_by_key[key] = agent.select_ratio()
            ratios[wid] = arm_by_key[key]
        self._pending = dict(ratios)
        return ratios

    def observe_round(self, observation: RoundObservation) -> None:
        times = {
            wid: costs.total_s for wid, costs in observation.costs.items()
        }
        observed_keys = set()
        if times:
            mean_time = sum(times.values()) / len(times)

            def member_reward(total: float) -> float:
                if self.reward == "eq8":
                    return eucb_reward(
                        observation.delta_loss, total, mean_time
                    )
                return observation.delta_loss / max(total, 1e-6)

            if self._cluster_of is None:
                for wid, total in times.items():
                    self.agents[wid].observe(member_reward(total))
            else:
                by_key: Dict[object, List[float]] = {}
                for wid, total in times.items():
                    by_key.setdefault(self._agent_key(wid), []).append(total)
                for key, member_times in by_key.items():
                    agent = self.agents[key]
                    if agent._pending_arm is None:
                        # the play was already credited by an earlier
                        # arrival wave of this cluster
                        continue
                    rewards = [member_reward(t) for t in member_times]
                    agent.observe(sum(rewards) / len(rewards),
                                  count=len(rewards))
                    observed_keys.add(key)
        for wid in observation.discarded:
            key = self._agent_key(wid)
            agent = self.agents[key]
            if self._cluster_of is None:
                agent.abandon()
            elif key not in observed_keys and agent._pending_arm is not None:
                agent.abandon()
        self._pending.clear()

    # ------------------------------------------------------------------
    # live fleet membership (service mode)
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: int, device=None) -> None:
        """Create (or reuse) the agent behind a mid-run registration.

        A worker known since construction -- a service reconnect, or a
        slot the fleet was provisioned with -- keeps its existing agent
        untouched, so re-registering consumes no RNG and the run stays
        deterministic.  A genuinely new worker gets a fresh agent
        seeded from the strategy RNG *at registration time* (the
        construction-order seed contract extends append-only).
        """
        super().register_worker(worker_id, device=device)
        if self._cluster_of is not None:
            if worker_id not in self._cluster_of:
                if device is None:
                    raise ValueError(
                        "scope='cluster' needs the device profile to "
                        "map a new worker to its cluster"
                    )
                self._cluster_of[worker_id] = device.cluster
        key = self._agent_key(worker_id)
        if key not in self.agents:
            self.agents[key] = EUCBAgent(
                discount=self.discount, theta=self.theta,
                max_ratio=self.max_ratio, exploration=self.exploration,
                rng=np.random.default_rng(self.rng.integers(2 ** 31)),
            )

    def retire_worker(self, worker_id: int) -> None:
        """Park a leaving worker's agent without deleting it.

        Any pending play is abandoned (the deferred-split rule keeps
        the partition untouched), unless the agent is cluster-scoped
        and other members of the cluster are still present -- their
        in-flight play must stay observable.  The agent itself is kept
        so a rejoining worker resumes with its learned statistics.
        """
        key = self._agent_key(worker_id)
        super().retire_worker(worker_id)
        agent = self.agents.get(key)
        if agent is None:
            return
        if self._cluster_of is not None and any(
                self._agent_key(wid) == key for wid in self.worker_ids):
            return
        agent.abandon()

    def snapshot(self) -> dict:
        """JSON-ready E-UCB introspection across every worker's agent.

        The telemetry hook publishes this each round (trace event
        ``eucb_snapshot`` and ``RoundRecord.extras["eucb"]``), making
        the bandit's convergence -- arm means, confidence radii, pull
        counts, interval splits -- visible per worker per round.
        """
        return {
            "discount": self.discount,
            "theta": self.theta,
            "exploration": self.exploration,
            "reward": self.reward,
            "scope": self.scope,
            "agents": {
                str(key): agent.snapshot()
                for key, agent in self.agents.items()
            },
        }

    def overhead_note(self) -> str:
        regions = sum(agent.num_regions for agent in self.agents.values())
        return f"{len(self.agents)} agents, {regions} partition leaves"
