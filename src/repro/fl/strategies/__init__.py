"""Strategy registry: FedMP and the paper's baselines.

The asynchronous variants (Asyn-FL, Asyn-FedMP of Section V-H) reuse
these strategies -- asynchrony is a property of the runner, enabled by
``FLConfig.async_m``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, RoundObservation, Strategy
from repro.fl.strategies.fedmp import FedMPStrategy
from repro.fl.strategies.fedprox import FedProxStrategy
from repro.fl.strategies.fixed import FixedRatioStrategy
from repro.fl.strategies.flexcom import FlexComStrategy
from repro.fl.strategies.oracle import OracleStrategy
from repro.fl.strategies.synfl import SynFLStrategy
from repro.fl.strategies.upfl import UPFLStrategy

STRATEGIES: Dict[str, Type[Strategy]] = {
    "fedmp": FedMPStrategy,
    "synfl": SynFLStrategy,
    "upfl": UPFLStrategy,
    "fedprox": FedProxStrategy,
    "flexcom": FlexComStrategy,
    "fixed": FixedRatioStrategy,
    "oracle": OracleStrategy,
}


def make_strategy(name: str, worker_ids: List[int], config: FLConfig,
                  rng: Optional[np.random.Generator] = None,
                  devices=None) -> Strategy:
    """Instantiate a strategy by name.

    ``devices`` (the run's device profiles) is forwarded only to
    strategies that declare ``accepts_devices = True`` (e.g. FedMP's
    cluster-scoped agents), so existing strategy constructors keep
    their signature.
    """
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    if getattr(cls, "accepts_devices", False):
        return cls(worker_ids, config, rng=rng, devices=devices)
    return cls(worker_ids, config, rng=rng)


def capability_table() -> List[tuple]:
    """Rows of Table I: (method, capability row)."""
    return [
        (name, cls.capabilities.row()) for name, cls in STRATEGIES.items()
    ]


__all__ = [
    "Strategy",
    "Capabilities",
    "RoundObservation",
    "FedMPStrategy",
    "SynFLStrategy",
    "UPFLStrategy",
    "FedProxStrategy",
    "FlexComStrategy",
    "OracleStrategy",
    "STRATEGIES",
    "make_strategy",
    "capability_table",
]
