"""Oracle strategy: pruning ratios from *known* device capabilities.

Section IV-C: "With the knowledge of heterogeneous capabilities, some
more straightforward methods can be used to determine the pruning
ratios.  However, it is usually impractical for the PS to obtain these
private information."  This strategy is that impractical upper-bound
comparator: it reads the true device profiles and solves, per round,
for the ratio that equalises every worker's *expected* completion time
with the fleet median, via bisection on the Eq. 5 cost model.

Useful as an ablation ceiling for E-UCB: FedMP should approach (not
beat) the oracle as rounds accumulate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, Strategy
from repro.simulation.device import TRAIN_FLOPS_MULTIPLIER, DeviceProfile
from repro.simulation.timing import BYTES_PER_PARAM


class OracleStrategy(Strategy):
    """Capability-aware ratio assignment (requires private information).

    ``strategy_kwargs``: ``max_ratio`` (default 0.7), plus the strategy
    must be given the device list and model cost via :meth:`calibrate`
    before the first round (the runner does this automatically when the
    strategy exposes ``needs_calibration``).
    """

    name = "oracle"
    needs_calibration = True
    capabilities = Capabilities(
        efficient_computation=True,
        efficient_communication=True,
        hardware_independent=True,
        computation_heterogeneity=True,
        communication_heterogeneity=True,
    )

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(worker_ids, config, rng)
        self.max_ratio = config.strategy_kwargs.get("max_ratio", 0.7)
        self._devices: Dict[int, DeviceProfile] = {}
        self._full_flops: float = 0.0
        self._full_params: int = 0
        self._ratios: Dict[int, float] = {wid: 0.0 for wid in worker_ids}

    # ------------------------------------------------------------------
    # calibration (the "private information" the paper rules out)
    # ------------------------------------------------------------------
    def calibrate(self, devices: Sequence[DeviceProfile], full_flops: float,
                  full_params: int) -> None:
        """Provide true device profiles and the unpruned model costs."""
        self._devices = {device.device_id: device for device in devices}
        self._full_flops = float(full_flops)
        self._full_params = int(full_params)
        self._solve()

    def _expected_time(self, device: DeviceProfile, ratio: float) -> float:
        """Eq. 5 expectation at a pruning ratio (costs scale roughly
        linearly with the surviving-parameter fraction)."""
        keep = 1.0 - ratio
        train_flops = (
            self._full_flops * keep * TRAIN_FLOPS_MULTIPLIER
            * self.config.batch_size * self.config.local_iterations
        )
        compute = train_flops / device.flops_per_second
        payload_bits = 2 * self._full_params * keep * BYTES_PER_PARAM * 8
        communicate = payload_bits / device.bandwidth_bps
        return compute + communicate

    def _solve(self) -> None:
        """Equalise expected completion times at the fleet median."""
        if not self._devices:
            return
        unpruned = {
            wid: self._expected_time(device, 0.0)
            for wid, device in self._devices.items()
        }
        target = float(np.median(list(unpruned.values())))
        for wid, device in self._devices.items():
            if unpruned[wid] <= target:
                self._ratios[wid] = 0.0
                continue
            low, high = 0.0, self.max_ratio
            for _ in range(40):
                mid = 0.5 * (low + high)
                if self._expected_time(device, mid) > target:
                    low = mid
                else:
                    high = mid
            self._ratios[wid] = high

    def select_ratios(self, round_index: int,
                      worker_ids: Optional[List[int]] = None) -> Dict[int, float]:
        ids = worker_ids if worker_ids is not None else self.worker_ids
        return {wid: self._ratios.get(wid, 0.0) for wid in ids}
