"""FedProx (Li et al., 2018): heterogeneity-aware local work + proximal term.

"FedProx allows participating workers to perform different numbers of
local iterations based on their heterogeneous capabilities."  Workers
train the *full* model; straggling workers run fewer local iterations
(scaled from the completion times observed in previous rounds -- the
baseline is allowed this observation, same signal E-UCB uses), and
every local objective carries the proximal term ``(mu/2)||w - w_k||^2``
to keep partial work from drifting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, RoundObservation, Strategy


class FedProxStrategy(Strategy):
    """Full-model training with adaptive local iteration counts."""

    name = "fedprox"
    capabilities = Capabilities(
        hardware_independent=True,
        computation_heterogeneity=True,
        convergence_guarantee=True,
    )

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(worker_ids, config, rng)
        kwargs = config.strategy_kwargs
        self.mu = kwargs.get("mu", 0.01)
        self.min_iterations = kwargs.get("min_iterations", 1)
        self._last_compute_times: Dict[int, float] = {}

    def proximal_mu(self) -> float:
        return self.mu

    def local_iterations(self, worker_id: int) -> int:
        """Scale tau down for workers whose compute ran slower than the
        round's fastest worker last round."""
        tau = self.config.local_iterations
        if not self._last_compute_times:
            return tau
        fastest = min(self._last_compute_times.values())
        own = self._last_compute_times.get(worker_id)
        if own is None or own <= 0:
            return tau
        scaled = int(round(tau * fastest / own))
        return max(self.min_iterations, min(tau, scaled))

    def observe_round(self, observation: RoundObservation) -> None:
        for wid, costs in observation.costs.items():
            self._last_compute_times[wid] = costs.computation_s
