"""Fixed-ratio strategy: every worker prunes at one constant ratio.

Not one of the paper's named methods, but the instrument behind Fig. 2
(accuracy vs pruning ratio under a time budget) and Fig. 5 (per-round
time vs pruning ratio).  ``strategy_kwargs={"ratio": 0.4}``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, Strategy


class FixedRatioStrategy(Strategy):
    """Constant uniform pruning ratio (an ablation instrument)."""

    name = "fixed"
    capabilities = Capabilities(
        efficient_computation=True,
        efficient_communication=True,
        hardware_independent=True,
    )

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(worker_ids, config, rng)
        self.ratio = float(config.strategy_kwargs.get("ratio", 0.0))
        if not 0.0 <= self.ratio < 1.0:
            raise ValueError(f"ratio must be in [0, 1), got {self.ratio}")

    def select_ratios(self, round_index: int,
                      worker_ids: Optional[List[int]] = None) -> Dict[int, float]:
        ids = worker_ids if worker_ids is not None else self.worker_ids
        return {wid: self.ratio for wid in ids}
