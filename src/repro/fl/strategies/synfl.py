"""Syn-FL: plain synchronous FedAvg (McMahan et al.), no pruning."""

from __future__ import annotations

from repro.fl.strategies.base import Capabilities, Strategy


class SynFLStrategy(Strategy):
    """Transmit and train the entire model; aggregate after all arrive.

    The defaults of :class:`~repro.fl.strategies.base.Strategy` already
    describe this behaviour; the subclass only pins down the name and
    the Table I capability row.
    """

    name = "synfl"
    capabilities = Capabilities(hardware_independent=True)
