"""FlexCom (Li et al., INFOCOM 2021): flexible uplink compression.

"FlexCom considers heterogeneous communication condition and enables
flexible communication compression, which allows heterogeneous workers
to compress the gradients to different levels before uploading."
Workers train the full model (no computation savings) and sparsify
their *uploads* with per-worker top-k levels: workers on slow links
compress harder so uploads finish together.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, RoundObservation, Strategy


class FlexComStrategy(Strategy):
    """Full-model training with adaptive per-worker top-k upload levels."""

    name = "flexcom"
    capabilities = Capabilities(
        efficient_communication=True,
        hardware_independent=True,
        communication_heterogeneity=True,
        convergence_guarantee=True,
    )

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(worker_ids, config, rng)
        kwargs = config.strategy_kwargs
        self.min_keep = kwargs.get("min_keep", 0.05)
        self.base_keep = kwargs.get("base_keep", 0.3)
        self._last_upload_times: Dict[int, float] = {}

    def upload_keep_fraction(self, worker_id: int) -> float:
        """Keep level inversely proportional to last round's upload time,
        anchored at ``base_keep`` for the round-mean link."""
        if not self._last_upload_times:
            return self.base_keep
        mean_upload = (
            sum(self._last_upload_times.values())
            / len(self._last_upload_times)
        )
        own = self._last_upload_times.get(worker_id)
        if own is None or own <= 0:
            return self.base_keep
        keep = self.base_keep * mean_upload / own
        return float(min(1.0, max(self.min_keep, keep)))

    def observe_round(self, observation: RoundObservation) -> None:
        for wid, costs in observation.costs.items():
            # normalise the observed upload time back to a full-model
            # upload so the keep level does not feed back on itself
            keep = self.upload_keep_fraction(wid) if self._last_upload_times \
                else self.base_keep
            self._last_upload_times[wid] = costs.upload_s / max(keep, 1e-6)
