"""UP-FL: uniform adaptive pruning (the Jiang et al. baseline).

"UP-FL determines a uniform pruning ratio for all workers in each
round, and the pruning ratio may vary in different rounds."  A single
E-UCB agent adapts the shared ratio over time; because Eq. 8's
fit-to-capability denominator is meaningless when every worker gets the
same ratio, the uniform agent's reward is loss decrease per unit of
round time (the natural uniform objective: convergence speed).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.bandit.eucb import EUCBAgent
from repro.fl.config import FLConfig
from repro.fl.strategies.base import Capabilities, RoundObservation, Strategy


class UPFLStrategy(Strategy):
    """One shared pruning ratio, adapted round by round."""

    name = "upfl"
    capabilities = Capabilities(
        efficient_computation=True,
        efficient_communication=True,
        hardware_independent=False,   # Jiang et al. rely on sparse kernels
        convergence_guarantee=True,
    )

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(worker_ids, config, rng)
        kwargs = config.strategy_kwargs
        self.warmup_rounds = kwargs.get("warmup_rounds", 1)
        self.agent = EUCBAgent(
            discount=kwargs.get("discount", 0.95),
            theta=kwargs.get("theta", 0.05),
            max_ratio=kwargs.get("max_ratio", 0.9),
            exploration=kwargs.get("exploration", 1.0),
            rng=np.random.default_rng(self.rng.integers(2 ** 31)),
        )

    def select_ratios(self, round_index: int,
                      worker_ids: Optional[List[int]] = None) -> Dict[int, float]:
        ids = worker_ids if worker_ids is not None else self.worker_ids
        if round_index < self.warmup_rounds:
            self.agent._pending_arm = 0.0
            ratio = 0.0
        else:
            ratio = self.agent.select_ratio()
        return {wid: ratio for wid in ids}

    def observe_round(self, observation: RoundObservation) -> None:
        if not observation.costs:
            self.agent.abandon()
            return
        round_time = max(c.total_s for c in observation.costs.values())
        self.agent.observe(observation.delta_loss / max(round_time, 1e-6))
