"""Strategy interface and capability metadata (Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.fl.config import FLConfig
from repro.simulation.timing import RoundCosts


@dataclass(frozen=True)
class Capabilities:
    """Table I columns for one method."""

    efficient_computation: bool = False
    efficient_communication: bool = False
    hardware_independent: bool = True
    computation_heterogeneity: bool = False
    communication_heterogeneity: bool = False
    convergence_guarantee: bool = False

    def row(self) -> List[str]:
        """Check-mark row for the Table I bench."""
        return [
            "yes" if flag else "-"
            for flag in (
                self.efficient_computation,
                self.efficient_communication,
                self.hardware_independent,
                self.computation_heterogeneity,
                self.communication_heterogeneity,
                self.convergence_guarantee,
            )
        ]


@dataclass
class RoundObservation:
    """What a strategy learns after one round."""

    round_index: int
    costs: Dict[int, RoundCosts]       # accepted workers only
    delta_loss: float                  # decrease of the (train) loss
    discarded: List[int] = field(default_factory=list)
    #: stragglers whose dispatches carried over to the next round
    #: (semi-synchronous scheduling; they were not discarded)
    carried_over: List[int] = field(default_factory=list)


class Strategy:
    """Decides per-worker pruning ratios, local iterations and uplink
    compression for every round.

    Subclasses override the hooks they care about; the defaults describe
    plain synchronous FedAvg (Syn-FL).
    """

    name = "base"
    capabilities = Capabilities()

    def __init__(self, worker_ids: List[int], config: FLConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.worker_ids = list(worker_ids)
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    # per-round hooks
    # ------------------------------------------------------------------
    def select_ratios(self, round_index: int,
                      worker_ids: Optional[List[int]] = None) -> Dict[int, float]:
        """Pruning ratio per worker; 0 means the full model."""
        ids = worker_ids if worker_ids is not None else self.worker_ids
        return {wid: 0.0 for wid in ids}

    def local_iterations(self, worker_id: int) -> int:
        """How many local SGD steps this worker runs (tau by default)."""
        return self.config.local_iterations

    def upload_keep_fraction(self, worker_id: int) -> float:
        """Fraction of the update kept on the uplink (1.0 = no compression)."""
        return 1.0

    def proximal_mu(self) -> float:
        """FedProx proximal coefficient; 0 disables the proximal term."""
        return 0.0

    def observe_round(self, observation: RoundObservation) -> None:
        """Digest the round's outcome (completion times, loss change)."""

    # ------------------------------------------------------------------
    # live fleet membership (service mode)
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: int, device=None) -> None:
        """A worker joined mid-run.  The default just tracks the id;
        stateful strategies override to create per-worker state.  Note
        that a worker known since construction re-registering (service
        reconnect) must be a no-op -- per-worker state, including any
        RNG draws made to create it, survives across reconnects."""
        if worker_id not in self.worker_ids:
            self.worker_ids.append(worker_id)
            self.worker_ids.sort()

    def retire_worker(self, worker_id: int) -> None:
        """A worker left mid-run.  The default just drops the id;
        stateful strategies override to park (not delete) per-worker
        state so a rejoining worker resumes where it left off."""
        if worker_id in self.worker_ids:
            self.worker_ids.remove(worker_id)

    def overhead_note(self) -> str:
        """Free-form description for reporting."""
        return ""
