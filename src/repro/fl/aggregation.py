"""Aggregator classes: the pluggable global-aggregation layer.

Each :class:`Aggregator` turns one round's :class:`Contribution` set
into a new global state.  All aggregators share the same skeleton --
zero-expand every sub-model to the global shape, accumulate, normalise
-- and differ along two independent axes:

**Residual recovery** (Section III-C / Fig. 7):

- **R2SP** (the paper's contribution): each recovered sub-model has its
  residual model (global minus the dispatched sparse version) added
  back, so every parameter either carries its freshly trained value or
  its pre-round global value.  Pruned parameters survive to be trained
  in later rounds.
- **BSP**: plain averaging of the recovered sub-models without residual
  recovery; positions that a worker pruned contribute zeros to the
  average, so parameters that were ever pruned shrink towards zero --
  the degradation Fig. 7 shows.

**Participation weighting**:

- The uniform variants weight every contribution ``1/N`` -- the paper's
  setting, where all workers hold same-size shards and all participate.
- The ``*_weighted`` variants weight contribution *i* by
  ``num_samples_i / sum_j num_samples_j`` over the round's **actual
  participants**.  Under churn or deadline-induced partial
  participation the participant set varies round to round, so uniform
  ``1/N`` averaging over-counts small shards; sample-count weighting
  keeps the aggregate an unbiased estimate of the population update
  (the FedAvg weighting rule restricted to the present workers).

Weights are renormalised over the participants of each round, so a
round where only two workers arrive averages those two workers'
recovered models (plus residuals, under R2SP) with weights summing
to one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

import numpy as np

from repro.pruning.masks import residual_state_dict
from repro.pruning.plan import PruningPlan
from repro.pruning.structured import (
    recover_state_dict,
    scatter_add_param,
    scatter_add_residual,
)


class AggregationError(ValueError):
    """Base class for typed aggregation failures.

    Subclasses ``ValueError`` so pre-existing callers that catch the
    untyped error keep working; new code should catch the specific
    subclasses below.
    """


class EmptyRoundError(AggregationError):
    """No contribution (or none with positive weight) to aggregate."""


class DuplicateContributionError(AggregationError):
    """Two contributions from the same worker in one round.

    No scheduler produces this legitimately (a worker has at most one
    outstanding dispatch), so a duplicate always signals a bug or an
    injected fault upstream.
    """


class PoisonedUpdateError(AggregationError):
    """A contribution carries NaN/Inf values.

    One poisoned array would silently corrupt the whole global model
    (NaN propagates through the weighted average), so the aggregator
    rejects it -- or, under ``nan_policy="skip"``, drops the offending
    contribution and counts it.
    """


@dataclass
class Contribution:
    """One worker's round output, ready for aggregation.

    ``num_samples`` is the size of the worker's local shard; only the
    weighted aggregators read it (the uniform ones weight every
    contribution equally).

    R2SP-family aggregators need the residual model.  It can be supplied
    in either of two forms: ``residual`` (the materialised
    ``global - sparse`` dict, the legacy slow path) or ``global_state``
    (the frozen pre-round global state, shared by every contribution of
    the round), from which the aggregator folds the residual in-place
    without allocating it.  ``residual`` wins when both are set.
    """

    worker_id: int
    sub_state: Dict[str, np.ndarray]
    plan: PruningPlan
    residual: Optional[Dict[str, np.ndarray]] = None
    num_samples: int = 1
    global_state: Optional[Dict[str, np.ndarray]] = None


class Aggregator:
    """Base class: weighted average of zero-expanded sub-models.

    Subclasses set ``needs_residual`` (R2SP residual recovery) and
    override :meth:`weight` (participation weighting).  ``name`` is the
    scheme string used by :class:`repro.fl.config.FLConfig` and the CLI.
    """

    name: str = "base"
    #: whether contributions must carry a residual model (R2SP family)
    needs_residual: bool = False
    #: when True, use the reference dense path (zero-expand every
    #: contribution via :func:`recover_state_dict`) instead of in-place
    #: scatter-add.  Bitwise-identical output; kept for A/B testing.
    dense: bool = False
    #: what to do with NaN/Inf-poisoned contributions: "raise" (reject
    #: the round with :class:`PoisonedUpdateError`), "skip" (drop the
    #: contribution and count it) or "off" (no finiteness scan)
    nan_policy: str = "raise"
    #: optional :class:`repro.telemetry.MetricsRegistry` the aggregator
    #: counts skipped poisoned updates into (set by the engine)
    metrics = None

    NAN_POLICIES = ("raise", "skip", "off")

    def weight(self, contribution: Contribution) -> float:
        """Unnormalised weight of one contribution (uniform by default)."""
        return 1.0

    def _poisoned_entry(self, contribution: Contribution) -> Optional[str]:
        """Name of the first non-finite uploaded array, or ``None``."""
        for key, value in contribution.sub_state.items():
            if not np.isfinite(value).all():
                return key
        return None

    def aggregate(self, contributions: List[Contribution],
                  template: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Aggregate one round of contributions into a new global state.

        ``template`` supplies the global shapes for zero-expansion.
        Zero-weight contributions (e.g. a worker handed an empty shard
        by a pathological non-IID partition) carry no information and
        are skipped; only a round where *every* weight vanishes is an
        error.  Negative weights are always rejected, as are duplicate
        worker ids (no scheduler produces them legitimately).
        NaN/Inf-poisoned contributions are rejected or skipped per
        ``nan_policy``.
        """
        if not contributions:
            raise EmptyRoundError("cannot aggregate an empty contribution set")
        seen = set()
        for contribution in contributions:
            if contribution.worker_id in seen:
                raise DuplicateContributionError(
                    f"worker {contribution.worker_id} contributed twice in "
                    f"one round"
                )
            seen.add(contribution.worker_id)

        weighted = []
        for contribution in contributions:
            weight = self.weight(contribution)
            if weight < 0.0:
                raise AggregationError(
                    f"negative aggregation weight {weight} for worker "
                    f"{contribution.worker_id}"
                )
            if weight == 0.0:
                continue
            if self.nan_policy != "off":
                poisoned = self._poisoned_entry(contribution)
                if poisoned is not None:
                    if self.nan_policy == "raise":
                        raise PoisonedUpdateError(
                            f"worker {contribution.worker_id} uploaded "
                            f"non-finite values in {poisoned!r}"
                        )
                    if self.metrics is not None:
                        self.metrics.counter(
                            "poisoned_updates_total",
                            worker=contribution.worker_id,
                        ).inc()
                    continue
            weighted.append((contribution, weight))
        if not weighted:
            raise EmptyRoundError(
                "all contributions have non-positive aggregation weight; "
                "nothing to aggregate"
            )

        accumulator: Dict[str, np.ndarray] = {
            key: np.zeros_like(value, dtype=np.float64)
            for key, value in template.items()
        }
        total_weight = 0.0
        for contribution, weight in weighted:
            total_weight += weight

        if self.dense:
            for contribution, weight in weighted:
                self._accumulate_dense(accumulator, contribution, weight,
                                       template)
        else:
            for members in self._cohort_groups(weighted):
                if len(members) == 1:
                    contribution, weight = members[0]
                    self._accumulate_scatter(accumulator, contribution,
                                             weight, template)
                else:
                    self._accumulate_cohort(accumulator, members, template)

        return {
            key: value / total_weight for key, value in accumulator.items()
        }

    def _cohort_groups(self, weighted):
        """Group weighted contributions that share one dispatched cohort.

        Contributions qualify when they share the identical plan object
        and (under R2SP) the identical frozen global snapshot, and carry
        unit weight -- the conditions under which a per-cohort partial
        sum plus a single residual fold is exactly the member-order
        accumulation (see :meth:`_accumulate_cohort`).  Everything else
        stays a singleton group on the per-member scatter path.  Groups
        come back in first-occurrence order.
        """
        groups: Dict[object, list] = {}
        order = []
        for contribution, weight in weighted:
            shareable = (
                weight == 1.0
                and contribution.residual is None
                and (not self.needs_residual
                     or contribution.global_state is not None)
            )
            if shareable:
                key = (id(contribution.plan), id(contribution.global_state))
            else:
                key = ("solo", contribution.worker_id)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((contribution, weight))
        return [groups[key] for key in order]

    def _accumulate_cohort(self, accumulator: Dict[str, np.ndarray],
                           members: list,
                           template: Dict[str, np.ndarray]) -> None:
        """Cohort path: one partial sum + one residual fold per group.

        All member weights are exactly 1.0 (enforced by
        :meth:`_cohort_groups`), so the float64 partial sum accumulates
        the identical addends the per-member path would have scattered,
        and the residual -- identical for every member, since they share
        the plan and the global snapshot -- folds in once with the group
        weight, multiplied in float64 so ``M * g`` is the exact sum of
        ``M`` unit-weight folds.
        """
        first, _ = members[0]
        plan = first.plan
        planned = plan.param_names()
        scatter_start = time.perf_counter() if self.metrics is not None \
            else 0.0

        partial: Dict[str, np.ndarray] = {}
        for contribution, _weight in members:
            for key, sub_value in contribution.sub_state.items():
                existing = partial.get(key)
                if existing is None:
                    partial[key] = sub_value.astype(np.float64)
                else:
                    existing += sub_value

        for key, full_value in template.items():
            entry_info = planned.get(key)
            if entry_info is not None:
                layer_name, suffix = entry_info
                scatter_add_param(accumulator[key], suffix, plan[layer_name],
                                  partial[key], 1.0)
            else:
                if partial[key].shape != full_value.shape:
                    raise ValueError(
                        f"unplanned entry {key!r} changed shape: "
                        f"{partial[key].shape} vs {full_value.shape}"
                    )
                accumulator[key] += partial[key]

        if self.needs_residual:
            global_state = first.global_state
            group_weight = float(len(members))
            for key, (layer_name, suffix) in planned.items():
                if key in accumulator:
                    scatter_add_residual(
                        accumulator[key], suffix, plan[layer_name],
                        global_state[key].astype(np.float64), group_weight,
                    )
        if self.metrics is not None:
            self.metrics.counter(
                "aggregate_cohort_partial_sums_total",
            ).inc()
            self.metrics.histogram("aggregate_scatter_add_s").observe(
                time.perf_counter() - scatter_start
            )

    def _accumulate_dense(self, accumulator: Dict[str, np.ndarray],
                          contribution: Contribution, weight: float,
                          template: Dict[str, np.ndarray]) -> None:
        """Reference path: full zero-expansion per contribution."""
        recovered = recover_state_dict(
            contribution.sub_state, contribution.plan, template
        )
        for key in accumulator:
            accumulator[key] += weight * recovered[key]
        if self.needs_residual:
            residual = self._residual_of(contribution)
            for key in accumulator:
                accumulator[key] += weight * residual[key]

    def _accumulate_scatter(self, accumulator: Dict[str, np.ndarray],
                            contribution: Contribution, weight: float,
                            template: Dict[str, np.ndarray]) -> None:
        """Fast path: indexed in-place accumulation, no full-size
        per-contribution allocations."""
        plan = contribution.plan
        planned = plan.param_names()
        sub_state = contribution.sub_state
        for key, full_value in template.items():
            sub_value = sub_state[key]
            entry_info = planned.get(key)
            if entry_info is not None:
                layer_name, suffix = entry_info
                scatter_add_param(accumulator[key], suffix, plan[layer_name],
                                  sub_value, weight)
            else:
                if sub_value.shape != full_value.shape:
                    raise ValueError(
                        f"unplanned entry {key!r} changed shape: "
                        f"{sub_value.shape} vs {full_value.shape}"
                    )
                accumulator[key] += weight * sub_value
        if self.needs_residual:
            if contribution.residual is not None:
                for key in accumulator:
                    accumulator[key] += weight * contribution.residual[key]
            elif contribution.global_state is not None:
                # The residual is the pre-round global value at pruned
                # positions and zero at kept ones; unplanned keys were
                # dispatched whole so their residual vanishes entirely.
                global_state = contribution.global_state
                for key, (layer_name, suffix) in planned.items():
                    if key in accumulator:
                        scatter_add_residual(
                            accumulator[key], suffix, plan[layer_name],
                            global_state[key], weight,
                        )
            else:
                raise ValueError(
                    f"R2SP needs a residual model for worker "
                    f"{contribution.worker_id}"
                )

    def _residual_of(self, contribution: Contribution) -> Dict[str, np.ndarray]:
        """Materialised residual for the dense reference path."""
        if contribution.residual is not None:
            return contribution.residual
        if contribution.global_state is not None:
            return residual_state_dict(contribution.global_state,
                                       contribution.plan)
        raise ValueError(
            f"R2SP needs a residual model for worker "
            f"{contribution.worker_id}"
        )


class BSPAggregator(Aggregator):
    """Uniform average of recovered sub-models, no residual recovery."""

    name = "bsp"
    needs_residual = False


class R2SPAggregator(Aggregator):
    """Uniform average with residual recovery (the paper's R2SP)."""

    name = "r2sp"
    needs_residual = True


class _SampleWeighted:
    """Mixin: weight each contribution by its shard's sample count."""

    def weight(self, contribution: Contribution) -> float:
        return float(contribution.num_samples)


class WeightedBSPAggregator(_SampleWeighted, BSPAggregator):
    """BSP with sample-count weighting over the round's participants."""

    name = "bsp_weighted"


class WeightedR2SPAggregator(_SampleWeighted, R2SPAggregator):
    """R2SP with sample-count weighting over the round's participants."""

    name = "r2sp_weighted"


#: scheme string -> aggregator class, for config/CLI dispatch
AGGREGATORS: Dict[str, Type[Aggregator]] = {
    cls.name: cls
    for cls in (
        R2SPAggregator, BSPAggregator,
        WeightedR2SPAggregator, WeightedBSPAggregator,
    )
}


def make_aggregator(scheme: str, nan_policy: str = "raise") -> Aggregator:
    """Instantiate the aggregator named by a ``sync_scheme`` string."""
    if nan_policy not in Aggregator.NAN_POLICIES:
        raise ValueError(
            f"nan_policy must be one of {Aggregator.NAN_POLICIES}, "
            f"got {nan_policy!r}"
        )
    try:
        aggregator = AGGREGATORS[scheme]()
    except KeyError:
        raise ValueError(f"unknown aggregation scheme {scheme!r}") from None
    aggregator.nan_policy = nan_policy
    return aggregator
