"""Aggregator classes: the pluggable global-aggregation layer.

Each :class:`Aggregator` turns one round's :class:`Contribution` set
into a new global state.  All aggregators share the same skeleton --
zero-expand every sub-model to the global shape, accumulate, normalise
-- and differ along two independent axes:

**Residual recovery** (Section III-C / Fig. 7):

- **R2SP** (the paper's contribution): each recovered sub-model has its
  residual model (global minus the dispatched sparse version) added
  back, so every parameter either carries its freshly trained value or
  its pre-round global value.  Pruned parameters survive to be trained
  in later rounds.
- **BSP**: plain averaging of the recovered sub-models without residual
  recovery; positions that a worker pruned contribute zeros to the
  average, so parameters that were ever pruned shrink towards zero --
  the degradation Fig. 7 shows.

**Participation weighting**:

- The uniform variants weight every contribution ``1/N`` -- the paper's
  setting, where all workers hold same-size shards and all participate.
- The ``*_weighted`` variants weight contribution *i* by
  ``num_samples_i / sum_j num_samples_j`` over the round's **actual
  participants**.  Under churn or deadline-induced partial
  participation the participant set varies round to round, so uniform
  ``1/N`` averaging over-counts small shards; sample-count weighting
  keeps the aggregate an unbiased estimate of the population update
  (the FedAvg weighting rule restricted to the present workers).

Weights are renormalised over the participants of each round, so a
round where only two workers arrive averages those two workers'
recovered models (plus residuals, under R2SP) with weights summing
to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

import numpy as np

from repro.pruning.plan import PruningPlan
from repro.pruning.structured import recover_state_dict


@dataclass
class Contribution:
    """One worker's round output, ready for aggregation.

    ``num_samples`` is the size of the worker's local shard; only the
    weighted aggregators read it (the uniform ones weight every
    contribution equally).
    """

    worker_id: int
    sub_state: Dict[str, np.ndarray]
    plan: PruningPlan
    residual: Optional[Dict[str, np.ndarray]] = None  # required for R2SP
    num_samples: int = 1


class Aggregator:
    """Base class: weighted average of zero-expanded sub-models.

    Subclasses set ``needs_residual`` (R2SP residual recovery) and
    override :meth:`weight` (participation weighting).  ``name`` is the
    scheme string used by :class:`repro.fl.config.FLConfig` and the CLI.
    """

    name: str = "base"
    #: whether contributions must carry a residual model (R2SP family)
    needs_residual: bool = False

    def weight(self, contribution: Contribution) -> float:
        """Unnormalised weight of one contribution (uniform by default)."""
        return 1.0

    def aggregate(self, contributions: List[Contribution],
                  template: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Aggregate one round of contributions into a new global state.

        ``template`` supplies the global shapes for zero-expansion.
        """
        if not contributions:
            raise ValueError("cannot aggregate an empty contribution set")

        accumulator: Dict[str, np.ndarray] = {
            key: np.zeros_like(value, dtype=np.float64)
            for key, value in template.items()
        }
        total_weight = 0.0
        for contribution in contributions:
            weight = self.weight(contribution)
            if weight <= 0.0:
                raise ValueError(
                    f"non-positive aggregation weight {weight} for worker "
                    f"{contribution.worker_id}"
                )
            total_weight += weight
            recovered = recover_state_dict(
                contribution.sub_state, contribution.plan, template
            )
            for key in accumulator:
                accumulator[key] += weight * recovered[key]
            if self.needs_residual:
                if contribution.residual is None:
                    raise ValueError(
                        f"R2SP needs a residual model for worker "
                        f"{contribution.worker_id}"
                    )
                for key in accumulator:
                    accumulator[key] += weight * contribution.residual[key]

        return {
            key: value / total_weight for key, value in accumulator.items()
        }


class BSPAggregator(Aggregator):
    """Uniform average of recovered sub-models, no residual recovery."""

    name = "bsp"
    needs_residual = False


class R2SPAggregator(Aggregator):
    """Uniform average with residual recovery (the paper's R2SP)."""

    name = "r2sp"
    needs_residual = True


class _SampleWeighted:
    """Mixin: weight each contribution by its shard's sample count."""

    def weight(self, contribution: Contribution) -> float:
        return float(contribution.num_samples)


class WeightedBSPAggregator(_SampleWeighted, BSPAggregator):
    """BSP with sample-count weighting over the round's participants."""

    name = "bsp_weighted"


class WeightedR2SPAggregator(_SampleWeighted, R2SPAggregator):
    """R2SP with sample-count weighting over the round's participants."""

    name = "r2sp_weighted"


#: scheme string -> aggregator class, for config/CLI dispatch
AGGREGATORS: Dict[str, Type[Aggregator]] = {
    cls.name: cls
    for cls in (
        R2SPAggregator, BSPAggregator,
        WeightedR2SPAggregator, WeightedBSPAggregator,
    )
}


def make_aggregator(scheme: str) -> Aggregator:
    """Instantiate the aggregator named by a ``sync_scheme`` string."""
    try:
        return AGGREGATORS[scheme]()
    except KeyError:
        raise ValueError(f"unknown aggregation scheme {scheme!r}") from None
