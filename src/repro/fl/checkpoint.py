"""Checkpoint/resume: byte-identical continuation of a federated run.

A checkpoint snapshots everything a round depends on -- the engine's
RNG streams (``master_rng`` / ``extract_rng`` / churn / sampling, via
``bit_generator.state``), every worker's runtime state (shared
iterator/worker generator position, timing-jitter generator, epoch
permutation and cursor), the strategy object wholesale (for FedMP that
is each E-UCB agent's partition tree, ``_RegionStats`` and pending
play), the per-worker error-feedback memories, the global model state
together with any rng-bearing module generators, the simulated clock,
the training history, and the scheduler's outstanding
:class:`~repro.fl.schedulers.base.DispatchQueue` (in-flight completion
events).  Everything is serialised in ONE pickle so shared-object
identity survives: a cached sub-model template, the cohort that points
at it, and the queued dispatches that point at the cohort come back as
the same graph, not as divergent copies.

The on-disk format is versioned: ``MAGIC + little-endian uint32
format version + pickle payload``, written atomically (same-directory
temp file + flush + fsync + ``os.replace``) so a kill mid-write can
never leave a truncated checkpoint behind.  The loader validates the
header before unpickling and rejects unknown versions with a typed
:class:`CheckpointVersionError`.

What is deliberately NOT captured: telemetry (traces, metric
counters) restarts empty in the resumed process, and wall-clock hook
measurements (``extras["wall_time_s"]``) are host time -- both are
exactly the fields :func:`repro.verify.differential.
normalised_history_bytes` masks out, so a resumed run's normalised
history is still byte-identical to the uninterrupted run's.
"""

from __future__ import annotations

import pickle
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.atomicio import atomic_write_bytes

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointVersionError",
    "ResumeOverrideWarning",
    "Checkpoint",
    "capture_engine_state",
    "apply_resume_overrides",
    "encode_checkpoint",
    "decode_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "resolve_checkpoint",
    "CheckpointManager",
]

#: file magic; the trailing byte versions the *container*, the struct
#: field below versions the *payload schema*
MAGIC = b"FEDMPCKPT\x00"
#: current payload schema version; bump on any incompatible change
FORMAT_VERSION = 1

_VERSION_STRUCT = struct.Struct("<I")
_HEADER_LEN = len(MAGIC) + _VERSION_STRUCT.size


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint's format version is not supported by this code."""


class ResumeOverrideWarning(UserWarning):
    """A resumed run is overriding checkpointed config fields from the
    command line; the continuation is no longer byte-identical to the
    uninterrupted original."""


@dataclass
class Checkpoint:
    """One decoded checkpoint: schema version plus the state payload."""

    version: int
    payload: Dict[str, object]
    path: Optional[Path] = None

    @property
    def config(self):
        return self.payload["config"]

    @property
    def scheduler(self) -> str:
        return self.payload["scheduler"]

    @property
    def next_round(self) -> int:
        return int(self.payload["next_round"])

    @property
    def meta(self) -> Optional[dict]:
        return self.payload.get("meta")


def _generator_state(rng) -> dict:
    return rng.bit_generator.state


def capture_engine_state(engine, scheduler: str, next_round: int,
                         queue=None) -> Dict[str, object]:
    """Snapshot an engine (and its scheduler's outstanding queue) at a
    round boundary.

    ``next_round`` is the first round the resumed run will execute;
    ``queue`` carries the in-flight dispatches of the event-driven
    schedulers (None under the synchronous barrier, whose rounds never
    span a boundary).  The returned dict is self-contained and pickled
    as one object by :func:`encode_checkpoint`.
    """
    hook_states = []
    for hook in engine.hooks.hooks:
        capture = getattr(hook, "checkpoint_state", None)
        state = capture() if capture is not None else None
        if state is not None:
            hook_states.append((type(hook).__name__, state))
    module_rngs = {
        name: _generator_state(module.rng)
        for name, module in engine.model.named_modules()
        if getattr(module, "rng", None) is not None
    }
    # service-mode extras (fleet roster, registration counters): only
    # present when a FedMPService installed a provider on the engine
    extra_provider = getattr(engine, "checkpoint_extra_provider", None)
    service_state = extra_provider() if extra_provider is not None else None
    return {
        "format_version": FORMAT_VERSION,
        "meta": engine.checkpoint_meta,
        "config": engine.config,
        "scheduler": scheduler,
        "next_round": int(next_round),
        "rng": {
            "master": _generator_state(engine.master_rng),
            "extract": _generator_state(engine.extract_rng),
            "churn": _generator_state(engine._churn_rng),
            "sampling": _generator_state(engine._sampling_rng),
        },
        "model_state": engine.model.state_dict(),
        "module_rngs": module_rngs,
        "workers": engine.worker_runtime_states(),
        "strategy": engine.strategy,
        "error_feedback": engine.error_feedback,
        "clock": engine.clock,
        "history": engine.history,
        "prev_train_loss": engine._prev_train_loss,
        "plan_cache": engine._plan_cache,
        "submodel_cache": engine._submodel_cache,
        "round_state": engine._round_state,
        "hooks": hook_states,
        "queue": queue,
        "service": service_state,
    }


def apply_resume_overrides(checkpoint: Checkpoint, **overrides) -> list:
    """Override checkpointed config fields for a resumed run.

    ``repro run --resume`` used to silently ignore explicit CLI flags
    like ``--clients-per-round`` (the checkpoint's config always won).
    This applies the given field overrides to the checkpoint's config
    *in the payload itself* -- so :class:`~repro.fl.engine.Engine`'s
    restore-time config equality check sees one consistent config --
    and emits a :class:`ResumeOverrideWarning` naming every field whose
    value actually changed.  Returns the list of changed field names
    (empty when every override already matched, in which case no
    warning is emitted and the continuation stays byte-identical).
    """
    import dataclasses
    import warnings

    config = checkpoint.payload["config"]
    changed = [
        name for name in sorted(overrides)
        if getattr(config, name) != overrides[name]
    ]
    if not changed:
        return []
    checkpoint.payload["config"] = dataclasses.replace(
        config, **{name: overrides[name] for name in changed}
    )
    details = ", ".join(
        f"{name}: {getattr(config, name)!r} -> {overrides[name]!r}"
        for name in changed
    )
    warnings.warn(
        f"resume overrides checkpointed config field(s) {details}; "
        f"the continuation will diverge from the original run",
        ResumeOverrideWarning,
        stacklevel=2,
    )
    return changed


def encode_checkpoint(payload: Dict[str, object]) -> bytes:
    """Serialise a payload into the versioned container format."""
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint payload is not picklable: {exc}"
        ) from exc
    return MAGIC + _VERSION_STRUCT.pack(FORMAT_VERSION) + blob


def decode_checkpoint(data: bytes, source: str = "<bytes>") -> Checkpoint:
    """Validate the container header, then unpickle the payload.

    Header validation happens *before* any unpickling so a wrong file
    (or a future format) fails with a typed error, never with an
    arbitrary pickle exception -- and never executes a foreign pickle.
    """
    if len(data) < _HEADER_LEN or not data.startswith(MAGIC):
        raise CheckpointError(
            f"{source} is not a FedMP checkpoint (bad magic)"
        )
    (version,) = _VERSION_STRUCT.unpack_from(data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(
            f"{source} has checkpoint format version {version}; this "
            f"build supports only version {FORMAT_VERSION}"
        )
    try:
        payload = pickle.loads(data[_HEADER_LEN:])
    except Exception as exc:
        raise CheckpointError(
            f"{source} is truncated or corrupt: {exc}"
        ) from exc
    return Checkpoint(version=version, payload=payload)


def save_checkpoint(path: Union[str, Path],
                    payload: Dict[str, object]) -> int:
    """Atomically write a checkpoint file; returns the bytes written."""
    data = encode_checkpoint(payload)
    atomic_write_bytes(path, data)
    return len(data)


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read and decode one checkpoint file."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    checkpoint = decode_checkpoint(data, source=str(path))
    checkpoint.path = path
    return checkpoint


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The highest-round ``ckpt-*.ckpt`` in a directory, or None."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: Optional[Path] = None
    best_round = -1
    for candidate in directory.glob("ckpt-*.ckpt"):
        stem = candidate.name[len("ckpt-"):-len(".ckpt")]
        try:
            round_index = int(stem)
        except ValueError:
            continue
        if round_index > best_round:
            best_round = round_index
            best = candidate
    return best


def resolve_checkpoint(path: Union[str, Path]) -> Path:
    """A checkpoint file from a file-or-directory argument.

    Given a directory, picks its latest checkpoint; given a file,
    returns it.  Raises :class:`CheckpointError` when nothing usable
    exists.
    """
    path = Path(path)
    if path.is_dir():
        found = latest_checkpoint(path)
        if found is None:
            raise CheckpointError(
                f"no ckpt-*.ckpt files found in directory {path}"
            )
        return found
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    return path


class CheckpointManager:
    """Cadenced, telemetered checkpoint writes for one engine.

    Owned by the engine when ``FLConfig.checkpoint_dir`` is set; the
    scheduler reports each completed round and the manager writes
    ``ckpt-<next_round>.ckpt`` whenever the cadence
    (``FLConfig.checkpoint_every``) is due or the run is finishing.
    Emits ``checkpoint_write_s`` (histogram), ``checkpoint_bytes``
    (gauge, last size) and ``checkpoints_written_total`` /
    ``checkpoint_bytes_total`` (counters).
    """

    def __init__(self, directory: Union[str, Path], every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self.directory = Path(directory)
        self.every = int(every)
        self.last_path: Optional[Path] = None

    def maybe_save(self, engine, scheduler: str, next_round: int,
                   queue=None, final: bool = False) -> Optional[Path]:
        """Write a checkpoint if the cadence is due (or ``final``)."""
        if not final and next_round % self.every != 0:
            return None
        return self.save(engine, scheduler, next_round, queue=queue)

    def save(self, engine, scheduler: str, next_round: int,
             queue=None) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"ckpt-{next_round:06d}.ckpt"
        start = time.perf_counter()
        payload = capture_engine_state(engine, scheduler, next_round,
                                       queue=queue)
        size = save_checkpoint(path, payload)
        elapsed = time.perf_counter() - start
        metrics = engine.telemetry.metrics
        metrics.histogram("checkpoint_write_s").observe(elapsed)
        metrics.gauge("checkpoint_bytes").set(float(size))
        metrics.counter("checkpoints_written_total").inc()
        metrics.counter("checkpoint_bytes_total").inc(size)
        self.last_path = path
        return path
