"""Round hooks: the engine's instrumentation layer.

A :class:`RoundHook` receives callbacks at the four observable points
of every round -- sub-model dispatch, contribution arrival, global
aggregation, and round close -- regardless of which scheduler drives
the round.  Hooks replace reaching into runner internals: the CLI and
the benchmarks attach the built-in :class:`TimingHook` and
:class:`CommVolumeHook` and read the per-round numbers they publish
into :attr:`repro.fl.history.RoundRecord.extras`.

Hooks must not mutate models, contributions or the clock; the engine
treats them as pure observers (``on_round_end`` may add ``extras``
entries to the record it receives, which is the supported way to
publish per-round measurements).  The one sanctioned exception is
``before_aggregate``: a hook may return a rewritten contribution list
there, which is how the verification subsystem's fault injector
(:mod:`repro.verify.faults`) drops, duplicates or delays updates.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.fl.aggregation import Contribution
from repro.fl.history import RoundRecord


class RoundHook:
    """No-op base class; subclasses override the callbacks they need.

    ``dispatch`` arguments are :class:`repro.fl.engine.Dispatch`
    instances (duck-typed here to avoid an import cycle).
    """

    def attach(self, engine) -> None:
        """Called once when the engine composes its hook list.

        ``engine`` is the :class:`repro.fl.engine.Engine` driving the
        run; hooks that need run-wide context (the strategy for bandit
        snapshots, the worker pool) keep a reference here.  Stateless
        hooks ignore it.
        """

    def on_dispatch(self, round_index: int, dispatch) -> None:
        """A sub-model was pruned, priced and sent to a worker."""

    def on_contribution(self, round_index: int, dispatch,
                        contribution: Contribution,
                        train_loss: float) -> None:
        """A worker finished local training and uploaded its update."""

    def before_aggregate(self, round_index: int,
                         contributions: List[Contribution],
                         ) -> Optional[List[Contribution]]:
        """The round's contributions are about to be aggregated.

        Returning a list replaces the round's contribution set (the
        fault-injection interception point); returning ``None`` leaves
        it untouched, which is what every pure observer should do.
        """
        return None

    def on_aggregate(self, round_index: int,
                     contributions: List[Contribution]) -> None:
        """The PS aggregated the round's contributions into the model."""

    def on_round_end(self, record: RoundRecord) -> None:
        """The round's record is complete; ``record.extras`` is open."""

    def checkpoint_state(self) -> Optional[dict]:
        """Picklable cross-round state for checkpoint/resume.

        Return ``None`` (the default) for stateless hooks.  Stateful
        hooks whose accumulators feed ``record.extras`` in later rounds
        must return them here and apply them in :meth:`restore_state`,
        otherwise a resumed run's extras diverge from the uninterrupted
        run's.
        """
        return None

    def restore_state(self, state: dict) -> None:
        """Apply a :meth:`checkpoint_state` snapshot (default: no-op)."""


class HookList(RoundHook):
    """Composite hook: forwards every callback to its children in order."""

    def __init__(self, hooks: Optional[Iterable[RoundHook]] = None) -> None:
        self.hooks: List[RoundHook] = list(hooks or [])

    def attach(self, engine) -> None:
        # tolerate structurally-typed hooks that predate attach()
        for hook in self.hooks:
            attach = getattr(hook, "attach", None)
            if attach is not None:
                attach(engine)

    def on_dispatch(self, round_index: int, dispatch) -> None:
        for hook in self.hooks:
            hook.on_dispatch(round_index, dispatch)

    def on_contribution(self, round_index: int, dispatch,
                        contribution: Contribution,
                        train_loss: float) -> None:
        for hook in self.hooks:
            hook.on_contribution(round_index, dispatch, contribution,
                                 train_loss)

    def before_aggregate(self, round_index: int,
                         contributions: List[Contribution],
                         ) -> List[Contribution]:
        for hook in self.hooks:
            interceptor = getattr(hook, "before_aggregate", None)
            if interceptor is None:
                continue
            replaced = interceptor(round_index, contributions)
            if replaced is not None:
                contributions = replaced
        return contributions

    def on_aggregate(self, round_index: int,
                     contributions: List[Contribution]) -> None:
        for hook in self.hooks:
            hook.on_aggregate(round_index, contributions)

    def on_round_end(self, record: RoundRecord) -> None:
        for hook in self.hooks:
            hook.on_round_end(record)


class TimingHook(RoundHook):
    """Wall-clock (host) time per round, published as
    ``extras["wall_time_s"]``.

    Simulated time already lives in ``RoundRecord.round_time_s``; this
    hook measures how long the *host* spent producing the round
    (decision, pruning, local training, aggregation), which is what the
    overhead benchmarks report.

    Attribution is **disjoint**: round ``k`` is charged the interval
    from the previous round's end (the hook's first observed dispatch
    for the opening round) to round ``k``'s own end.  Under async or
    semi-sync scheduling, work performed before round ``k`` closes --
    including dispatches already labelled ``k+1`` -- is therefore
    charged to round ``k`` and never again to ``k+1``, so
    ``total_wall_time_s`` always equals the sum of the per-round
    extras.  (Keying starts by dispatch round label instead would
    double-charge the span between a carried-over round's early
    re-dispatches and its end.)
    """

    def __init__(self) -> None:
        self._origin: Optional[float] = None
        self._last_end: Optional[float] = None
        self.total_wall_time_s = 0.0

    def on_dispatch(self, round_index: int, dispatch) -> None:
        if self._origin is None:
            self._origin = time.perf_counter()

    def on_round_end(self, record: RoundRecord) -> None:
        end = time.perf_counter()
        if self._last_end is not None:
            start = self._last_end
        elif self._origin is not None:
            start = self._origin
        else:
            start = end
        wall = max(0.0, end - start)
        record.extras["wall_time_s"] = wall
        self.total_wall_time_s += wall
        self._last_end = end

    def checkpoint_state(self) -> dict:
        # _origin/_last_end are perf_counter readings -- meaningless in
        # another process -- so only the accumulated total survives; the
        # resumed process restarts its own disjoint intervals.
        return {"total_wall_time_s": self.total_wall_time_s}

    def restore_state(self, state: dict) -> None:
        self.total_wall_time_s = float(state["total_wall_time_s"])
        self._origin = None
        self._last_end = None


class CommVolumeHook(RoundHook):
    """Communication volume per round, in transmitted parameters.

    Publishes ``extras["download_params"]`` (PS -> workers, counted at
    dispatch) and ``extras["upload_params"]`` (workers -> PS, counted
    at contribution arrival).  With asynchronous or semi-synchronous
    scheduling a dispatch is counted in the round that *sends* it while
    its upload lands in the round that aggregates it, so per-round
    numbers need not match pairwise; the running totals always do.
    """

    def __init__(self) -> None:
        self._download: Dict[int, float] = {}
        self._upload: Dict[int, float] = {}
        self.total_download_params = 0.0
        self.total_upload_params = 0.0

    def on_dispatch(self, round_index: int, dispatch) -> None:
        volume = float(dispatch.download_params)
        self._download[round_index] = self._download.get(round_index, 0.0) \
            + volume
        self.total_download_params += volume

    def on_contribution(self, round_index: int, dispatch,
                        contribution: Contribution,
                        train_loss: float) -> None:
        volume = float(dispatch.upload_params)
        self._upload[round_index] = self._upload.get(round_index, 0.0) \
            + volume
        self.total_upload_params += volume

    def on_round_end(self, record: RoundRecord) -> None:
        record.extras["download_params"] = self._download.pop(
            record.round_index, 0.0
        )
        record.extras["upload_params"] = self._upload.pop(
            record.round_index, 0.0
        )

    def checkpoint_state(self) -> dict:
        # the pending dicts are load-bearing for resume byte-identity:
        # async/semi-sync label re-dispatch volume with round k+1 while
        # round k is closing, so a resumed run must inherit them to
        # reproduce round k+1's extras exactly
        return {
            "download": dict(self._download),
            "upload": dict(self._upload),
            "total_download_params": self.total_download_params,
            "total_upload_params": self.total_upload_params,
        }

    def restore_state(self, state: dict) -> None:
        self._download = {int(k): float(v)
                          for k, v in state["download"].items()}
        self._upload = {int(k): float(v)
                        for k, v in state["upload"].items()}
        self.total_download_params = float(state["total_download_params"])
        self.total_upload_params = float(state["total_upload_params"])

    @property
    def total_params(self) -> float:
        return self.total_download_params + self.total_upload_params

    @property
    def pending_download_params(self) -> float:
        """Dispatched volume not yet attributed to a finished round.

        Non-zero after a run when outstanding dispatches were labelled
        with a round that never closed (async/semi-sync tails), so
        ``total_download_params == sum(per-round extras) + pending``.
        """
        return float(sum(self._download.values()))

    @property
    def pending_upload_params(self) -> float:
        """Uploaded volume not yet attributed to a finished round.

        Always 0 after a completed run: uploads are recorded in the
        round that aggregates them, and that round always closes.
        """
        return float(sum(self._upload.values()))
