"""Per-round records and the reductions the paper's figures report."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RoundRecord:
    """Everything measured in one training round."""

    round_index: int
    sim_time_s: float            # simulated clock after this round
    round_time_s: float          # this round's duration (Eq. 6)
    metric: Optional[float]      # accuracy (or -perplexity) if evaluated
    eval_loss: Optional[float]
    train_loss: float
    ratios: Dict[int, float]     # worker -> pruning ratio
    completion_times: Dict[int, float]
    discarded: List[int] = field(default_factory=list)
    overhead_s: float = 0.0      # decision + pruning time on the PS
    #: stragglers whose dispatches carried over to the next round
    #: (semi-synchronous scheduling only; empty otherwise)
    carried_over: List[int] = field(default_factory=list)
    #: per-cohort aggregates (ratio/cluster/members/num_samples plus
    #: completion-time min/mean/max) recorded instead of the O(fleet)
    #: ``ratios``/``completion_times`` dicts when
    #: ``FLConfig.history_detail`` resolves to ``"cohort"``; ``None``
    #: under member-level detail
    cohorts: Optional[List[Dict[str, Any]]] = None
    #: free-form per-round measurements published by round hooks.
    #: Values must be JSON-serialisable (numbers, strings, and nested
    #: lists/dicts thereof): scalars like ``wall_time_s`` sit next to
    #: structured payloads like the per-worker E-UCB snapshot under
    #: ``"eucb"``, and :mod:`repro.io` round-trips them all.
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Round-by-round history of one run, plus figure-ready reductions.

    ``higher_is_better`` is True for accuracy and False for perplexity
    (where ``metric`` stores the perplexity directly).
    """

    strategy: str
    model_name: str
    higher_is_better: bool = True
    rounds: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    # ------------------------------------------------------------------
    # reductions used by the figures/tables
    # ------------------------------------------------------------------
    def _reached(self, metric: float, target: float) -> bool:
        if self.higher_is_better:
            return metric >= target
        return metric <= target

    def time_to_target(self, target: float) -> Optional[float]:
        """Simulated seconds until the eval metric first reaches
        ``target``; ``None`` when never reached (Figs. 8-10, 12)."""
        for record in self.rounds:
            if record.metric is not None and self._reached(record.metric, target):
                return record.sim_time_s
        return None

    def rounds_to_target(self, target: float) -> Optional[int]:
        for record in self.rounds:
            if record.metric is not None and self._reached(record.metric, target):
                return record.round_index + 1
        return None

    def metric_at_time(self, budget_s: float) -> Optional[float]:
        """Best eval metric achieved within a time budget (Table III)."""
        best: Optional[float] = None
        for record in self.rounds:
            if record.sim_time_s > budget_s:
                break
            if record.metric is None:
                continue
            if best is None or (
                record.metric > best if self.higher_is_better
                else record.metric < best
            ):
                best = record.metric
        return best

    def final_metric(self) -> Optional[float]:
        for record in reversed(self.rounds):
            if record.metric is not None:
                return record.metric
        return None

    def accuracy_curve(self) -> List[tuple]:
        """(sim_time, metric) points for evaluated rounds (Fig. 6)."""
        return [
            (record.sim_time_s, record.metric)
            for record in self.rounds if record.metric is not None
        ]

    def round_curve(self) -> List[tuple]:
        """(round_index, metric) points (Fig. 7)."""
        return [
            (record.round_index, record.metric)
            for record in self.rounds if record.metric is not None
        ]

    def mean_round_time(self) -> float:
        if not self.rounds:
            return 0.0
        return sum(r.round_time_s for r in self.rounds) / len(self.rounds)

    def percentile_round_time(self, p: float) -> float:
        """p-th percentile of per-round durations (Eq. 6 tail view).

        Linear interpolation between order statistics; 0 with no
        rounds.  ``p`` is in percent, e.g. ``percentile_round_time(95)``
        is the straggler-dominated tail the semi-sync deadline targets.
        """
        if not self.rounds:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        times = sorted(record.round_time_s for record in self.rounds)
        if len(times) == 1:
            return times[0]
        rank = (p / 100.0) * (len(times) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(times) - 1)
        fraction = rank - low
        return times[low] + fraction * (times[high] - times[low])

    def mean_overhead(self) -> float:
        """Average PS-side algorithm overhead per round (Fig. 11)."""
        if not self.rounds:
            return 0.0
        return sum(r.overhead_s for r in self.rounds) / len(self.rounds)

    @property
    def total_overhead_s(self) -> float:
        """Total PS-side decision + pruning time across the run."""
        return sum(r.overhead_s for r in self.rounds)

    @property
    def total_time_s(self) -> float:
        return self.rounds[-1].sim_time_s if self.rounds else 0.0
