"""Scheduler interface: who aggregates when.

A :class:`Scheduler` drives an :class:`repro.fl.engine.Engine` through
its rounds; the engine supplies the building blocks (dispatch, train,
aggregate, record), the scheduler supplies the synchronisation rule:

- :class:`~repro.fl.schedulers.sync.SynchronousScheduler` -- barrier
  per round (Eq. 6), optional deadline-based straggler discarding;
- :class:`~repro.fl.schedulers.asynchronous.AsynchronousScheduler` --
  aggregate the first ``m`` arrivals (Algorithm 2);
- :class:`~repro.fl.schedulers.semi_sync.SemiSynchronousScheduler` --
  aggregate whoever arrives before a per-round deadline and carry
  stragglers over.

All three are event-driven over :class:`repro.simulation.clock.
SimulationClock`: a dispatched sub-model is an event that fires at
``dispatch_time + costs.total_s``, and :class:`DispatchQueue` orders
the outstanding events by that finish time.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.fl.config import FLConfig
from repro.fl.engine import Dispatch, Engine
from repro.fl.history import TrainingHistory


class Scheduler:
    """Base class for round schedulers."""

    name: str = "base"

    def run(self, engine: Engine) -> TrainingHistory:
        """Drive the engine to completion and return its history."""
        raise NotImplementedError


class DispatchQueue:
    """Outstanding dispatches as a min-heap of completion events.

    Each dispatch is one event firing at ``dispatch_time +
    costs.total_s``; popping the next arrival is O(log n) instead of
    the O(n log n) re-sort of the previous list-based queue, so
    event-driven rounds cost O(sampled) heap traffic rather than
    O(fleet) scans.  The heap is keyed ``(finish_time, insertion
    sequence)``; the sequence tiebreak reproduces the previous
    stable-sort order exactly, keeping event-driven runs bitwise
    reproducible.

    The member set may change between events (service-mode live
    churn): :meth:`discard` removes a worker's outstanding dispatch
    immediately, its heap entry turning *stale*.  Stale entries are
    skipped lazily -- an entry is live only while it is still the
    worker's registered dispatch -- so discarding is O(1) and the heap
    order of the surviving events is untouched.
    """

    def __init__(self) -> None:
        self._outstanding: Dict[int, Dispatch] = {}
        self._heap: List[Tuple[float, int, Dispatch]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._outstanding)

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._outstanding

    @property
    def worker_ids(self) -> List[int]:
        return list(self._outstanding)

    def add(self, dispatch: Dispatch) -> None:
        if dispatch.worker_id in self._outstanding:
            raise ValueError(
                f"worker {dispatch.worker_id} already has an outstanding "
                f"dispatch"
            )
        self._outstanding[dispatch.worker_id] = dispatch
        heapq.heappush(self._heap, (dispatch.finish_time, self._seq, dispatch))
        self._seq += 1

    def discard(self, worker_id: int) -> Optional[Dispatch]:
        """Drop a worker's outstanding dispatch (it left mid-flight).

        Returns the discarded dispatch, or ``None`` if the worker had
        nothing outstanding.  The heap entry is invalidated lazily.
        """
        return self._outstanding.pop(worker_id, None)

    def _drop_stale(self) -> None:
        while self._heap:
            dispatch = self._heap[0][2]
            if self._outstanding.get(dispatch.worker_id) is dispatch:
                return
            heapq.heappop(self._heap)

    def earliest_finish(self) -> float:
        """Finish time of the next arrival; the queue must be non-empty."""
        self._drop_stale()
        return self._heap[0][0]

    def _pop(self) -> Dispatch:
        self._drop_stale()
        _, _, dispatch = heapq.heappop(self._heap)
        del self._outstanding[dispatch.worker_id]
        return dispatch

    def pop_first(self, m: int) -> List[Dispatch]:
        """Remove and return the ``m`` earliest-finishing dispatches."""
        return [self._pop() for _ in range(min(m, len(self._outstanding)))]

    def pop_until(self, deadline: float) -> List[Dispatch]:
        """Remove and return every dispatch finishing at or before
        ``deadline``, earliest first."""
        arrivals = []
        while True:
            self._drop_stale()
            if not self._heap or self._heap[0][0] > deadline:
                return arrivals
            arrivals.append(self._pop())


def make_scheduler(config: FLConfig) -> Scheduler:
    """Build the scheduler selected by ``config``.

    ``config.scheduler`` picks the rule explicitly; the default
    ``"auto"`` derives it from the legacy knobs (``async_m`` set ->
    asynchronous, ``semi_sync_deadline_s`` set -> semi-synchronous,
    otherwise synchronous), so pre-engine configs keep working.
    """
    from repro.fl.schedulers.asynchronous import AsynchronousScheduler
    from repro.fl.schedulers.semi_sync import SemiSynchronousScheduler
    from repro.fl.schedulers.sync import SynchronousScheduler

    name: Optional[str] = config.scheduler
    if name in (None, "auto"):
        if config.async_m is not None:
            name = "async"
        elif config.semi_sync_deadline_s is not None:
            name = "semi_sync"
        else:
            name = "sync"

    if name == "sync":
        return SynchronousScheduler()
    if name == "async":
        if config.async_m is None:
            raise ValueError(
                "scheduler='async' requires FLConfig.async_m to be set"
            )
        return AsynchronousScheduler(config.async_m)
    if name == "semi_sync":
        if config.semi_sync_deadline_s is None:
            raise ValueError(
                "scheduler='semi_sync' requires FLConfig.semi_sync_deadline_s"
            )
        return SemiSynchronousScheduler(config.semi_sync_deadline_s)
    raise ValueError(f"unknown scheduler {name!r}")
