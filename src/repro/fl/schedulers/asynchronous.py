"""Asynchronous scheduling: aggregate the first ``m`` arrivals
(Algorithm 2).

Every worker always has an outstanding dispatch; the PS wakes up when
the ``m``-th earliest one finishes, aggregates exactly those ``m``
contributions, and immediately re-dispatches fresh sub-models to the
workers that just arrived.  Slow workers keep training across several
global rounds instead of blocking them.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.fl.aggregation import EmptyRoundError
from repro.fl.checkpoint import CheckpointError
from repro.fl.engine import Engine
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.schedulers.base import DispatchQueue, Scheduler
from repro.fl.strategies.base import RoundObservation
from repro.simulation.timing import RoundCosts


class AsynchronousScheduler(Scheduler):
    """First-``m``-arrivals aggregation (the paper's asynchronous FedMP)."""

    name = "async"

    def __init__(self, m: int) -> None:
        if m <= 0:
            raise ValueError(f"async m must be positive, got {m}")
        self.m = m

    def run(self, engine: Engine) -> TrainingHistory:
        config = engine.config
        m = self.m
        resume = engine.take_resume(self.name)
        if resume is not None:
            # the bootstrap already ran in the original process: the
            # checkpoint carries its in-flight dispatches and every RNG
            # stream at its post-bootstrap position
            outstanding = resume["queue"]
            if outstanding is None:
                raise CheckpointError(
                    "async checkpoint is missing its dispatch queue"
                )
            start_round = resume["next_round"]
        else:
            start_round = 0
            # with client sampling only the bootstrap sample keeps
            # cycling through dispatch -> arrival -> re-dispatch, so the
            # first-m rule must fit inside the sample, not just the fleet
            # (under a live roster, only workers actually present at
            # round 0 can be dispatched to)
            candidates = (
                engine.present_workers(0)
                if engine.membership_provider is not None
                else engine.worker_ids
            )
            pool = engine.sample_clients(candidates, 0)
            if m > len(pool):
                raise ValueError(
                    f"async_m={m} exceeds the number of participating "
                    f"workers ({len(pool)})"
                )
            outstanding = DispatchQueue()
            with engine.telemetry.span("decide", round=0, bootstrap=True,
                                       workers=len(pool)):
                initial_ratios = engine.strategy.select_ratios(
                    0, worker_ids=pool
                )
            for dispatch in engine.dispatch_many(
                initial_ratios, engine.clock.now, 0
            ).values():
                outstanding.add(dispatch)

        for round_index in range(start_round, config.max_rounds):
            with engine.telemetry.span("round", round=round_index,
                                       scheduler=self.name) as round_span:
                arrivals = outstanding.pop_first(m)
                if not arrivals:
                    # every in-flight dispatch was discarded by live
                    # leaves: nothing can ever arrive again
                    raise EmptyRoundError(
                        f"round {round_index}: the dispatch queue is "
                        f"empty -- all in-flight workers left"
                    )
                round_span.set("arrivals", len(arrivals))
                round_span.set("outstanding", len(outstanding))
                now = arrivals[-1].finish_time
                previous_now = engine.clock.now
                engine.clock.advance_to(max(now, previous_now))
                engine.clock.mark_round()

                trained = engine.train_all(arrivals, round_index)
                contributions = [contribution for contribution, _ in trained]
                train_losses = [loss for _, loss in trained]
                costs: Dict[int, RoundCosts] = {}
                # the ratios actually aggregated this round -- recorded
                # before re-dispatch overwrites the workers' assignments
                arrival_ratios: Dict[int, float] = {}
                for dispatch in arrivals:
                    costs[dispatch.worker_id] = dispatch.costs
                    arrival_ratios[dispatch.worker_id] = dispatch.ratio
                engine.aggregate(contributions, round_index)

                mean_train_loss = float(np.mean(train_losses))
                delta_loss = engine.delta_loss(mean_train_loss)
                engine.strategy.observe_round(RoundObservation(
                    round_index=round_index, costs=costs,
                    delta_loss=delta_loss,
                ))

                arrived_ids = sorted(costs)
                overhead_start = time.perf_counter()
                if engine.membership_provider is not None:
                    # live roster: arrived workers that left are not
                    # re-dispatched; joiners (present, nothing in
                    # flight) enter the cycle here
                    present = set(
                        engine.present_workers(round_index + 1)
                    )
                    redispatch_ids = sorted(
                        wid for wid in engine.worker_ids
                        if wid in present and wid not in outstanding
                    )
                else:
                    redispatch_ids = arrived_ids
                with engine.telemetry.span("decide", round=round_index + 1,
                                           workers=len(redispatch_ids)):
                    new_ratios = engine.strategy.select_ratios(
                        round_index + 1, worker_ids=redispatch_ids
                    )
                for dispatch in engine.dispatch_many(
                    new_ratios, engine.clock.now, round_index + 1
                ).values():
                    outstanding.add(dispatch)
                overhead_s = time.perf_counter() - overhead_start

                is_last = round_index == config.max_rounds - 1
                metric, eval_loss = engine.evaluate(round_index,
                                                    force=is_last)
                ratios_rec, times_rec, cohorts_rec = engine.round_detail(
                    {wid: arrival_ratios[wid] for wid in arrived_ids},
                    {wid: cost.total_s for wid, cost in costs.items()},
                    {d.worker_id: d for d in arrivals},
                )
                record = RoundRecord(
                    round_index=round_index, sim_time_s=engine.clock.now,
                    round_time_s=engine.clock.now - previous_now,
                    metric=metric, eval_loss=eval_loss,
                    train_loss=mean_train_loss,
                    ratios=ratios_rec, completion_times=times_rec,
                    overhead_s=overhead_s, cohorts=cohorts_rec,
                )
                engine.finish_round(record)
                round_span.set("sim_time_s", engine.clock.now)
                round_span.set("round_time_s", record.round_time_s)
            stop = engine.should_stop(record)
            engine.maybe_checkpoint(self.name, round_index + 1,
                                    queue=outstanding, stop=stop)
            if stop or engine.interrupt_requested:
                break
        return engine.history
