"""Synchronous scheduling: one barrier per round (Fig. 1 / Eq. 6).

Every present worker receives a personalised sub-model, the round lasts
until the slowest accepted worker finishes, and all accepted
contributions are aggregated together.  With a
:class:`~repro.simulation.faults.DeadlinePolicy` configured
(``FLConfig.deadline_quorum``), stragglers past the deadline are
discarded from the round instead of stretching it.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.fl.aggregation import EmptyRoundError
from repro.fl.engine import Engine
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.schedulers.base import Scheduler
from repro.fl.strategies.base import RoundObservation


class SynchronousScheduler(Scheduler):
    """Barrier rounds with optional deadline-based straggler discard."""

    name = "sync"

    def run(self, engine: Engine) -> TrainingHistory:
        config = engine.config
        resume = engine.take_resume(self.name)
        start_round = resume["next_round"] if resume is not None else 0
        for round_index in range(start_round, config.max_rounds):
            with engine.telemetry.span("round", round=round_index,
                                       scheduler=self.name) as round_span:
                present = engine.present_workers(round_index)
                if not present:
                    raise EmptyRoundError(
                        f"round {round_index}: no workers are present"
                    )
                sampled = engine.sample_clients(present, round_index)
                round_span.set("present", len(present))
                round_span.set("sampled", len(sampled))
                overhead_start = time.perf_counter()
                with engine.telemetry.span("decide", round=round_index,
                                           workers=len(sampled)):
                    ratios = engine.strategy.select_ratios(
                        round_index, worker_ids=sampled
                    )
                dispatches = engine.dispatch_many(
                    ratios, engine.clock.now, round_index
                )
                overhead_s = time.perf_counter() - overhead_start

                times = {
                    wid: dispatch.costs.total_s
                    for wid, dispatch in dispatches.items()
                }
                if engine.deadline_policy is not None and len(times) > 1:
                    outcome = engine.deadline_policy.apply(times)
                    accepted_ids = outcome.accepted
                    discarded = outcome.discarded
                    round_time = outcome.round_time_s
                else:
                    accepted_ids = list(times)
                    discarded = []
                    round_time = max(times.values())

                trained = engine.train_all(
                    [dispatches[wid] for wid in accepted_ids], round_index
                )
                contributions = [contribution for contribution, _ in trained]
                train_losses = [loss for _, loss in trained]
                engine.aggregate(contributions, round_index)

                engine.clock.advance(round_time)
                engine.clock.mark_round()
                mean_train_loss = float(np.mean(train_losses))
                delta_loss = engine.delta_loss(mean_train_loss)
                engine.strategy.observe_round(RoundObservation(
                    round_index=round_index,
                    costs={wid: dispatches[wid].costs
                           for wid in accepted_ids},
                    delta_loss=delta_loss,
                    discarded=discarded,
                ))

                is_last = round_index == config.max_rounds - 1
                metric, eval_loss = engine.evaluate(round_index,
                                                    force=is_last)
                ratios_rec, times_rec, cohorts_rec = engine.round_detail(
                    ratios, times, dispatches
                )
                record = RoundRecord(
                    round_index=round_index, sim_time_s=engine.clock.now,
                    round_time_s=round_time, metric=metric,
                    eval_loss=eval_loss, train_loss=mean_train_loss,
                    ratios=ratios_rec, completion_times=times_rec,
                    discarded=discarded, overhead_s=overhead_s,
                    cohorts=cohorts_rec,
                )
                engine.finish_round(record)
                round_span.set("sim_time_s", engine.clock.now)
                round_span.set("round_time_s", round_time)
            stop = engine.should_stop(record)
            engine.maybe_checkpoint(self.name, round_index + 1, stop=stop)
            if stop or engine.interrupt_requested:
                break
        return engine.history
