"""Semi-synchronous scheduling: per-round deadlines with carry-over.

A middle ground between the barrier (sync) and first-``m`` (async)
rules: each round the PS waits a fixed simulated budget
(``FLConfig.semi_sync_deadline_s``) and aggregates **whoever has
arrived by then**.  Stragglers are neither waited for (sync) nor
discarded (the deadline policy): their outstanding dispatches simply
carry over, and their contributions land in a later round.  If nobody
makes the deadline, the round stretches to the earliest arrival so
progress is always made.

Workers that arrived are immediately re-dispatched (subject to the
churn model), so like the asynchronous rule every healthy worker is
almost always training; unlike it, the round length is bounded by the
deadline rather than by arrival counts.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.fl.aggregation import EmptyRoundError
from repro.fl.checkpoint import CheckpointError
from repro.fl.engine import Engine
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.schedulers.base import DispatchQueue, Scheduler
from repro.fl.strategies.base import RoundObservation
from repro.simulation.timing import RoundCosts


class SemiSynchronousScheduler(Scheduler):
    """Aggregate arrivals before a per-round deadline; carry stragglers."""

    name = "semi_sync"

    def __init__(self, deadline_s: float) -> None:
        if deadline_s <= 0:
            raise ValueError(
                f"semi-sync deadline must be positive, got {deadline_s}"
            )
        self.deadline_s = deadline_s

    def run(self, engine: Engine) -> TrainingHistory:
        config = engine.config
        resume = engine.take_resume(self.name)
        if resume is not None:
            # bootstrap already ran originally; the checkpoint carries
            # the in-flight dispatches (including carried-over
            # stragglers) and post-bootstrap RNG positions
            outstanding = resume["queue"]
            if outstanding is None:
                raise CheckpointError(
                    "semi-sync checkpoint is missing its dispatch queue"
                )
            start_round = resume["next_round"]
        else:
            start_round = 0
            outstanding = DispatchQueue()
            present = engine.present_workers(0)
            sampled = engine.sample_clients(present, 0)
            with engine.telemetry.span("decide", round=0, bootstrap=True,
                                       workers=len(sampled)):
                initial_ratios = engine.strategy.select_ratios(
                    0, worker_ids=sampled
                )
            for dispatch in engine.dispatch_many(
                initial_ratios, engine.clock.now, 0
            ).values():
                outstanding.add(dispatch)

        for round_index in range(start_round, config.max_rounds):
            with engine.telemetry.span("round", round=round_index,
                                       scheduler=self.name) as round_span:
                previous_now = engine.clock.now
                deadline = previous_now + self.deadline_s
                arrivals = outstanding.pop_until(deadline)
                if arrivals:
                    if len(outstanding) > 0:
                        # stragglers remain: the PS waits the full budget
                        round_end = deadline
                    else:
                        round_end = max(d.finish_time for d in arrivals)
                else:
                    # nobody made the deadline; stretch to the next arrival
                    if len(outstanding) == 0:
                        raise EmptyRoundError(
                            f"round {round_index}: the dispatch queue "
                            f"is empty -- all in-flight workers left"
                        )
                    arrivals = outstanding.pop_first(1)
                    round_end = arrivals[-1].finish_time
                engine.clock.advance_to(max(round_end, previous_now))
                engine.clock.mark_round()

                trained = engine.train_all(arrivals, round_index)
                contributions = [contribution for contribution, _ in trained]
                train_losses = [loss for _, loss in trained]
                costs: Dict[int, RoundCosts] = {}
                arrival_ratios: Dict[int, float] = {}
                for dispatch in arrivals:
                    costs[dispatch.worker_id] = dispatch.costs
                    arrival_ratios[dispatch.worker_id] = dispatch.ratio
                engine.aggregate(contributions, round_index)
                carried_over = outstanding.worker_ids

                mean_train_loss = float(np.mean(train_losses))
                delta_loss = engine.delta_loss(mean_train_loss)
                engine.strategy.observe_round(RoundObservation(
                    round_index=round_index, costs=costs,
                    delta_loss=delta_loss, carried_over=carried_over,
                ))

                # re-dispatch to every idle worker that is present
                # (arrived workers, plus churned-out workers that have
                # rejoined)
                overhead_start = time.perf_counter()
                present = engine.present_workers(round_index + 1)
                idle = [
                    wid for wid in engine.worker_ids
                    if wid not in outstanding and wid in set(present)
                ]
                idle = engine.sample_clients(idle, round_index + 1)
                round_span.set("present", len(present))
                round_span.set("sampled", len(idle))
                round_span.set("arrivals", len(arrivals))
                round_span.set("carried_over", len(carried_over))
                if idle:
                    with engine.telemetry.span("decide",
                                               round=round_index + 1,
                                               workers=len(idle)):
                        new_ratios = engine.strategy.select_ratios(
                            round_index + 1, worker_ids=idle
                        )
                    for dispatch in engine.dispatch_many(
                        new_ratios, engine.clock.now, round_index + 1
                    ).values():
                        outstanding.add(dispatch)
                overhead_s = time.perf_counter() - overhead_start

                is_last = round_index == config.max_rounds - 1
                metric, eval_loss = engine.evaluate(round_index,
                                                    force=is_last)
                arrived_ids = sorted(costs)
                ratios_rec, times_rec, cohorts_rec = engine.round_detail(
                    {wid: arrival_ratios[wid] for wid in arrived_ids},
                    {wid: costs[wid].total_s for wid in arrived_ids},
                    {d.worker_id: d for d in arrivals},
                )
                record = RoundRecord(
                    round_index=round_index, sim_time_s=engine.clock.now,
                    round_time_s=engine.clock.now - previous_now,
                    metric=metric, eval_loss=eval_loss,
                    train_loss=mean_train_loss,
                    ratios=ratios_rec, completion_times=times_rec,
                    carried_over=carried_over,
                    overhead_s=overhead_s, cohorts=cohorts_rec,
                )
                engine.finish_round(record)
                round_span.set("sim_time_s", engine.clock.now)
                round_span.set("round_time_s", record.round_time_s)
            stop = engine.should_stop(record)
            engine.maybe_checkpoint(self.name, round_index + 1,
                                    queue=outstanding, stop=stop)
            if stop or engine.interrupt_requested:
                break
        return engine.history
