"""Round schedulers: synchronisation rules for the round engine.

Three rules ship with the engine -- barrier (sync), first-``m``
arrivals (async, Algorithm 2) and per-round deadline with carry-over
(semi-sync).  :func:`make_scheduler` maps an
:class:`~repro.fl.config.FLConfig` to the right one; new rules are one
subclass of :class:`~repro.fl.schedulers.base.Scheduler` away.
"""

from repro.fl.schedulers.asynchronous import AsynchronousScheduler
from repro.fl.schedulers.base import DispatchQueue, Scheduler, make_scheduler
from repro.fl.schedulers.semi_sync import SemiSynchronousScheduler
from repro.fl.schedulers.sync import SynchronousScheduler

#: scheduler name -> class, for config/CLI dispatch
SCHEDULERS = {
    cls.name: cls
    for cls in (
        SynchronousScheduler, AsynchronousScheduler,
        SemiSynchronousScheduler,
    )
}

__all__ = [
    "AsynchronousScheduler",
    "DispatchQueue",
    "SCHEDULERS",
    "Scheduler",
    "SemiSynchronousScheduler",
    "SynchronousScheduler",
    "make_scheduler",
]
