"""Federated-learning core: parameter server, workers, strategies, runners.

The package mirrors the paper's architecture (Fig. 1):

- :mod:`repro.fl.config` -- one dataclass holding every knob;
- :mod:`repro.fl.tasks` -- task adapters (image classification, LSTM
  language modelling) so one runner drives all five of the paper's
  workloads;
- :mod:`repro.fl.worker` -- local training on a simulated edge device;
- :mod:`repro.fl.server` -- the PS with R2SP and BSP aggregation;
- :mod:`repro.fl.strategies` -- FedMP plus the four baselines
  (Syn-FL, UP-FL, FedProx, FlexCom) and the asynchronous variants;
- :mod:`repro.fl.runner` -- the synchronous round loop (Eq. 6) and the
  event-driven asynchronous loop (Algorithm 2);
- :mod:`repro.fl.history` -- per-round records and the
  time-to-accuracy / accuracy-in-budget reductions the figures need.
"""

from repro.fl.config import FLConfig
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.runner import run_federated_training
from repro.fl.strategies import make_strategy

__all__ = [
    "FLConfig",
    "RoundRecord",
    "TrainingHistory",
    "run_federated_training",
    "make_strategy",
]
