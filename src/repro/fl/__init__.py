"""Federated-learning core: the round engine and its pluggable layers.

The package mirrors the paper's architecture (Fig. 1), decomposed into
independently pluggable layers:

- :mod:`repro.fl.config` -- one dataclass holding every knob;
- :mod:`repro.fl.tasks` -- task adapters (image classification, LSTM
  language modelling) so one engine drives all five of the paper's
  workloads;
- :mod:`repro.fl.worker` -- local training on a simulated edge device;
- :mod:`repro.fl.server` -- global model custody on the PS;
- :mod:`repro.fl.aggregation` -- R2SP/BSP aggregators plus their
  sample-count-weighted variants;
- :mod:`repro.fl.strategies` -- FedMP plus the four baselines
  (Syn-FL, UP-FL, FedProx, FlexCom) and the asynchronous variants;
- :mod:`repro.fl.engine` -- shared dispatch/train/record plumbing;
- :mod:`repro.fl.schedulers` -- synchronisation rules: sync barrier
  (Eq. 6), async first-``m`` arrivals (Algorithm 2), semi-sync
  per-round deadline with straggler carry-over;
- :mod:`repro.fl.hooks` -- per-round instrumentation callbacks
  (timing, communication volume, custom observers);
- :mod:`repro.fl.history` -- per-round records and the
  time-to-accuracy / accuracy-in-budget reductions the figures need;
- :mod:`repro.fl.runner` -- the ``run_federated_training`` facade that
  composes engine + scheduler + aggregator + hooks from a config.
"""

from repro.fl.aggregation import (
    AGGREGATORS,
    Aggregator,
    BSPAggregator,
    Contribution,
    R2SPAggregator,
    WeightedBSPAggregator,
    WeightedR2SPAggregator,
    make_aggregator,
)
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.hooks import CommVolumeHook, HookList, RoundHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.fl.schedulers import (
    SCHEDULERS,
    AsynchronousScheduler,
    Scheduler,
    SemiSynchronousScheduler,
    SynchronousScheduler,
    make_scheduler,
)
from repro.fl.strategies import make_strategy

__all__ = [
    "AGGREGATORS",
    "Aggregator",
    "AsynchronousScheduler",
    "BSPAggregator",
    "CommVolumeHook",
    "Contribution",
    "Engine",
    "FLConfig",
    "HookList",
    "R2SPAggregator",
    "RoundHook",
    "RoundRecord",
    "SCHEDULERS",
    "Scheduler",
    "SemiSynchronousScheduler",
    "SynchronousScheduler",
    "TimingHook",
    "TrainingHistory",
    "WeightedBSPAggregator",
    "WeightedR2SPAggregator",
    "make_aggregator",
    "make_scheduler",
    "make_strategy",
    "run_federated_training",
]
