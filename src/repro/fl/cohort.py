"""Cohorts: the unit of work for fleet-scale rounds.

A *cohort* is the set of sampled workers that share one
``(pruning ratio, device cluster)`` bucket in a round.  Everything the
parameter server used to materialise per member -- the
:class:`~repro.pruning.plan.PruningPlan`, the extracted sub-model and
its pristine state dict -- is materialised once per cohort instead, so
dispatch cost is O(cohorts) while per-member bookkeeping shrinks to a
handful of scalars (``tau``, round costs, sample counts).

The cohort is also the granularity of execution (see
:meth:`repro.runtime.executor.Executor.run_cohort`) and of scatter-add
aggregation (per-cohort partial sums folded into the global
accumulator), and -- with ``scope="cluster"`` -- the granularity at
which the E-UCB strategy observes rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class Cohort:
    """One ``(ratio, cluster)`` bucket of a round's sampled workers.

    ``template`` is the shared extracted sub-model; it is *never*
    trained in place -- executors clone it (or stack it) per member.
    ``dispatched_state`` is its pristine state dict, treated as
    immutable by every consumer.
    """

    ratio: float
    cluster: str
    plan: object
    template: object
    dispatched_state: Dict[str, np.ndarray]
    member_ids: List[int] = field(default_factory=list)
    #: shared sub-model parameter count (download volume per member)
    num_params: int = 0
    #: True when the architecture admits the stacked training path
    #: (:func:`repro.nn.batched.supports_cohort_training`)
    supports_vectorised: bool = False
    #: frozen pre-round global snapshot shared by the cohort's members
    #: on the residual-recovery (R2SP) path
    global_state: Optional[Dict[str, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self.member_ids)
