"""A federated worker: local SGD on a simulated edge device."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD, ProximalSGD
from repro.simulation.device import DeviceProfile
from repro.simulation.timing import RoundCosts, TimingModel


class Worker:
    """One edge node: owns a local data shard and a device profile.

    ``local_train`` mutates the received sub-model in place for ``tau``
    SGD iterations and returns the mean training loss; ``round_costs``
    converts the round's model complexity into simulated times via the
    device's timing model (Eq. 5).
    """

    def __init__(self, worker_id: int, iterator, device: DeviceProfile,
                 jitter_sigma: float = 0.08,
                 rng: Optional[np.random.Generator] = None,
                 num_samples: int = 1) -> None:
        """RNG derivation contract (load-bearing for process-pool parity):
        ``rng`` is the worker's shared generator -- the engine seeds it,
        the data iterator's construction consumes it first, and this
        constructor then draws exactly one ``integers(2**31)`` from it to
        seed the :class:`~repro.simulation.timing.TimingModel`'s jitter
        stream.  ``repro.runtime.pool.WorkerSpec.build`` replays this
        exact sequence in child processes, and
        ``tests/test_runtime/test_pool.py`` pins it; change the draw
        order/width here only together with both.
        """
        self.worker_id = worker_id
        self.iterator = iterator
        self.device = device
        #: local shard size; the weighted aggregators use it to weight
        #: this worker's contributions
        self.num_samples = num_samples
        self.rng = rng if rng is not None else np.random.default_rng(worker_id)
        self.timing = TimingModel(
            device, jitter_sigma=jitter_sigma,
            rng=np.random.default_rng(self.rng.integers(2 ** 31)),
        )
        self.criterion = CrossEntropyLoss()

    def capture_runtime_state(self) -> Dict[str, object]:
        """Snapshot this worker's replayable runtime state.

        Covers the shared worker/iterator generator, the timing-jitter
        generator (shared with the device's
        :class:`~repro.simulation.wireless.WirelessLink`, so one state
        covers both), and -- for shuffling iterators -- the current
        epoch permutation and cursor.  Restoring the snapshot via
        :meth:`restore_runtime_state` resumes every stream at the exact
        position it was captured, which is what makes a resumed run
        bitwise-identical to the uninterrupted one.
        """
        state: Dict[str, object] = {
            "rng": self.rng.bit_generator.state,
            "timing_rng": self.timing.rng.bit_generator.state,
        }
        order = getattr(self.iterator, "_order", None)
        if order is not None:
            state["iterator"] = {
                "order": np.array(order, copy=True),
                "cursor": int(self.iterator._cursor),
            }
        return state

    def restore_runtime_state(self, state: Dict[str, object]) -> None:
        """Apply a :meth:`capture_runtime_state` snapshot."""
        self.rng.bit_generator.state = state["rng"]
        self.timing.rng.bit_generator.state = state["timing_rng"]
        iterator_state = state.get("iterator")
        if iterator_state is not None:
            self.iterator._order = np.array(iterator_state["order"], copy=True)
            self.iterator._cursor = int(iterator_state["cursor"])

    def local_train(self, model: Module, tau: int, lr: float,
                    momentum: float = 0.0, weight_decay: float = 0.0,
                    prox_mu: float = 0.0, clip_norm: Optional[float] = None,
                    anchor: Optional[Dict[str, np.ndarray]] = None) -> float:
        """Run ``tau`` local SGD iterations; returns the mean batch loss.

        With ``prox_mu > 0`` the FedProx proximal term is added, anchored
        at ``anchor`` (the state the model was dispatched with).
        """
        model.train()
        if prox_mu > 0.0:
            optimizer = ProximalSGD(model, lr=lr, mu=prox_mu,
                                    momentum=momentum,
                                    weight_decay=weight_decay,
                                    clip_norm=clip_norm)
            optimizer.set_anchor(
                anchor if anchor is not None else model.state_dict()
            )
        else:
            optimizer = SGD(model, lr=lr, momentum=momentum,
                            weight_decay=weight_decay, clip_norm=clip_norm)

        total_loss = 0.0
        for _ in range(tau):
            inputs, targets = self.iterator.next_batch()
            logits = model.forward(inputs)
            total_loss += self.criterion(logits, targets)
            model.zero_grad()
            model.backward(self.criterion.backward())
            optimizer.step()
        return total_loss / tau

    def round_costs(self, forward_flops_per_sample: float,
                    download_params: int, upload_params: int,
                    batch_size: int, tau: int) -> RoundCosts:
        """Eq. 5 cost breakdown for this round on this device."""
        return self.timing.round_costs(
            forward_flops_per_sample, download_params, upload_params,
            batch_size, tau,
        )
