"""The paper's CNN for MNIST.

Section V-A: "The CNN has two 5x5 convolutional layers, a
fully-connected layer with 256 units, and a softmax output layer with
10 units" (the architecture of Wang et al., INFOCOM 2018: 32 and 64
filters with 2x2 max-pooling after each convolution).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Sequential


def build_cnn(num_classes: int = 10,
              input_shape: Tuple[int, int, int] = (1, 28, 28),
              rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build the paper's 2-conv CNN.

    Parameters
    ----------
    num_classes:
        Output classes (10 for MNIST).
    input_shape:
        ``(C, H, W)`` of one sample.
    rng:
        Generator used for weight init; defaults to seed 0.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape
    pooled_h, pooled_w = height // 4, width // 4

    model = Sequential(
        ("conv1", Conv2d(channels, 32, 5, padding=2, rng=rng)),
        ("relu1", ReLU()),
        ("pool1", MaxPool2d(2)),
        ("conv2", Conv2d(32, 64, 5, padding=2, rng=rng)),
        ("relu2", ReLU()),
        ("pool2", MaxPool2d(2)),
        ("flatten", Flatten()),
        ("fc1", Linear(64 * pooled_h * pooled_w, 256, rng=rng)),
        ("relu3", ReLU()),
        ("fc2", Linear(256, num_classes, rng=rng)),
    )
    model.layers[0].requires_input_grad = False
    model.input_shape = input_shape
    model.num_classes = num_classes
    model.name = "cnn"
    return model
