"""Model zoo: the four CNN tasks of the paper plus the RNN extension.

Every builder returns a :class:`repro.nn.Sequential` (or a Sequential of
blocks) whose layers carry stable names, and stamps ``input_shape`` /
``num_classes`` attributes that the pruning engine and the FLOP counter
rely on.  AlexNet / VGG-19 / ResNet-50 accept a ``width_mult`` so the
CPU-only benchmarks can run scaled-down instances while keeping the
exact architecture family (see DESIGN.md, substitution table).
"""

from repro.models.cnn import build_cnn
from repro.models.alexnet import build_alexnet
from repro.models.vgg import build_vgg19
from repro.models.resnet import build_resnet50
from repro.models.lstm_lm import build_lstm_lm
from repro.models.blocks import Bottleneck
from repro.models.flops import count_model_flops, count_model_params
from repro.models.registry import MODEL_BUILDERS, build_model

__all__ = [
    "build_cnn",
    "build_alexnet",
    "build_vgg19",
    "build_resnet50",
    "build_lstm_lm",
    "Bottleneck",
    "count_model_flops",
    "count_model_params",
    "MODEL_BUILDERS",
    "build_model",
]
