"""VGG-19 adapted to EMNIST (28x28 greyscale) inputs.

The paper trains VGG-19 on EMNIST.  We keep the canonical VGG-19
configuration ``[2, 2, 4, 4, 4]`` convolution blocks but (a) pool only
after the first three blocks so a 28x28 input is not pooled away and
(b) expose ``width_mult`` for CPU-scale runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Sequential

#: VGG-19 feature configuration: (block sizes, base widths)
VGG19_BLOCKS: List[Tuple[int, int]] = [
    (2, 64),
    (2, 128),
    (4, 256),
    (4, 512),
    (4, 512),
]


def _scaled(width: int, mult: float) -> int:
    return max(4, int(round(width * mult)))


def build_vgg19(num_classes: int = 62,
                input_shape: Tuple[int, int, int] = (1, 28, 28),
                width_mult: float = 1.0,
                batch_norm: bool = True,
                dropout: float = 0.5,
                rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build VGG-19 (optionally with batch norm) for small-image inputs.

    Pooling is applied after blocks 1-3 only (28 -> 14 -> 7 -> 3), so
    the full 16-convolution stack survives the small spatial extent.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape

    layers: List[Tuple[str, object]] = []
    in_ch = channels
    spatial = height
    pool_after = {0, 1, 2}
    for block_index, (depth, base_width) in enumerate(VGG19_BLOCKS):
        out_ch = _scaled(base_width, width_mult)
        for conv_index in range(depth):
            tag = f"{block_index + 1}_{conv_index + 1}"
            layers.append((f"conv{tag}", Conv2d(in_ch, out_ch, 3, padding=1, rng=rng)))
            if batch_norm:
                layers.append((f"bn{tag}", BatchNorm2d(out_ch)))
            layers.append((f"relu{tag}", ReLU()))
            in_ch = out_ch
        if block_index in pool_after and spatial >= 2:
            layers.append((f"pool{block_index + 1}", MaxPool2d(2)))
            spatial //= 2

    f1 = _scaled(512, width_mult)
    f2 = _scaled(512, width_mult)
    layers.extend(
        [
            ("flatten", Flatten()),
            ("drop1", Dropout(dropout, rng=rng)),
            ("fc1", Linear(in_ch * spatial * spatial, f1, rng=rng)),
            ("relu_fc1", ReLU()),
            ("drop2", Dropout(dropout, rng=rng)),
            ("fc2", Linear(f1, f2, rng=rng)),
            ("relu_fc2", ReLU()),
            ("fc3", Linear(f2, num_classes, rng=rng)),
        ]
    )

    model = Sequential(*layers)
    model.layers[0].requires_input_grad = False
    model.input_shape = input_shape
    model.num_classes = num_classes
    model.name = "vgg19"
    return model
