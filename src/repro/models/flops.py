"""Analytic FLOP and parameter counting.

The edge-device simulator converts model complexity into local-update
and transmission times (Eq. 5 of the paper), so it needs exact
per-model multiply-accumulate counts as a function of the (possibly
pruned) architecture.  Counting walks the module tree with a symbolic
shape trace -- no forward pass is executed.

Convention: one multiply-accumulate = 2 FLOPs; counts are *per sample*
for the forward pass.  Training cost is modelled as ``3x`` forward (the
usual forward + backward heuristic) by the simulator, not here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.models.blocks import Bottleneck
from repro.models.lstm_lm import _SeqLinear
from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.recurrent import LSTM, Embedding


def count_model_params(model: Module) -> int:
    """Number of trainable scalar parameters in ``model``."""
    return model.num_parameters()


def count_model_flops(model: Module,
                      input_shape: Tuple[int, ...] = None,
                      seq_len: int = 20) -> int:
    """Forward FLOPs per sample for ``model``.

    ``input_shape`` defaults to ``model.input_shape`` for CNNs.  For the
    LSTM language model, pass ``seq_len`` (per-sample cost scales with
    the unrolled sequence length).
    """
    if input_shape is None:
        input_shape = getattr(model, "input_shape", None)
    if input_shape is None:
        # Language model: trace as a sequence of length seq_len, batch 1.
        flops, _ = _count_sequence_model(model, seq_len)
        return flops
    flops, _ = _count(model, tuple(input_shape))
    return flops


def count_layer_flops(module: Module,
                      input_shape: Tuple[int, ...]) -> Optional[int]:
    """Forward FLOPs per sample for one layer at ``input_shape``.

    ``input_shape`` is the per-sample shape the layer sees (``(C, H,
    W)`` for spatial layers, ``(F,)`` once flattened).  Returns ``None``
    for layer types the symbolic trace cannot price (recurrent cells,
    embeddings), which is the telemetry profiler's cue to report time
    without FLOPs for that layer.
    """
    try:
        flops, _ = _count(module, tuple(int(d) for d in input_shape))
    except (TypeError, ValueError):
        return None
    return flops


def _count(module: Module, shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
    """Return (flops, output_shape) for one module applied at ``shape``.

    ``shape`` is ``(C, H, W)`` for spatial tensors or ``(F,)`` once
    flattened.
    """
    if isinstance(module, Sequential):
        total = 0
        for layer in module.layers:
            flops, shape = _count(layer, shape)
            total += flops
        return total, shape

    if isinstance(module, Bottleneck):
        return _count_bottleneck(module, shape)

    if isinstance(module, Conv2d):
        _, h, w = shape
        out_h = F.conv_output_size(h, module.kernel_size, module.stride,
                                   module.padding)
        out_w = F.conv_output_size(w, module.kernel_size, module.stride,
                                   module.padding)
        macs = (
            module.out_channels * out_h * out_w
            * module.in_channels * module.kernel_size ** 2
        )
        return 2 * macs, (module.out_channels, out_h, out_w)

    if isinstance(module, Linear):
        macs = module.in_features * module.out_features
        return 2 * macs, (module.out_features,)

    if isinstance(module, BatchNorm2d):
        c, h, w = shape
        return 2 * c * h * w, shape

    if isinstance(module, MaxPool2d):
        c, h, w = shape
        out_h = F.conv_output_size(h, module.kernel_size, module.stride, 0)
        out_w = F.conv_output_size(w, module.kernel_size, module.stride, 0)
        return c * out_h * out_w * module.kernel_size ** 2, (c, out_h, out_w)

    if isinstance(module, AvgPool2d):
        c, h, w = shape
        if module.kernel_size is None:
            return c * h * w, (c, 1, 1)
        k = module.kernel_size
        return c * h * w, (c, h // k, w // k)

    if isinstance(module, Flatten):
        flat = 1
        for dim in shape:
            flat *= dim
        return 0, (flat,)

    if isinstance(module, ReLU):
        size = 1
        for dim in shape:
            size *= dim
        return size, shape

    if isinstance(module, Dropout):
        return 0, shape

    raise TypeError(f"cannot count FLOPs for module type {type(module).__name__}")


def _count_bottleneck(block: Bottleneck,
                      shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
    total = 0
    inner_shape = shape
    for name in ("conv1", "bn1", "relu1", "conv2", "bn2", "relu2",
                 "conv3", "bn3"):
        flops, inner_shape = _count(dict(block.children())[name], inner_shape)
        total += flops
    if block.has_projection:
        flops, _ = _count(block.downsample, shape)
        total += flops
    # residual add + final relu
    c, h, w = inner_shape
    total += 2 * c * h * w
    return total, inner_shape


def _count_sequence_model(model: Module, seq_len: int) -> Tuple[int, None]:
    """FLOPs per sample (= per token sequence of ``seq_len``) for an LM."""
    total = 0
    feature = None
    for layer in model.layers if isinstance(model, Sequential) else []:
        if isinstance(layer, Embedding):
            feature = layer.embedding_dim
            total += 0  # lookup only
        elif isinstance(layer, LSTM):
            macs_per_step = (
                4 * layer.hidden_size * (layer.input_size + layer.hidden_size)
            )
            total += 2 * macs_per_step * seq_len
            feature = layer.hidden_size
        elif isinstance(layer, _SeqLinear):
            inner = layer.linear
            total += 2 * inner.in_features * inner.out_features * seq_len
            feature = inner.out_features
        elif isinstance(layer, Dropout):
            continue
        else:
            raise TypeError(
                f"cannot count sequence FLOPs for {type(layer).__name__}"
            )
    return total, None
