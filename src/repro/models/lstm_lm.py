"""Two-layer LSTM language model for the Penn TreeBank extension.

Section VI trains "a RNN with two stacked LSTM layers on the Penn
TreeBank dataset" and prunes it with the Intrinsic Sparse Structure
method.  The model here is Embedding -> LSTM -> LSTM -> Linear decoder;
its forward/backward handle ``(T, B)`` id batches end to end.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Sequential
from repro.nn.recurrent import LSTM, Embedding


class _SeqLinear(Module):
    """Linear decoder applied at every time step of a ``(T, B, H)`` tensor."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.add_child("linear", Linear(in_features, out_features, rng=rng))
        self._shape: Optional[Tuple[int, int, int]] = None

    @property
    def linear(self) -> Linear:
        return self._children["linear"]  # type: ignore[return-value]

    def forward(self, x: np.ndarray) -> np.ndarray:
        t, b, h = x.shape
        self._shape = (t, b, h)
        out = self.linear.forward(x.reshape(t * b, h))
        return out.reshape(t, b, -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        t, b, h = self._shape
        grad = self.linear.backward(grad_out.reshape(t * b, -1))
        return grad.reshape(t, b, h)


def build_lstm_lm(vocab_size: int = 1000,
                  embedding_dim: int = 64,
                  hidden_size: int = 128,
                  dropout: float = 0.0,
                  rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build the two-layer LSTM language model.

    Returns a Sequential of ``embed -> lstm1 -> lstm2 -> decoder`` whose
    forward maps ``(T, B)`` token ids to ``(T, B, vocab)`` logits.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    layers = [
        ("embed", Embedding(vocab_size, embedding_dim, rng=rng)),
        ("lstm1", LSTM(embedding_dim, hidden_size, rng=rng)),
        ("lstm2", LSTM(hidden_size, hidden_size, rng=rng)),
    ]
    if dropout > 0:
        layers.append(("drop", Dropout(dropout, rng=rng)))
    layers.append(("decoder", _SeqLinear(hidden_size, vocab_size, rng=rng)))

    model = Sequential(*layers)
    model.vocab_size = vocab_size
    model.embedding_dim = embedding_dim
    model.hidden_size = hidden_size
    model.name = "lstm_lm"
    return model
