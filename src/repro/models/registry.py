"""Name-based model registry used by configs, examples and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.models.alexnet import build_alexnet
from repro.models.cnn import build_cnn
from repro.models.lstm_lm import build_lstm_lm
from repro.models.resnet import build_resnet50
from repro.models.vgg import build_vgg19
from repro.nn.module import Module

#: Registered builders; each accepts ``rng`` plus builder-specific kwargs.
MODEL_BUILDERS: Dict[str, Callable[..., Module]] = {
    "cnn": build_cnn,
    "alexnet": build_alexnet,
    "vgg19": build_vgg19,
    "resnet50": build_resnet50,
    "lstm_lm": build_lstm_lm,
}


def build_model(name: str, rng: Optional[np.random.Generator] = None,
                **kwargs) -> Module:
    """Instantiate a registered model by name.

    Raises ``KeyError`` with the available names when ``name`` is unknown.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(rng=rng, **kwargs)
