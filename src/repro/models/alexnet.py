"""AlexNet adapted to CIFAR-10 (32x32) inputs.

The layer sequence mirrors the classic AlexNet (5 convolutions, 3
fully-connected layers) using the common CIFAR adaptation: 3x3 kernels
and three 2x2 poolings so the 32x32 input reaches a 4x4 feature map.
``width_mult`` scales every hidden width so CPU-only experiments stay
tractable; 1.0 reproduces the CIFAR-AlexNet widths.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Sequential


def _scaled(width: int, mult: float) -> int:
    """Scale a channel width, never below 4 units."""
    return max(4, int(round(width * mult)))


def build_alexnet(num_classes: int = 10,
                  input_shape: Tuple[int, int, int] = (3, 32, 32),
                  width_mult: float = 1.0,
                  dropout: float = 0.5,
                  rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build a CIFAR-style AlexNet.

    Parameters
    ----------
    width_mult:
        Multiplies every hidden channel/neuron count (benchmarks use
        reduced widths; see DESIGN.md substitution table).
    dropout:
        Dropout probability on the two hidden fully-connected layers.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape
    c1 = _scaled(64, width_mult)
    c2 = _scaled(192, width_mult)
    c3 = _scaled(384, width_mult)
    c4 = _scaled(256, width_mult)
    c5 = _scaled(256, width_mult)
    f1 = _scaled(1024, width_mult)
    f2 = _scaled(1024, width_mult)
    pooled_h, pooled_w = height // 8, width // 8

    model = Sequential(
        ("conv1", Conv2d(channels, c1, 3, padding=1, rng=rng)),
        ("relu1", ReLU()),
        ("pool1", MaxPool2d(2)),
        ("conv2", Conv2d(c1, c2, 3, padding=1, rng=rng)),
        ("relu2", ReLU()),
        ("pool2", MaxPool2d(2)),
        ("conv3", Conv2d(c2, c3, 3, padding=1, rng=rng)),
        ("relu3", ReLU()),
        ("conv4", Conv2d(c3, c4, 3, padding=1, rng=rng)),
        ("relu4", ReLU()),
        ("conv5", Conv2d(c4, c5, 3, padding=1, rng=rng)),
        ("relu5", ReLU()),
        ("pool3", MaxPool2d(2)),
        ("flatten", Flatten()),
        ("drop1", Dropout(dropout, rng=rng)),
        ("fc1", Linear(c5 * pooled_h * pooled_w, f1, rng=rng)),
        ("relu6", ReLU()),
        ("drop2", Dropout(dropout, rng=rng)),
        ("fc2", Linear(f1, f2, rng=rng)),
        ("relu7", ReLU()),
        ("fc3", Linear(f2, num_classes, rng=rng)),
    )
    model.layers[0].requires_input_grad = False
    model.input_shape = input_shape
    model.num_classes = num_classes
    model.name = "alexnet"
    return model
