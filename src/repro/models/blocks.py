"""Residual blocks used by the ResNet-50 builder.

Structured pruning inside residual networks follows the standard
convention (Li et al., 2016): only the *internal* convolutions of a
block are pruned, block input/output widths are preserved so the skip
connection always type-checks.  :class:`Bottleneck` is written so the
pruning engine can clone it with reduced inner widths.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.module import Module, Sequential


class Bottleneck(Module):
    """ResNet bottleneck: 1x1 reduce -> 3x3 -> 1x1 expand, plus skip.

    ``conv1`` and ``conv2`` are prunable (their output channels may
    shrink); ``conv3`` and the optional projection ``downsample`` always
    emit ``out_channels`` so the residual addition stays well-formed.
    """

    def __init__(self, in_channels, mid_channels, out_channels: int,
                 stride: int = 1, project: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if isinstance(mid_channels, int):
            mid1, mid2 = mid_channels, mid_channels
        else:
            mid1, mid2 = mid_channels
        self.in_channels = in_channels
        self.mid_channels = (mid1, mid2)
        self.out_channels = out_channels
        self.stride = stride
        rng = rng if rng is not None else np.random.default_rng(0)

        self.add_child("conv1", Conv2d(in_channels, mid1, 1, rng=rng))
        self.add_child("bn1", BatchNorm2d(mid1))
        self.add_child("relu1", ReLU())
        self.add_child("conv2", Conv2d(mid1, mid2, 3,
                                       stride=stride, padding=1, rng=rng))
        self.add_child("bn2", BatchNorm2d(mid2))
        self.add_child("relu2", ReLU())
        self.add_child("conv3", Conv2d(mid2, out_channels, 1, rng=rng))
        self.add_child("bn3", BatchNorm2d(out_channels))
        self.add_child("relu3", ReLU())

        needs_projection = project or stride != 1 or in_channels != out_channels
        if needs_projection:
            self.add_child(
                "downsample",
                Sequential(
                    ("conv", Conv2d(in_channels, out_channels, 1,
                                    stride=stride, rng=rng)),
                    ("bn", BatchNorm2d(out_channels)),
                ),
            )
        self.has_projection = needs_projection

    @property
    def downsample(self) -> Optional[Module]:
        """The projection path, or ``None`` for identity skips."""
        return self._children.get("downsample")

    def forward(self, x: np.ndarray) -> np.ndarray:
        c = self._children
        out = c["conv1"].forward(x)
        out = c["bn1"].forward(out)
        out = c["relu1"].forward(out)
        out = c["conv2"].forward(out)
        out = c["bn2"].forward(out)
        out = c["relu2"].forward(out)
        out = c["conv3"].forward(out)
        out = c["bn3"].forward(out)
        if self.has_projection:
            skip = c["downsample"].forward(x)
        else:
            skip = x
        return c["relu3"].forward(out + skip)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        c = self._children
        grad_sum = c["relu3"].backward(grad_out)

        grad = c["bn3"].backward(grad_sum)
        grad = c["conv3"].backward(grad)
        grad = c["relu2"].backward(grad)
        grad = c["bn2"].backward(grad)
        grad = c["conv2"].backward(grad)
        grad = c["relu1"].backward(grad)
        grad = c["bn1"].backward(grad)
        grad_x = c["conv1"].backward(grad)

        if self.has_projection:
            grad_x = grad_x + c["downsample"].backward(grad_sum)
        else:
            grad_x = grad_x + grad_sum
        return grad_x
