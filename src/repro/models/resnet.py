"""ResNet-50 (bottleneck) adapted to Tiny-ImageNet (64x64) inputs.

The stage layout ``[3, 4, 6, 3]`` reproduces ResNet-50; a
``blocks_per_stage`` override lets the CPU-only benchmarks run a
depth-reduced member of the same family (the pruning and aggregation
code paths exercised are identical).  Structured pruning touches the
two internal convolutions of every bottleneck; stage boundaries keep
their widths so skip connections remain well-formed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.models.blocks import Bottleneck
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Sequential

#: (mid width, out width, stride) per ResNet-50 stage, before width_mult.
RESNET50_STAGES: List[Tuple[int, int, int]] = [
    (64, 256, 1),
    (128, 512, 2),
    (256, 1024, 2),
    (512, 2048, 2),
]

#: Blocks per stage for the true ResNet-50.
RESNET50_DEPTHS: Tuple[int, ...] = (3, 4, 6, 3)


def _scaled(width: int, mult: float) -> int:
    return max(4, int(round(width * mult)))


def build_resnet50(num_classes: int = 200,
                   input_shape: Tuple[int, int, int] = (3, 64, 64),
                   width_mult: float = 1.0,
                   blocks_per_stage: Optional[Sequence[int]] = None,
                   rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build a bottleneck ResNet in the ResNet-50 family.

    Parameters
    ----------
    blocks_per_stage:
        Defaults to ``(3, 4, 6, 3)`` (true ResNet-50).  Benchmarks pass
        smaller depths for tractability; the architecture family and
        every pruning-relevant structure are unchanged.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    depths = tuple(blocks_per_stage) if blocks_per_stage else RESNET50_DEPTHS
    if len(depths) != len(RESNET50_STAGES):
        raise ValueError(
            f"blocks_per_stage must have {len(RESNET50_STAGES)} entries, "
            f"got {len(depths)}"
        )
    channels, _, _ = input_shape

    stem_ch = _scaled(64, width_mult)
    layers: List[Tuple[str, object]] = [
        ("conv_stem", Conv2d(channels, stem_ch, 3, stride=1, padding=1, rng=rng)),
        ("bn_stem", BatchNorm2d(stem_ch)),
        ("relu_stem", ReLU()),
        ("pool_stem", MaxPool2d(2)),
    ]

    in_ch = stem_ch
    for stage_index, ((mid, out, stride), depth) in enumerate(
        zip(RESNET50_STAGES, depths)
    ):
        mid_ch = _scaled(mid, width_mult)
        out_ch = _scaled(out, width_mult)
        for block_index in range(depth):
            block_stride = stride if block_index == 0 else 1
            layers.append(
                (
                    f"stage{stage_index + 1}_block{block_index + 1}",
                    Bottleneck(in_ch, mid_ch, out_ch, stride=block_stride,
                               project=block_index == 0, rng=rng),
                )
            )
            in_ch = out_ch

    layers.extend(
        [
            ("gap", AvgPool2d(None)),
            ("flatten", Flatten()),
            ("fc", Linear(in_ch, num_classes, rng=rng)),
        ]
    )

    model = Sequential(*layers)
    model.layers[0].requires_input_grad = False
    model.input_shape = input_shape
    model.num_classes = num_classes
    model.name = "resnet50"
    return model
