"""Worker clusters and heterogeneity scenarios (Fig. 3, Section V-E).

Fig. 3 partitions the 30 devices into three clusters by computing mode
(x-axis) and location (y-axis):

- cluster **A**: modes 0-1, near the PS (fast compute, fast links),
- cluster **B**: modes 1-2, mid-range,
- cluster **C**: modes 2-3, far (slow compute, slow links).

Section V-E builds three heterogeneity levels from them: *Low* = 10 x A,
*Medium* = 5 x A + 5 x B (the default setting), *High* = 3A + 3B + 4C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.simulation.device import JETSON_TX2_MODES, DeviceProfile
from repro.simulation.network import bandwidth_for_distance


@dataclass(frozen=True)
class ClusterSpec:
    """Which computing modes and distances a cluster draws from."""

    name: str
    modes: Tuple[int, ...]
    distance_range_m: Tuple[float, float]


#: The three clusters of Fig. 3.
CLUSTERS: Dict[str, ClusterSpec] = {
    "A": ClusterSpec("A", (0, 1), (8.0, 15.0)),
    "B": ClusterSpec("B", (1, 2), (15.0, 30.0)),
    "C": ClusterSpec("C", (2, 3), (30.0, 60.0)),
}

#: Section V-E scenarios: cluster name -> worker count.
HETEROGENEITY_SCENARIOS: Dict[str, Dict[str, int]] = {
    "low": {"A": 10},
    "medium": {"A": 5, "B": 5},
    "high": {"A": 3, "B": 3, "C": 4},
}


def make_cluster_devices(cluster: str, count: int,
                         rng: np.random.Generator,
                         start_id: int = 0) -> List[DeviceProfile]:
    """Sample ``count`` devices from one cluster.

    Mode and distance are drawn uniformly from the cluster's ranges
    using the caller's generator, so scenarios are reproducible.
    """
    try:
        spec = CLUSTERS[cluster]
    except KeyError:
        raise KeyError(
            f"unknown cluster {cluster!r}; available: {sorted(CLUSTERS)}"
        ) from None
    devices = []
    for offset in range(count):
        mode_index = int(rng.choice(spec.modes))
        distance = float(rng.uniform(*spec.distance_range_m))
        devices.append(
            DeviceProfile(
                device_id=start_id + offset,
                mode=JETSON_TX2_MODES[mode_index],
                bandwidth_bps=bandwidth_for_distance(distance),
                cluster=spec.name,
            )
        )
    return devices


def make_scenario_devices(scenario, rng: np.random.Generator) -> List[DeviceProfile]:
    """Build the device list for a heterogeneity scenario.

    ``scenario`` is either a name from :data:`HETEROGENEITY_SCENARIOS`
    or a ``{cluster: count}`` mapping.
    """
    if isinstance(scenario, str):
        try:
            composition = HETEROGENEITY_SCENARIOS[scenario]
        except KeyError:
            raise KeyError(
                f"unknown scenario {scenario!r}; available: "
                f"{sorted(HETEROGENEITY_SCENARIOS)}"
            ) from None
    else:
        composition = dict(scenario)

    devices: List[DeviceProfile] = []
    for cluster in sorted(composition):
        devices.extend(
            make_cluster_devices(cluster, composition[cluster], rng,
                                 start_id=len(devices))
        )
    return devices


def scenario_table(devices: Sequence[DeviceProfile]) -> List[Tuple[int, str, int, float]]:
    """Rows ``(device_id, cluster, mode, Mbps)`` for reporting (Fig. 3)."""
    return [
        (d.device_id, d.cluster, d.mode.index, d.bandwidth_bps / 1e6)
        for d in devices
    ]
