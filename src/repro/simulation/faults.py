"""Fault tolerance: the deadline rule of Section V-A.

"We record time d when a certain fraction (e.g., 85%) of the local
models are received by the PS, then set the deadline of the current
round as 1.5 d.  If the PS has not received local updates from some
workers before the deadline, FedMP will discard these workers", asking
them to rejoin later; joins and leaves do not affect the workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass
class DeadlineOutcome:
    """Result of applying the deadline rule to one round's arrivals."""

    deadline_s: float
    accepted: List[int]
    discarded: List[int]
    round_time_s: float


class DeadlinePolicy:
    """Deadline-based straggler discarding.

    Parameters
    ----------
    quorum_fraction:
        Fraction of workers whose arrival defines ``d`` (default 0.85).
    deadline_multiplier:
        The round deadline is ``deadline_multiplier * d`` (default 1.5).
    """

    def __init__(self, quorum_fraction: float = 0.85,
                 deadline_multiplier: float = 1.5) -> None:
        if not 0.0 < quorum_fraction <= 1.0:
            raise ValueError(
                f"quorum fraction must be in (0, 1], got {quorum_fraction}"
            )
        if deadline_multiplier < 1.0:
            raise ValueError(
                f"deadline multiplier must be >= 1, got {deadline_multiplier}"
            )
        self.quorum_fraction = quorum_fraction
        self.deadline_multiplier = deadline_multiplier

    def apply(self, completion_times: Dict[int, float]) -> DeadlineOutcome:
        """Split a round's arrivals into accepted and discarded workers.

        ``completion_times`` maps worker id to its round completion
        time.  The round ends at the later of the deadline and the last
        accepted arrival.
        """
        if not completion_times:
            raise ValueError("no completion times supplied")
        ordered: List[Tuple[int, float]] = sorted(
            completion_times.items(), key=lambda item: item[1]
        )
        quorum_index = max(
            0, int(len(ordered) * self.quorum_fraction + 0.9999) - 1
        )
        quorum_time = ordered[quorum_index][1]
        deadline = self.deadline_multiplier * quorum_time

        accepted = [wid for wid, t in ordered if t <= deadline]
        discarded = [wid for wid, t in ordered if t > deadline]
        round_time = max(t for wid, t in ordered if wid in set(accepted))
        return DeadlineOutcome(
            deadline_s=deadline,
            accepted=accepted,
            discarded=discarded,
            round_time_s=round_time,
        )


def simulate_membership_churn(worker_ids: Sequence[int], round_index: int,
                              leave_prob: float, rejoin_after: int,
                              rng) -> List[int]:
    """Stateless churn helper: which workers are present this round.

    A worker leaves a round with probability ``leave_prob`` (hashed from
    the worker id and round index through ``rng``-independent uniform
    draws) and rejoins ``rejoin_after`` rounds later.  Used by the
    fault-injection tests and the robustness example.

    A round in which every worker leaves raises
    :class:`~repro.fl.aggregation.EmptyRoundError` -- there is nobody
    to dispatch to, and the previous silent fallback (pretending the
    first worker stayed) hid the condition from the scheduler.  The
    per-worker draws are consumed either way, so the churn stream's
    position is unaffected by the outcome.
    """
    present = []
    for wid in worker_ids:
        draw = rng.random()
        cycle = rejoin_after + 1
        if draw < leave_prob and round_index % cycle != 0:
            continue
        present.append(wid)
    if not present:
        # deferred import: repro.fl.engine imports this module
        from repro.fl.aggregation import EmptyRoundError

        raise EmptyRoundError(
            f"round {round_index}: churn removed all "
            f"{len(worker_ids)} worker(s)"
        )
    return present
