"""Simulated wall clock.

Every "seconds" axis in the reproduction refers to this clock, which
advances by the synchronisation rule of the active strategy: the
slowest worker per round in synchronous FL (Eq. 6), event-driven
arrivals in asynchronous FL.
"""

from __future__ import annotations

from typing import List


class SimulationClock:
    """Monotone simulated time with a per-round history."""

    def __init__(self) -> None:
        self._now = 0.0
        self._round_marks: List[float] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance time; rejects negative increments."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to an absolute timestamp (event-driven mode)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, "
                f"target={timestamp}"
            )
        self._now = timestamp
        return self._now

    def mark_round(self) -> None:
        """Record the current time as a round boundary."""
        self._round_marks.append(self._now)

    @property
    def round_marks(self) -> List[float]:
        return list(self._round_marks)

    @property
    def last_mark(self) -> float:
        """Time of the most recent round boundary (0 before the first)."""
        return self._round_marks[-1] if self._round_marks else 0.0

    def reset(self) -> None:
        self._now = 0.0
        self._round_marks.clear()
