"""Edge-device compute model (Table II of the paper).

Each Jetson TX2 runs in one of four DVFS modes combining a Denver2
dual-core cluster, a Cortex-A57 quad-core cluster and a 256-core Pascal
GPU at different frequencies.  We keep Table II verbatim and derive an
*effective training throughput* per mode: training runs on the GPU
(throughput ~ GPU clock) with the CPU clusters feeding data
(a weaker secondary term), normalised so mode 0 has relative speed 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Effective FLOP/s of a mode-0 device when training; calibrated so the
#: paper's CNN/MNIST rounds take tens of simulated seconds, matching the
#: magnitude of the paper's reported budgets.
BASE_FLOPS_PER_SECOND = 2.5e9

#: Multiplier applied to forward FLOPs to approximate a full training
#: iteration (forward + backward ~ 3x forward).
TRAIN_FLOPS_MULTIPLIER = 3.0


@dataclass(frozen=True)
class ComputingMode:
    """One row of Table II.

    ``denver`` / ``cortex_a57`` are ``(cores, GHz)`` or ``None`` when the
    cluster is disabled; ``gpu_ghz`` is the GPU clock.
    """

    index: int
    denver: Optional[Tuple[int, float]]
    cortex_a57: Tuple[int, float]
    gpu_ghz: float

    @property
    def cpu_ghz_total(self) -> float:
        total = self.cortex_a57[0] * self.cortex_a57[1]
        if self.denver is not None:
            total += self.denver[0] * self.denver[1]
        return total

    @property
    def a57_ghz_total(self) -> float:
        return self.cortex_a57[0] * self.cortex_a57[1]

    @property
    def relative_speed(self) -> float:
        """Training speed relative to mode 0.

        70% weight on the GPU clock and 30% on the Cortex-A57 cluster
        (the data pipeline; the Denver2 cluster contributes little to
        feeding a GPU training loop).  This preserves Table II's
        monotone capability ordering from mode 0 down to mode 3.
        """
        reference = JETSON_TX2_MODES[0]
        gpu_term = self.gpu_ghz / reference.gpu_ghz
        cpu_term = self.a57_ghz_total / reference.a57_ghz_total
        return 0.7 * gpu_term + 0.3 * cpu_term

    @property
    def flops_per_second(self) -> float:
        return BASE_FLOPS_PER_SECOND * self.relative_speed


#: Table II verbatim: mode -> configuration.
JETSON_TX2_MODES: Dict[int, ComputingMode] = {
    0: ComputingMode(0, (2, 2.0), (4, 2.0), 1.30),
    1: ComputingMode(1, None, (4, 2.0), 1.12),
    2: ComputingMode(2, (2, 1.4), (4, 1.4), 1.12),
    3: ComputingMode(3, None, (4, 1.2), 0.85),
}


@dataclass
class DeviceProfile:
    """A concrete simulated edge device.

    Combines a Table II computing mode with a placement-derived link
    bandwidth; the FL runner never reads these fields directly — only
    completion times computed by the timing model, mirroring the
    paper's "no prior knowledge of capabilities" constraint.
    """

    device_id: int
    mode: ComputingMode
    bandwidth_bps: float
    cluster: str = "?"

    @property
    def flops_per_second(self) -> float:
        return self.mode.flops_per_second

    def describe(self) -> str:
        return (
            f"device {self.device_id}: mode {self.mode.index}, "
            f"cluster {self.cluster}, "
            f"{self.bandwidth_bps / 1e6:.1f} Mbps"
        )
