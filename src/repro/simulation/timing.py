"""Completion-time model (Eq. 5).

``T_n^k = T_comp + T_comm`` where the computation term covers ``tau``
local SGD iterations on the (pruned) sub-model and the communication
term covers the PS -> worker download of the sub-model plus the
worker -> PS upload of the trained sub-model.  Both terms shrink with
the pruning ratio, exactly the effect Fig. 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulation.device import TRAIN_FLOPS_MULTIPLIER, DeviceProfile
from repro.simulation.network import WirelessLink

#: Bytes per transmitted parameter (float32 on the wire).
BYTES_PER_PARAM = 4


@dataclass
class RoundCosts:
    """Cost breakdown of one worker round."""

    computation_s: float
    download_s: float
    upload_s: float

    @property
    def communication_s(self) -> float:
        return self.download_s + self.upload_s

    @property
    def total_s(self) -> float:
        return self.computation_s + self.communication_s


class TimingModel:
    """Turns model complexity into simulated per-round times for a device.

    Parameters
    ----------
    device:
        The simulated edge device (compute mode + link bandwidth).
    jitter_sigma:
        Lognormal jitter applied to both compute and transfer times;
        0 disables jitter (used by deterministic unit tests).
    rng:
        Generator for jitter; defaults to one seeded by the device id so
        each device's noise stream is independent and reproducible.
    """

    def __init__(self, device: DeviceProfile, jitter_sigma: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.device = device
        self.jitter_sigma = jitter_sigma
        if rng is None:
            rng = np.random.default_rng(1000 + device.device_id)
        self.rng = rng
        self.link = WirelessLink(device.bandwidth_bps,
                                 jitter_sigma=jitter_sigma, rng=self.rng)

    def computation_time(self, forward_flops_per_sample: float,
                         batch_size: int, local_iterations: int) -> float:
        """Seconds for ``local_iterations`` SGD steps on this device."""
        train_flops = (
            forward_flops_per_sample * TRAIN_FLOPS_MULTIPLIER
            * batch_size * local_iterations
        )
        base = train_flops / self.device.flops_per_second
        if self.jitter_sigma <= 0:
            return base
        return base * float(np.exp(self.rng.normal(0.0, self.jitter_sigma)))

    def transfer_time(self, num_params: int) -> float:
        """Seconds to move ``num_params`` float32 values across the link."""
        return self.link.transfer_time(num_params * BYTES_PER_PARAM)

    def round_costs(self, forward_flops_per_sample: float,
                    download_params: int, upload_params: int,
                    batch_size: int, local_iterations: int) -> RoundCosts:
        """Full Eq. 5 breakdown for one round."""
        return RoundCosts(
            computation_s=self.computation_time(
                forward_flops_per_sample, batch_size, local_iterations
            ),
            download_s=self.transfer_time(download_params),
            upload_s=self.transfer_time(upload_params),
        )
