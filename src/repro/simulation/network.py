"""Wireless link model.

"The workers usually connect to the PS via wireless links in EC, and
the signal strength of wireless links may vary with the distance.
Hence, we place Jetson TX2 devices at different locations to simulate
communication heterogeneity."  We model the placement effect with a
log-distance path-loss channel: Shannon-style rate that decays with
distance, normalised to a configurable near-field rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Rate of a device at the reference distance (bits/second).  Chosen in
#: the WAN regime the paper motivates (PS-worker links are ~15x slower
#: than datacenter LANs).
REFERENCE_RATE_BPS = 12e6

#: Reference distance (metres) and path-loss exponent for an indoor/
#: campus wireless deployment.
REFERENCE_DISTANCE_M = 10.0
PATH_LOSS_EXPONENT = 3.0


def bandwidth_for_distance(distance_m: float,
                           reference_rate_bps: float = REFERENCE_RATE_BPS,
                           reference_distance_m: float = REFERENCE_DISTANCE_M,
                           path_loss_exponent: float = PATH_LOSS_EXPONENT,
                           noise_floor: float = 0.05) -> float:
    """Achievable rate at ``distance_m`` under log-distance path loss.

    Uses ``rate = B * log2(1 + snr)`` with SNR decaying as
    ``(d0 / d)^gamma``; normalised so the reference distance yields the
    reference rate.  ``noise_floor`` bounds the rate from below at 5% of
    the reference rate so very distant devices stay reachable.
    """
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    reference_snr = 100.0  # 20 dB at the reference distance
    snr = reference_snr * (reference_distance_m / distance_m) ** path_loss_exponent
    scale = reference_rate_bps / math.log2(1.0 + reference_snr)
    rate = scale * math.log2(1.0 + snr)
    return max(rate, noise_floor * reference_rate_bps)


@dataclass
class WirelessLink:
    """A PS-worker link with optional lognormal shadowing jitter.

    ``transfer_time`` converts a payload size into seconds; jitter is
    drawn per call from the link's own generator, so runs are exactly
    reproducible from the seed.
    """

    bandwidth_bps: float
    jitter_sigma: float = 0.1
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bps}"
            )
        if self.rng is None:
            self.rng = np.random.default_rng(0)

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` across the link."""
        base = 8.0 * num_bytes / self.bandwidth_bps
        if self.jitter_sigma <= 0:
            return base
        return base * float(
            np.exp(self.rng.normal(0.0, self.jitter_sigma))
        )
