"""Heterogeneous edge-device simulator.

The paper's testbed is 30 NVIDIA Jetson TX2 boards in four DVFS
computing modes (Table II), placed at different distances from the PS
to induce communication heterogeneity (Fig. 3).  No such hardware is
available here, so this subpackage provides the analytic equivalent:

- :mod:`repro.simulation.device` -- Table II computing modes and the
  per-device throughput model;
- :mod:`repro.simulation.network` -- a log-distance path-loss wireless
  link model mapping placement to bandwidth;
- :mod:`repro.simulation.cluster` -- the A/B/C worker clusters and the
  Low/Medium/High heterogeneity scenarios of Section V-E;
- :mod:`repro.simulation.timing` -- Eq. 5: per-round completion time as
  local computation time plus transmission time;
- :mod:`repro.simulation.clock` -- the simulated wall clock every
  "seconds" axis in the benchmarks refers to;
- :mod:`repro.simulation.faults` -- the deadline-based fault-tolerance
  mechanism of Section V-A (1.5x the 85th-percentile arrival).

E-UCB only ever observes completion *times*, so replacing physical
devices with this model exercises the identical decision logic (see
DESIGN.md, substitution table).
"""

from repro.simulation.device import (
    JETSON_TX2_MODES,
    ComputingMode,
    DeviceProfile,
)
from repro.simulation.network import WirelessLink, bandwidth_for_distance
from repro.simulation.cluster import (
    CLUSTERS,
    HETEROGENEITY_SCENARIOS,
    make_cluster_devices,
    make_scenario_devices,
)
from repro.simulation.timing import RoundCosts, TimingModel
from repro.simulation.clock import SimulationClock
from repro.simulation.faults import DeadlinePolicy

__all__ = [
    "ComputingMode",
    "DeviceProfile",
    "JETSON_TX2_MODES",
    "WirelessLink",
    "bandwidth_for_distance",
    "CLUSTERS",
    "HETEROGENEITY_SCENARIOS",
    "make_cluster_devices",
    "make_scenario_devices",
    "TimingModel",
    "RoundCosts",
    "SimulationClock",
    "DeadlinePolicy",
]
