"""Empirical counterparts of the paper's convergence analysis.

Section III-D bounds FedMP's convergence (Theorem 1) by four terms; the
dominant controllable one is the average pruning error ``Q_n^k``.
:mod:`repro.analysis.convergence` computes every term of the bound from
a live training run so the theory can be checked against practice
(see ``benchmarks/bench_ablation_convergence_bound.py``).
"""

from repro.analysis.convergence import (
    ConvergenceBoundTerms,
    deviation_bound_holds,
    theorem1_bound,
)

__all__ = [
    "ConvergenceBoundTerms",
    "theorem1_bound",
    "deviation_bound_holds",
]
