"""Theorem 1 / Lemma 1 computations.

Theorem 1 bounds the averaged squared gradient norm by

    2/(gamma I) * (f(x^0) - f(x*))          -- optimisation gap term
  + 3 L^2 / (N I) * sum_t sum_n Q_n^{k'}    -- pruning-error term
  + L gamma sigma^2 / N                     -- gradient-noise term
  + 6 gamma^2 tau^2 G^2 L^2                 -- local-drift term

with Q_n^k = ||x^k - x_n^k||^2 the pruning error.  Lemma 1 bounds the
worker-deviation:  E||x^k(t) - x_n^k(t)||^2 <= 6 gamma^2 tau^2 G^2 + 3 Q_n^k.

Constants L, sigma, G are properties of the loss landscape the paper
assumes; here they are inputs (estimate them empirically or plug in
nominal values) so the *structure* of the bound can be evaluated and
its monotonicity in the pruning error verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np


@dataclass
class ConvergenceBoundTerms:
    """The four additive terms of Theorem 1, in paper order."""

    optimisation_gap: float
    pruning_error: float
    gradient_noise: float
    local_drift: float

    @property
    def total(self) -> float:
        return (
            self.optimisation_gap + self.pruning_error
            + self.gradient_noise + self.local_drift
        )


def theorem1_bound(initial_loss: float, optimal_loss: float, lr: float,
                   total_iterations: int, num_workers: int, tau: int,
                   pruning_errors: Sequence[Sequence[float]],
                   smoothness: float = 1.0, sigma: float = 1.0,
                   grad_bound: float = 1.0) -> ConvergenceBoundTerms:
    """Evaluate the Theorem 1 bound.

    Parameters
    ----------
    pruning_errors:
        ``pruning_errors[k][n]`` is ``Q_n^k`` for round ``k``; rounds
        are expanded by ``tau`` iterations each, matching the paper's
        ``sum_t sum_n Q_n^{k'}`` with ``k' = floor((t-1)/tau)``.
    smoothness / sigma / grad_bound:
        The constants L, sigma, G of Assumption 1.
    """
    if lr <= 0 or lr >= 1.0 / smoothness:
        raise ValueError(
            f"Theorem 1 requires 0 < lr < 1/L; got lr={lr}, L={smoothness}"
        )
    if total_iterations <= 0:
        raise ValueError("total_iterations must be positive")

    gap_term = 2.0 / (lr * total_iterations) * (initial_loss - optimal_loss)

    q_sum = 0.0
    for round_errors in pruning_errors:
        round_mean_expanded = tau * float(np.sum(round_errors))
        q_sum += round_mean_expanded
    prune_term = (
        3.0 * smoothness ** 2 / (num_workers * total_iterations) * q_sum
    )

    noise_term = smoothness * lr * sigma ** 2 / num_workers
    drift_term = 6.0 * lr ** 2 * tau ** 2 * grad_bound ** 2 * smoothness ** 2
    return ConvergenceBoundTerms(
        optimisation_gap=gap_term,
        pruning_error=prune_term,
        gradient_noise=noise_term,
        local_drift=drift_term,
    )


def lemma1_bound(lr: float, tau: int, grad_bound: float,
                 pruning_error: float) -> float:
    """Lemma 1's deviation bound ``6 gamma^2 tau^2 G^2 + 3 Q_n^k``."""
    return 6.0 * lr ** 2 * tau ** 2 * grad_bound ** 2 + 3.0 * pruning_error


def state_squared_distance(a: Dict[str, np.ndarray],
                           b: Dict[str, np.ndarray]) -> float:
    """||a - b||^2 over matching state-dict entries."""
    return sum(
        float(((a[key].astype(np.float64) - b[key]) ** 2).sum())
        for key in a if key in b
    )


def deviation_bound_holds(global_state: Dict[str, np.ndarray],
                          worker_states: Iterable[Dict[str, np.ndarray]],
                          lr: float, tau: int, grad_bound: float,
                          pruning_errors: Sequence[float]) -> bool:
    """Empirically check Lemma 1 for one round.

    ``worker_states`` are the recovered (+residual) per-worker models;
    returns True when every worker's squared deviation from the average
    model respects its Lemma 1 bound.
    """
    states = list(worker_states)
    errors = list(pruning_errors)
    if len(states) != len(errors):
        raise ValueError("one pruning error per worker state required")
    for state, q_value in zip(states, errors):
        deviation = state_squared_distance(global_state, state)
        if deviation > lemma1_bound(lr, tau, grad_bound, q_value) + 1e-9:
            return False
    return True
