"""Benchmark regression gating: compare runs against committed baselines.

The repo commits benchmark baselines (``BENCH_fleet.json``,
``BENCH_hotpath.json``, ``BENCH_parallel.json``) but, before this
module, never looked at them again -- a performance regression shipped
silently.  ``repro bench check`` closes the loop:

- each baseline kind has an *extractor* that pulls the gateable
  metrics out of its report schema (fleet rounds/s, hot-path speedup,
  parallel speedups) together with their direction;
- :func:`compare` normalises candidate-vs-baseline into a ratio where
  ``1.0`` means "as good as committed" and ``> 1`` means better,
  whatever the metric's direction, and applies a per-metric tolerance;
- :func:`run_fleet_smoke` produces a fresh candidate by re-running the
  committed fleet workload (shared via
  :mod:`repro.experiments.fleet`) in smoke mode.

Tolerances are deliberately generous by default (CI runners are noisy
and the smoke run uses a single round): the gate exists to catch the
order-of-magnitude regressions -- an accidentally de-cohorted fleet
path, a quadratic dispatch loop -- not 5% jitter.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

__all__ = [
    "MetricResult",
    "CheckReport",
    "extract_metrics",
    "compare",
    "run_fleet_smoke",
    "load_report",
    "write_report",
    "DEFAULT_TOLERANCE",
    "METRIC_TOLERANCES",
]

#: fallback fractional regression allowed before a metric fails
#: (0.6 = the candidate may be up to 60% below the committed number)
DEFAULT_TOLERANCE = 0.6

#: per-metric tolerance overrides, first prefix match wins; ratio-type
#: metrics (speedups) are far less noisy than absolute throughput, so
#: they get tighter gates
METRIC_TOLERANCES: Tuple[Tuple[str, float], ...] = (
    ("hotpath.speedup_wall", 0.3),
    ("hotpath.peak_alloc_ratio", 0.3),
    ("parallel.", 0.5),
    ("serve.", 0.5),
)


@dataclass
class MetricResult:
    """Outcome of gating one metric."""

    metric: str
    baseline: float
    candidate: float
    #: normalised for direction: > 1 means the candidate beats the
    #: baseline, regardless of whether the raw metric is higher-better
    ratio: float
    tolerance: float
    ok: bool


@dataclass
class CheckReport:
    """Everything one ``repro bench check`` invocation decided."""

    baseline_path: str
    ok: bool
    results: List[MetricResult]
    #: baseline metrics the candidate did not measure (e.g. the slow
    #: per-member sweeps a smoke run skips) -- reported, never failed
    skipped: List[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-bench-check",
            "baseline": self.baseline_path,
            "ok": self.ok,
            "results": [asdict(result) for result in self.results],
            "skipped": list(self.skipped),
        }


def _fleet_metrics(report: Dict[str, Any]) -> Iterator[Tuple[str, float]]:
    for entry in report.get("fleets", []):
        fleet = entry.get("fleet")
        for mode, stats in entry.items():
            if isinstance(stats, dict) and "rounds_per_s" in stats:
                yield (f"fleet[{fleet}].{mode}.rounds_per_s",
                       float(stats["rounds_per_s"]))


def _hotpath_metrics(report: Dict[str, Any]) -> Iterator[Tuple[str, float]]:
    for key in ("speedup_wall", "peak_alloc_ratio"):
        if key in report:
            yield f"hotpath.{key}", float(report[key])


def _parallel_metrics(report: Dict[str, Any]) -> Iterator[Tuple[str, float]]:
    for mode, stats in report.get("modes", {}).items():
        for key in ("train_phase_speedup", "wall_speedup"):
            if key in stats:
                yield f"parallel.{mode}.{key}", float(stats[key])


def _serve_metrics(report: Dict[str, Any]) -> Iterator[Tuple[str, float]]:
    for entry in report.get("fleets", []):
        fleet = entry.get("fleet")
        for key in ("rounds_per_s", "relative_throughput"):
            if key in entry:
                yield f"serve.fleet[{fleet}].{key}", float(entry[key])


#: benchmark kind -> metric extractor; every extracted metric is
#: higher-is-better (lower-better raw numbers are committed as ratios)
_EXTRACTORS = {
    "fleet_scale_rounds": _fleet_metrics,
    "dispatch_aggregate_hotpath": _hotpath_metrics,
    "parallel": _parallel_metrics,
    "serve_loopback": _serve_metrics,
}


def _kind_of(report: Dict[str, Any]) -> str:
    kind = report.get("benchmark")
    if kind in _EXTRACTORS:
        return kind
    if "modes" in report and "wire_consistency" in report:
        return "parallel"  # BENCH_parallel.json carries no kind field
    raise ValueError(
        "unrecognised benchmark report: expected a 'benchmark' field of "
        f"{sorted(_EXTRACTORS)} or the parallel-report shape"
    )


def extract_metrics(report: Dict[str, Any]) -> Dict[str, float]:
    """Gateable metrics of a benchmark report, keyed by metric name."""
    return dict(_EXTRACTORS[_kind_of(report)](report))


def tolerance_for(metric: str,
                  default: float = DEFAULT_TOLERANCE) -> float:
    for prefix, tolerance in METRIC_TOLERANCES:
        if metric.startswith(prefix):
            return tolerance
    return default


def compare(baseline: Dict[str, Any], candidate: Dict[str, Any],
            baseline_path: str = "<baseline>",
            default_tolerance: float = DEFAULT_TOLERANCE) -> CheckReport:
    """Gate ``candidate`` against ``baseline``; both are report dicts.

    A metric passes when ``candidate / baseline >= 1 - tolerance``.
    Metrics only the baseline measured are skipped (smoke candidates
    omit the slow sweeps); metrics only the candidate measured are
    ignored (a new benchmark mode cannot regress).
    """
    base_metrics = extract_metrics(baseline)
    cand_metrics = extract_metrics(candidate)
    results: List[MetricResult] = []
    skipped: List[str] = []
    for metric, base_value in sorted(base_metrics.items()):
        if metric not in cand_metrics:
            skipped.append(metric)
            continue
        cand_value = cand_metrics[metric]
        tolerance = tolerance_for(metric, default_tolerance)
        ratio = (cand_value / base_value) if base_value > 0 \
            else float("inf")
        results.append(MetricResult(
            metric=metric,
            baseline=base_value,
            candidate=cand_value,
            ratio=round(ratio, 4),
            tolerance=tolerance,
            ok=ratio >= 1.0 - tolerance,
        ))
    if not results:
        raise ValueError(
            f"no comparable metrics between {baseline_path} and the "
            f"candidate report"
        )
    return CheckReport(
        baseline_path=str(baseline_path),
        ok=all(result.ok for result in results),
        results=results,
        skipped=skipped,
    )


def run_fleet_smoke(fleet: int = 100_000,
                    progress=None) -> Dict[str, Any]:
    """Fresh fleet-benchmark candidate: one cohort-sampled smoke point.

    Imported lazily so ``repro bench check --candidate`` (pure
    file-vs-file mode) stays free of the engine import cost.
    """
    from repro.experiments.fleet import sweep

    return sweep((fleet,), smoke=True, progress=progress)


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def write_report(path: Union[str, Path], report: CheckReport) -> None:
    Path(path).write_text(
        json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
    )
