"""Persistence: model checkpoints and training histories.

State dicts save to ``.npz`` (one array per parameter); histories save
to JSON so external tooling can plot the benchmark curves.  Both
round-trip exactly (up to float32 storage for checkpoints).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.fl.history import RoundRecord, TrainingHistory
from repro.telemetry.spans import to_jsonable

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "save_state_dict",
    "load_state_dict",
    "save_history",
    "load_history",
]

PathLike = Union[str, Path]


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> None:
    """Save a state dict to a compressed ``.npz`` checkpoint.

    Matches ``np.savez_compressed`` naming (a ``.npz`` suffix is
    appended when missing) but writes atomically so a kill mid-write
    cannot leave a torn archive.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **state)
    atomic_write_bytes(path, buffer.getvalue())


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a checkpoint produced by :func:`save_state_dict`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_history(history: TrainingHistory, path: PathLike) -> None:
    """Serialise a training history to JSON."""
    payload = {
        "strategy": history.strategy,
        "model_name": history.model_name,
        "higher_is_better": history.higher_is_better,
        "rounds": [
            {
                "round_index": record.round_index,
                "sim_time_s": record.sim_time_s,
                "round_time_s": record.round_time_s,
                "metric": record.metric,
                "eval_loss": record.eval_loss,
                "train_loss": record.train_loss,
                "ratios": {str(k): v for k, v in record.ratios.items()},
                "completion_times": {
                    str(k): v for k, v in record.completion_times.items()
                },
                "discarded": list(record.discarded),
                "overhead_s": record.overhead_s,
                "carried_over": list(record.carried_over),
                # per-cohort aggregates under history_detail="cohort";
                # omitted under member detail to keep old files byte-
                # compatible
                **(
                    {"cohorts": to_jsonable(record.cohorts)}
                    if record.cohorts is not None else {}
                ),
                # extras hold hook/telemetry payloads that may nest
                # dicts/lists and carry numpy scalars
                "extras": to_jsonable(record.extras),
            }
            for record in history.rounds
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_history(path: PathLike) -> TrainingHistory:
    """Load a history produced by :func:`save_history`."""
    payload = json.loads(Path(path).read_text())
    history = TrainingHistory(
        strategy=payload["strategy"],
        model_name=payload["model_name"],
        higher_is_better=payload["higher_is_better"],
    )
    for entry in payload["rounds"]:
        history.append(RoundRecord(
            round_index=entry["round_index"],
            sim_time_s=entry["sim_time_s"],
            round_time_s=entry["round_time_s"],
            metric=entry["metric"],
            eval_loss=entry["eval_loss"],
            train_loss=entry["train_loss"],
            ratios={int(k): v for k, v in entry["ratios"].items()},
            completion_times={
                int(k): v for k, v in entry["completion_times"].items()
            },
            discarded=list(entry["discarded"]),
            overhead_s=entry["overhead_s"],
            # absent in histories written before the round engine
            carried_over=list(entry.get("carried_over", [])),
            # absent before cohort-sharded rounds and under member detail
            cohorts=entry.get("cohorts"),
            extras=dict(entry.get("extras", {})),
        ))
    return history
