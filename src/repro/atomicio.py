"""Atomic file-write primitives.

Dependency-free on purpose: these are imported by low-level modules
(:mod:`repro.fl.checkpoint`, the telemetry exporters) as well as the
high-level persistence facade :mod:`repro.io`, so nothing here may
import from the rest of the package.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically.

    The bytes land in a same-directory temp file first, are flushed and
    fsynced, then renamed over the destination with ``os.replace`` --
    readers (and a process killed mid-write) only ever see the old
    complete file or the new complete file, never a truncated one.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically write UTF-8 text (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode("utf-8"))
