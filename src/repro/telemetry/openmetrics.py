"""OpenMetrics / Prometheus text-format rendering and parsing.

:func:`render_openmetrics` turns a
:class:`~repro.telemetry.metrics.MetricsRegistry` into the OpenMetrics
text exposition format -- the lingua franca every Prometheus-compatible
scraper understands::

    # TYPE dispatches counter
    dispatches_total{worker="3"} 12
    # TYPE round_time_s histogram
    round_time_s_bucket{le="0.5"} 0
    round_time_s_bucket{le="+Inf"} 6
    round_time_s_sum 41.2
    round_time_s_count 6
    # EOF

Rendering rules follow the spec where it bites:

- metric and label *names* are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*``
  (offending characters collapse to ``_``);
- counter families are exposed without the ``_total`` suffix in their
  ``# TYPE`` line while their samples carry it (the registry's counters
  are already named ``*_total`` by convention, so the family name is
  the name minus that suffix);
- label *values* escape ``\\``, ``"`` and newlines;
- histogram buckets are cumulative and always end with ``le="+Inf"``;
- the exposition ends with ``# EOF``.

:func:`parse_openmetrics` is a deliberately strict reader of the same
grammar (families must be typed before their samples, bucket counts
must be monotone, the terminator must be present).  It exists so the
exporter is validated by an actual round-trip in the test suite rather
than by eyeballing, and doubles as a tool for asserting on scraped
output in integration tests.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "MetricFamily",
    "Sample",
    "OpenMetricsParseError",
    "render_openmetrics",
    "parse_openmetrics",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_FIX = re.compile(r"[^a-zA-Z0-9_]")

#: sample-line grammar: name, optional {labels}, value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` into a legal metric name."""
    if _NAME_OK.match(name):
        return name
    fixed = _NAME_FIX.sub("_", name)
    if not fixed or not re.match(r"[a-zA-Z_:]", fixed[0]):
        fixed = "_" + fixed
    return fixed


def sanitize_label_name(name: str) -> str:
    """Coerce ``name`` into a legal label name."""
    fixed = _LABEL_FIX.sub("_", name)
    if not fixed or not re.match(r"[a-zA-Z_]", fixed[0]):
        fixed = "_" + fixed
    return fixed


def escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_label_name(str(key))}='
        f'"{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items(), key=lambda kv: str(kv[0]))
    )
    return "{" + inner + "}"


def render_openmetrics(registry) -> str:
    """Render a :class:`MetricsRegistry` as OpenMetrics text."""
    lines: List[str] = []

    # families group instruments sharing a name; emit one TYPE line per
    # family followed by every labelled sample, in first-seen order
    counter_families: Dict[str, List] = {}
    for counter in registry.counters:
        counter_families.setdefault(counter.name, []).append(counter)
    for name, counters in counter_families.items():
        metric = sanitize_metric_name(name)
        family = metric[:-len("_total")] if metric.endswith("_total") \
            else metric
        lines.append(f"# TYPE {family} counter")
        for counter in counters:
            lines.append(
                f"{family}_total{_render_labels(counter.labels)} "
                f"{_format_value(counter.value)}"
            )

    gauge_families: Dict[str, List] = {}
    for gauge in registry.gauges:
        if gauge.value is None:
            continue
        gauge_families.setdefault(gauge.name, []).append(gauge)
    for name, gauges in gauge_families.items():
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        for gauge in gauges:
            lines.append(
                f"{family}{_render_labels(gauge.labels)} "
                f"{_format_value(gauge.value)}"
            )

    histogram_families: Dict[str, List] = {}
    for histogram in registry.histograms:
        histogram_families.setdefault(histogram.name, []).append(histogram)
    for name, histograms in histogram_families.items():
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        for histogram in histograms:
            cumulative = 0
            for bound, count in zip(histogram.bounds,
                                    histogram.bucket_counts):
                cumulative += count
                labels = dict(histogram.labels)
                labels["le"] = _format_value(bound)
                lines.append(
                    f"{family}_bucket{_render_labels(labels)} "
                    f"{cumulative}"
                )
            labels = dict(histogram.labels)
            labels["le"] = "+Inf"
            lines.append(
                f"{family}_bucket{_render_labels(labels)} "
                f"{histogram.count}"
            )
            base = _render_labels(histogram.labels)
            lines.append(f"{family}_sum{base} "
                         f"{_format_value(histogram.sum)}")
            lines.append(f"{family}_count{base} {histogram.count}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class OpenMetricsParseError(ValueError):
    """The text violated the subset of the grammar we emit."""


@dataclass
class Sample:
    """One parsed sample line."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """One parsed metric family: its declared type plus its samples."""

    name: str
    type: str
    samples: List[Sample] = field(default_factory=list)

    def sample_value(self, name: str, **labels: str) -> float:
        """The value of the sample matching ``name`` and ``labels``."""
        wanted = {key: str(value) for key, value in labels.items()}
        for sample in self.samples:
            if sample.name == name and sample.labels == wanted:
                return sample.value
        raise KeyError(f"no sample {name}{wanted} in family {self.name}")


#: sample-name suffixes each family type may legally expose
_ALLOWED_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError as exc:
        raise OpenMetricsParseError(f"bad sample value {text!r}") from exc


def parse_openmetrics(text: str) -> Dict[str, MetricFamily]:
    """Parse OpenMetrics text into families keyed by family name.

    Enforces the invariants the renderer guarantees: every sample
    belongs to a previously-typed family, the sample-name suffix is
    legal for the family type, histogram buckets are cumulative and
    terminated by ``le="+Inf"``, and the exposition ends with
    ``# EOF``.
    """
    families: Dict[str, MetricFamily] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\r")
        if not line:
            continue
        if saw_eof:
            raise OpenMetricsParseError(
                f"line {lineno}: content after # EOF"
            )
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise OpenMetricsParseError(
                    f"line {lineno}: malformed TYPE line {line!r}"
                )
            _, _, name, family_type = parts
            if family_type not in _ALLOWED_SUFFIXES:
                raise OpenMetricsParseError(
                    f"line {lineno}: unknown family type {family_type!r}"
                )
            if name in families:
                raise OpenMetricsParseError(
                    f"line {lineno}: family {name!r} typed twice"
                )
            families[name] = MetricFamily(name=name, type=family_type)
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT lines are legal noise
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise OpenMetricsParseError(
                f"line {lineno}: malformed sample {line!r}"
            )
        name = match.group("name")
        family = _owning_family(families, name)
        if family is None:
            raise OpenMetricsParseError(
                f"line {lineno}: sample {name!r} precedes its TYPE line"
            )
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for label in _LABEL_RE.finditer(label_text):
                labels[label.group("key")] = _unescape_label_value(
                    label.group("value")
                )
                consumed = label.end()
            rest = label_text[consumed:].strip(", ")
            if rest:
                raise OpenMetricsParseError(
                    f"line {lineno}: malformed labels {label_text!r}"
                )
        family.samples.append(Sample(
            name=name, labels=labels,
            value=_parse_value(match.group("value")),
        ))
    if not saw_eof:
        raise OpenMetricsParseError("missing # EOF terminator")
    for family in families.values():
        _validate_family(family)
    return families


def _owning_family(families: Dict[str, MetricFamily],
                   sample_name: str):
    """Resolve a sample to its family via the type's legal suffixes."""
    for family in families.values():
        for suffix in _ALLOWED_SUFFIXES[family.type]:
            if sample_name == family.name + suffix:
                return family
    return None


def _validate_family(family: MetricFamily) -> None:
    if family.type != "histogram":
        return
    # bucket series must be cumulative per label set and end at +Inf
    series: Dict[Tuple[Tuple[str, str], ...], List[Sample]] = {}
    for sample in family.samples:
        if not sample.name.endswith("_bucket"):
            continue
        key = tuple(sorted(
            (k, v) for k, v in sample.labels.items() if k != "le"
        ))
        series.setdefault(key, []).append(sample)
    for key, samples in series.items():
        counts = [sample.value for sample in samples]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise OpenMetricsParseError(
                f"histogram {family.name}{dict(key)}: bucket counts "
                f"are not cumulative"
            )
        if samples[-1].labels.get("le") != "+Inf":
            raise OpenMetricsParseError(
                f"histogram {family.name}{dict(key)}: missing "
                f'le="+Inf" bucket'
            )
