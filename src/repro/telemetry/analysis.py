"""Offline analytics over span-trace JSONL files.

The tracer writes one JSON object per *closed* span (children before
parents, ``parent_id`` linking the tree).  This module reads those
files back and answers the questions an operator actually asks of a
fleet-scale run:

- :func:`load_trace` -- parse a JSONL trace, tolerating a truncated
  final line (crash-safe sinks flush per line, so at most the last
  record can be torn);
- :func:`build_tree` -- reconstruct the span forest;
- :func:`phase_breakdown` -- per-phase totals/self-time across the
  whole run or one round;
- :func:`round_summaries` + :func:`round_trends` -- per-round wall
  time and phase attribution, with p50/p95/p99 trends;
- :func:`critical_path` -- the longest child chain through a round,
  i.e. what to optimise to make the round faster;
- :func:`diff_traces` -- phase-by-phase comparison of two traces,
  ranked by absolute slowdown, for "what regressed between A and B";
- :func:`folded_stacks` -- ``stack;path;names <self-µs>`` lines
  consumable by standard flamegraph tooling
  (``flamegraph.pl``, speedscope, inferno).

Everything here is pure: files in, dicts/strings out.  The CLI's
``repro trace`` subcommand is a thin presentation layer over it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "SpanNode",
    "load_trace",
    "build_tree",
    "phase_breakdown",
    "round_summaries",
    "round_trends",
    "critical_path",
    "diff_traces",
    "folded_stacks",
]


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a span-trace JSONL file into a list of records.

    A torn final line (process killed mid-write) is silently dropped;
    a malformed line anywhere else raises, because that means the file
    is not one of ours.
    """
    records: List[Dict[str, Any]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail from a crash; everything before is good
            raise ValueError(
                f"{path}: malformed trace record on line {index + 1}"
            )
    return records


@dataclass
class SpanNode:
    """One span plus its children, reconstructed from the flat stream."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    duration_s: float
    attrs: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Duration not covered by child spans (clipped at zero)."""
        return max(0.0, self.duration_s -
                   sum(child.duration_s for child in self.children))

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_tree(records: Sequence[Dict[str, Any]]) -> List[SpanNode]:
    """Reconstruct the span forest; roots in start order.

    Spans whose parent never closed (aborted runs) become roots, so a
    partial trace still yields a usable tree.
    """
    nodes: Dict[int, SpanNode] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        node = SpanNode(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start_s=record["start_s"],
            duration_s=record["duration_s"],
            attrs=record.get("attrs", {}) or {},
        )
        nodes[node.span_id] = node
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.start_s)
    roots.sort(key=lambda node: node.start_s)
    return roots


def _round_roots(roots: Sequence[SpanNode]) -> List[SpanNode]:
    rounds = [node for root in roots for node in root.walk()
              if node.name == "round"]
    rounds.sort(key=lambda node: (node.attrs.get("round", -1),
                                  node.start_s))
    return rounds


def phase_breakdown(
    roots: Sequence[SpanNode],
    round_index: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Aggregate span time by phase (span name), descending by total.

    ``total_s`` is wall time inside spans of that name; ``self_s``
    subtracts child spans, so the column sums to actual wall time
    instead of double-charging nested phases.  Restrict to one round
    with ``round_index``.
    """
    scope: List[SpanNode] = []
    if round_index is None:
        for root in roots:
            scope.extend(root.walk())
    else:
        for round_node in _round_roots(roots):
            if round_node.attrs.get("round") == round_index:
                scope.extend(round_node.walk())
    phases: Dict[str, Dict[str, Any]] = {}
    for node in scope:
        entry = phases.setdefault(node.name, {
            "phase": node.name, "count": 0, "total_s": 0.0,
            "self_s": 0.0, "max_s": 0.0,
        })
        entry["count"] += 1
        entry["total_s"] += node.duration_s
        entry["self_s"] += node.self_s
        entry["max_s"] = max(entry["max_s"], node.duration_s)
    for entry in phases.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return sorted(phases.values(),
                  key=lambda entry: entry["total_s"], reverse=True)


def critical_path(round_node: SpanNode) -> List[Dict[str, Any]]:
    """The longest-child chain through one round span.

    At every level, descend into the child with the largest duration;
    each step reports the span, its duration, its self time, and its
    share of the round.  This is the chain whose spans must shrink for
    the round to finish sooner.
    """
    path: List[Dict[str, Any]] = []
    node: Optional[SpanNode] = round_node
    total = round_node.duration_s or 1e-12
    while node is not None:
        path.append({
            "name": node.name,
            "duration_s": node.duration_s,
            "self_s": node.self_s,
            "share": node.duration_s / total,
            "attrs": {key: node.attrs[key]
                      for key in ("round", "worker", "cohort", "ratio",
                                  "cluster", "members", "path",
                                  "plan_sig")
                      if key in node.attrs},
        })
        node = max(node.children, default=None,
                   key=lambda child: child.duration_s)
    return path


def round_summaries(roots: Sequence[SpanNode]) -> List[Dict[str, Any]]:
    """Per-round wall time plus top-level phase attribution."""
    summaries: List[Dict[str, Any]] = []
    for round_node in _round_roots(roots):
        phases: Dict[str, float] = {}
        for child in round_node.children:
            phases[child.name] = phases.get(child.name, 0.0) \
                + child.duration_s
        path = critical_path(round_node)
        summaries.append({
            "round": round_node.attrs.get("round"),
            "duration_s": round_node.duration_s,
            "phases": phases,
            "untracked_s": round_node.self_s,
            "critical_path": path,
            "critical_leaf": path[-1]["name"] if path else None,
        })
    return summaries


def _percentile(values: Sequence[float], p: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + fraction * (ordered[high] - ordered[low])


def round_trends(roots: Sequence[SpanNode]) -> Dict[str, Any]:
    """p50/p95/p99 of round wall time and of each top-level phase."""
    summaries = round_summaries(roots)
    durations = [summary["duration_s"] for summary in summaries]
    phase_series: Dict[str, List[float]] = {}
    for summary in summaries:
        for phase, seconds in summary["phases"].items():
            phase_series.setdefault(phase, []).append(seconds)
    def stats(values: Sequence[float]) -> Dict[str, float]:
        return {
            "count": len(values),
            "total_s": sum(values),
            "p50_s": _percentile(values, 50.0),
            "p95_s": _percentile(values, 95.0),
            "p99_s": _percentile(values, 99.0),
            "max_s": max(values) if values else 0.0,
        }
    return {
        "rounds": stats(durations),
        "phases": {phase: stats(values)
                   for phase, values in sorted(phase_series.items())},
    }


def diff_traces(
    records_a: Sequence[Dict[str, Any]],
    records_b: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Phase-by-phase comparison of two traces, worst slowdown first.

    ``delta_total_s`` is B minus A (positive = B slower); ``ratio`` is
    B's mean over A's mean.  Phases present in only one trace appear
    with the other side zeroed, so added/removed phases surface too.
    """
    breakdown_a = {entry["phase"]: entry
                   for entry in phase_breakdown(build_tree(records_a))}
    breakdown_b = {entry["phase"]: entry
                   for entry in phase_breakdown(build_tree(records_b))}
    rows: List[Dict[str, Any]] = []
    for phase in sorted(set(breakdown_a) | set(breakdown_b)):
        entry_a = breakdown_a.get(phase)
        entry_b = breakdown_b.get(phase)
        total_a = entry_a["total_s"] if entry_a else 0.0
        total_b = entry_b["total_s"] if entry_b else 0.0
        mean_a = entry_a["mean_s"] if entry_a else 0.0
        mean_b = entry_b["mean_s"] if entry_b else 0.0
        rows.append({
            "phase": phase,
            "count_a": entry_a["count"] if entry_a else 0,
            "count_b": entry_b["count"] if entry_b else 0,
            "total_a_s": total_a,
            "total_b_s": total_b,
            "delta_total_s": total_b - total_a,
            "mean_a_s": mean_a,
            "mean_b_s": mean_b,
            "ratio": (mean_b / mean_a) if mean_a > 0 else None,
        })
    rows.sort(key=lambda row: row["delta_total_s"], reverse=True)
    return rows


def folded_stacks(roots: Sequence[SpanNode]) -> str:
    """Render the forest as folded stacks for flamegraph tooling.

    One line per distinct root-to-span path, ``;``-joined names then a
    space and the path's aggregate *self* time in integer microseconds
    (flamegraph counts must be integers; µs keeps sub-ms phases
    visible).  Zero-self-µs paths are dropped.
    """
    totals: Dict[str, int] = {}

    def visit(node: SpanNode, prefix: Tuple[str, ...]) -> None:
        stack = prefix + (node.name,)
        micros = int(round(node.self_s * 1e6))
        if micros > 0:
            key = ";".join(stack)
            totals[key] = totals.get(key, 0) + micros
        for child in node.children:
            visit(child, stack)

    for root in roots:
        visit(root, ())
    return "\n".join(f"{stack} {count}"
                     for stack, count in sorted(totals.items())) + "\n"
