"""Observability for the round engine: tracing, metrics, profiling.

The subsystem has four cooperating pieces, all cheap no-ops until a
sink or registry is attached:

- :mod:`repro.telemetry.spans` -- nested span tracer exported as
  JSONL (``round`` / ``decide`` / ``prune`` / ``dispatch`` /
  ``local_train`` / ``aggregate`` / ``eval``);
- :mod:`repro.telemetry.metrics` -- counters, gauges and fixed-bucket
  histograms keyed by name + labels, with p50/p95/p99 summaries;
- :mod:`repro.telemetry.profiler` -- per-layer forward/backward time
  and analytic FLOPs for one worker's local training;
- :mod:`repro.telemetry.hook` -- the :class:`TelemetryHook` round
  hook publishing engine activity (including FedMP's per-worker E-UCB
  snapshots) into the above.

:class:`~repro.telemetry.runtime.Telemetry` bundles the instruments;
pass it to :func:`repro.fl.runner.run_federated_training` (or use the
CLI flags ``--trace-out`` / ``--metrics-out`` / ``--profile-worker``).

On top of the core sit the observability exits and analytics:

- :mod:`repro.telemetry.openmetrics` -- Prometheus/OpenMetrics text
  rendering (``MetricsRegistry.to_openmetrics()``) and a strict
  round-trip parser;
- :mod:`repro.telemetry.export` -- run-manifest JSON (trace + metrics
  + config + git SHA) and the opt-in ``/metrics`` HTTP scrape
  endpoint;
- :mod:`repro.telemetry.analysis` -- offline trace analytics behind
  ``repro trace`` (critical paths, phase breakdowns, trends, diffs,
  folded stacks).
"""

from repro.telemetry.analysis import (
    SpanNode,
    build_tree,
    critical_path,
    diff_traces,
    folded_stacks,
    load_trace,
    phase_breakdown,
    round_summaries,
    round_trends,
)
from repro.telemetry.export import (
    MetricsHTTPServer,
    git_revision,
    write_run_manifest,
)
from repro.telemetry.hook import TelemetryHook
from repro.telemetry.openmetrics import (
    OpenMetricsParseError,
    parse_openmetrics,
    render_openmetrics,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_instrument,
)
from repro.telemetry.profiler import LayerProfiler, LayerRecord
from repro.telemetry.runtime import DISABLED_TELEMETRY, Telemetry
from repro.telemetry.spans import (
    RECORD_KINDS,
    SPAN_NAMES,
    ActiveSpan,
    JsonlSink,
    ListSink,
    Tracer,
    to_jsonable,
)

__all__ = [
    "ActiveSpan",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DISABLED_TELEMETRY",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LayerProfiler",
    "LayerRecord",
    "ListSink",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "OpenMetricsParseError",
    "RECORD_KINDS",
    "SPAN_NAMES",
    "SpanNode",
    "Telemetry",
    "TelemetryHook",
    "Tracer",
    "build_tree",
    "critical_path",
    "diff_traces",
    "folded_stacks",
    "format_instrument",
    "git_revision",
    "load_trace",
    "parse_openmetrics",
    "phase_breakdown",
    "render_openmetrics",
    "round_summaries",
    "round_trends",
    "to_jsonable",
    "write_run_manifest",
]
