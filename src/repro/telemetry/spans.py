"""Span-based tracing: nested host-time spans exported as JSONL.

A :class:`Tracer` opens named, attribute-carrying spans around the
round engine's building blocks (``round`` / ``decide`` / ``prune`` /
``dispatch`` / ``local_train`` / ``aggregate`` / ``eval``) and emits
one JSON object per *closed* span to a pluggable sink.  Children
therefore appear before their parents in the stream, like a Chrome
trace; ``parent_id`` reconstructs the tree.

Record schema (one JSON object per line)::

    {"kind": "span", "name": "local_train", "span_id": 17,
     "parent_id": 12, "start_s": 0.4183, "duration_s": 0.0921,
     "attrs": {"round": 1, "worker": 3, "tau": 2, "train_loss": 1.83}}

    {"kind": "event", "name": "eucb_snapshot", "parent_id": 12,
     "time_s": 0.5241, "attrs": {...}}

``start_s`` / ``time_s`` are host seconds relative to tracer creation.
A tracer without a sink is disabled: ``span()`` hands back one shared
no-op context manager and ``event()`` returns immediately, so leaving
tracing off costs one attribute check per instrumentation point.
"""

from __future__ import annotations

import atexit
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

#: the span names the round engine, schedulers and the parallel
#: runtime emit ("serialize" / "transfer" / "parallel_train" only
#: appear with executor="process"; "dispatch_cohort" / "cohort_train"
#: only with cohort-sharded rounds)
SPAN_NAMES = frozenset(
    {"round", "decide", "prune", "dispatch", "dispatch_cohort",
     "local_train", "cohort_train", "aggregate", "eval", "serialize",
     "transfer", "parallel_train"}
)

#: every record kind a sink may receive
RECORD_KINDS = frozenset({"span", "event"})


def to_jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-serialisable primitives.

    NumPy scalars become Python scalars, arrays become lists, mapping
    keys become strings; anything unrecognised falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    return str(value)


class JsonlSink:
    """Appends one compact JSON line per record to a file.

    The file is line-buffered (``buffering=1``): every record hits the
    OS as soon as its newline is written, so a crash or
    ``KeyboardInterrupt`` mid-run can lose at most the record being
    serialised -- never leave a half-written earlier line.  Together
    with the tracer's atexit hook this is what makes partial traces
    parseable.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8", buffering=1)

    def emit(self, record: Dict[str, Any]) -> None:
        if self._file.closed:
            return  # late emit after an atexit close: drop, don't crash
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class ListSink:
    """Collects records in memory (tests and ad-hoc inspection)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:  # symmetry with JsonlSink
        pass

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The collected span records, optionally filtered by name."""
        return [
            record for record in self.records
            if record["kind"] == "span"
            and (name is None or record["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The collected event records, optionally filtered by name."""
        return [
            record for record in self.records
            if record["kind"] == "event"
            and (name is None or record["name"] == name)
        ]


class _NoopSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        """Discard the attribute."""


NOOP_SPAN = _NoopSpan()


class ActiveSpan:
    """One live span; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "start_s")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.start_s: float = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = value

    def __enter__(self) -> "ActiveSpan":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # an exception unwinding through the span means its work did
        # not finish: mark it so partial traces are self-describing
        if exc_type is not None:
            self.attrs.setdefault("aborted", True)
        self._tracer._exit(self)
        return False


class Tracer:
    """Nested-span tracer over one sink.

    Spans nest via an explicit stack (the engine is single-threaded);
    the innermost open span is the parent of new spans and events.

    A tracer with a sink registers an :mod:`atexit` hook so the trace
    survives crashes and ``KeyboardInterrupt``: at interpreter exit any
    still-open spans are force-closed (marked ``aborted=true``) and the
    sink is flushed.  :meth:`close` is idempotent and unregisters the
    hook; the tracer is also a context manager (``with Tracer(sink):``)
    closing on exit.
    """

    def __init__(self, sink=None) -> None:
        self._sink = sink
        self._stack: List[ActiveSpan] = []
        self._origin = time.perf_counter()
        self._next_id = 1
        self._closed = False
        if sink is not None:
            atexit.register(self.close)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def enabled(self) -> bool:
        return self._sink is not None

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def span(self, name: str, **attrs: Any):
        """Open a span; use as ``with tracer.span("prune", worker=3):``."""
        if self._sink is None:
            return NOOP_SPAN
        return ActiveSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time record under the current span."""
        if self._sink is None:
            return
        parent = self._stack[-1].span_id if self._stack else None
        self._sink.emit({
            "kind": "event",
            "name": name,
            "parent_id": parent,
            "time_s": self._now(),
            "attrs": to_jsonable(attrs),
        })

    def _enter(self, span: ActiveSpan) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.start_s = self._now()
        self._stack.append(span)

    def _exit(self, span: ActiveSpan) -> None:
        if span in self._stack:
            # tolerate mis-nested exits by unwinding to this span
            while self._stack:
                if self._stack.pop() is span:
                    break
        self._sink.emit({
            "kind": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_s": span.start_s,
            "duration_s": self._now() - span.start_s,
            "attrs": to_jsonable(span.attrs),
        })

    def close(self) -> None:
        """Force-close open spans, then close the sink (idempotent).

        Spans still open when the tracer closes -- a crash or interrupt
        unwound past their ``with`` blocks -- are emitted with
        ``aborted: true`` so the trace stays a parseable record of how
        far the run got.
        """
        if self._closed:
            return
        self._closed = True
        if self._sink is not None:
            while self._stack:
                span = self._stack[-1]
                span.set("aborted", True)
                self._exit(span)
            close = getattr(self._sink, "close", None)
            if close is not None:
                close()
            atexit.unregister(self.close)
