"""Metrics registry: counters, gauges and fixed-bucket histograms.

Instruments are keyed by name plus a label set (worker id, layer,
strategy, ...), mirroring the Prometheus data model at the scale of one
in-process experiment:

- :class:`Counter` -- monotonically increasing totals (parameters
  moved, dispatches issued);
- :class:`Gauge` -- last-written values (a worker's current pruning
  ratio);
- :class:`Histogram` -- fixed-bucket distributions with approximate
  p50/p95/p99 summaries (round times, training losses).

A registry constructed with ``enabled=False`` hands out shared no-op
instruments, so instrumented code pays one dictionary-free call per
observation when metrics are off.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.telemetry.spans import to_jsonable

#: default bucket upper bounds, sized for host seconds (sub-ms .. minutes)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def format_instrument(name: str, labels: Dict[str, Any]) -> str:
    """Human-readable ``name{k=v,...}`` identifier for reports."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items(),
                                                   key=lambda kv: kv[0]))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are ascending upper bounds; one implicit overflow
    bucket catches everything above the last bound.  Percentiles are
    estimated by linear interpolation inside the winning bucket (the
    overflow bucket reports the observed maximum), which is exact
    enough for the p50/p95/p99 round-time summaries the benchmarks
    report -- but only while few observations overflow, so any
    percentile that lands in the overflow bucket is clipped to the
    max.  :attr:`overflow_count` is therefore reported
    explicitly: a non-zero overflow share means the bucket layout
    needs widening (see ``MetricsRegistry(bucket_overrides=...)``).
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(self, name: str, labels: Dict[str, Any],
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def percentile(self, p: float) -> Optional[float]:
        """Approximate p-th percentile (``None`` with no observations)."""
        if self.count == 0:
            return None
        rank = (p / 100.0) * self.count
        cumulative = 0.0
        lower = self.min
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            if bucket_count:
                upper = min(bound, self.max)
                low_edge = max(lower, self.min)
                if cumulative + bucket_count >= rank:
                    fraction = (rank - cumulative) / bucket_count
                    return low_edge + fraction * max(0.0, upper - low_edge)
                cumulative += bucket_count
            lower = bound
        return self.max

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    @property
    def overflow_count(self) -> int:
        """Observations above the last configured bucket bound.

        These land in the implicit overflow bucket, where percentile
        interpolation degrades to the observed max -- a non-zero count
        is the signal that the bucket layout clips the tail and should
        be widened per-histogram via ``bucket_overrides``.
        """
        return self.bucket_counts[-1]

    def summary(self) -> Dict[str, Optional[float]]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": None, "min": None,
                    "max": None, "p50": None, "p95": None, "p99": None,
                    "overflow": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "overflow": self.overflow_count,
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by name + labels.

    ``bucket_overrides`` maps a histogram *name* to the bucket bounds
    every histogram of that name should use when its call site does not
    pass explicit ``buckets`` -- the way to widen e.g. ``round_time_s``
    for fleet-scale runs without touching the instrumented code.  An
    explicit ``buckets=`` argument at the call site still wins.
    """

    def __init__(self, enabled: bool = True,
                 bucket_overrides: Optional[
                     Dict[str, Sequence[float]]] = None) -> None:
        self.enabled = enabled
        self.bucket_overrides: Dict[str, Tuple[float, ...]] = {
            name: tuple(float(b) for b in bounds)
            for name, bounds in (bucket_overrides or {}).items()
        }
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # instrument accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any):
        if not self.enabled:
            return _NULL_COUNTER
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, labels)
        return counter

    def gauge(self, name: str, **labels: Any):
        if not self.enabled:
            return _NULL_GAUGE
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name, labels)
        return gauge

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any):
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            if buckets is None:
                buckets = self.bucket_overrides.get(name,
                                                    DEFAULT_TIME_BUCKETS)
            histogram = self._histograms[key] = Histogram(
                name, labels, buckets,
            )
        return histogram

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def counters(self) -> List[Counter]:
        return list(self._counters.values())

    @property
    def gauges(self) -> List[Gauge]:
        return list(self._gauges.values())

    @property
    def histograms(self) -> List[Histogram]:
        return list(self._histograms.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump of every instrument."""
        return to_jsonable({
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {"name": h.name, "labels": h.labels,
                 "buckets": list(h.bounds),
                 "bucket_counts": list(h.bucket_counts),
                 "summary": h.summary()}
                for h in self._histograms.values()
            ],
        })

    def save(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_dict` as an indented JSON file (atomically)."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    def to_openmetrics(self) -> str:
        """Render every instrument in the OpenMetrics text format.

        The output is Prometheus-scrapable (counters gain the
        ``_total`` sample suffix, histograms expand to cumulative
        ``_bucket{le=...}`` series plus ``_sum``/``_count``) and ends
        with the ``# EOF`` terminator.  See
        :mod:`repro.telemetry.openmetrics` for the grammar and the
        round-trip parser the tests validate against.
        """
        from repro.telemetry.openmetrics import render_openmetrics

        return render_openmetrics(self)

    def export_openmetrics(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_openmetrics` to a text file (atomically)."""
        atomic_write_text(path, self.to_openmetrics())
