"""The :class:`Telemetry` bundle threaded through the round engine.

One object carries the three instruments (tracer, metrics registry,
optional per-layer profiler) so the engine, schedulers and hooks share
a single wiring point.  The module-level :data:`DISABLED_TELEMETRY`
singleton is what an engine uses when no telemetry was requested:
every instrument on it is a cheap no-op, which keeps the un-observed
hot path unchanged (the golden-trace test pins this bitwise).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import LayerProfiler
from repro.telemetry.spans import Tracer


class Telemetry:
    """Tracer + metrics registry + optional profiler, as one handle."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[LayerProfiler] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=False)
        )
        self.profiler = profiler

    @property
    def enabled(self) -> bool:
        return (self.tracer.enabled or self.metrics.enabled
                or self.profiler is not None)

    # convenience pass-throughs so call sites read ``telemetry.span(...)``
    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.tracer.event(name, **attrs)

    def close(self) -> None:
        """Flush and close the trace sink."""
        self.tracer.close()


#: shared all-no-op bundle; engines fall back to it when no telemetry
#: is passed (it holds no state, so sharing across engines is safe)
DISABLED_TELEMETRY = Telemetry()
