"""Exporters: run manifests and an HTTP metrics scrape endpoint.

Two ways observability data leaves the process:

- :func:`write_run_manifest` -- one JSON file tying a run's artifacts
  together (trace path, metrics path, history path, resolved config,
  git SHA, package version, CLI argv), so a benchmark number or trace
  found on disk six months later is attributable to the exact code and
  configuration that produced it;
- :class:`MetricsHTTPServer` -- an opt-in, stdlib-only HTTP endpoint
  serving the live :class:`MetricsRegistry` in OpenMetrics text format
  at ``/metrics`` (the format Prometheus scrapes).  It runs on a
  daemon thread and renders on demand, so it costs nothing between
  scrapes; this is the ROADMAP's service-mode beachhead.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.atomicio import atomic_write_text
from repro.telemetry.spans import to_jsonable

__all__ = [
    "git_revision",
    "write_run_manifest",
    "MetricsHTTPServer",
]

#: media type Prometheus expects from an OpenMetrics endpoint
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit SHA (plus ``-dirty``), or ``None``.

    Never raises: runs outside a checkout, or without git installed,
    simply have no revision to record.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if sha.returncode != 0:
            return None
        revision = sha.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if status.returncode == 0 and status.stdout.strip():
            revision += "-dirty"
        return revision
    except (OSError, subprocess.TimeoutExpired):
        return None


def write_run_manifest(
    path: Union[str, Path],
    *,
    config: Optional[Dict[str, Any]] = None,
    artifacts: Optional[Dict[str, Optional[str]]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the run manifest JSON and return the manifest dict.

    ``artifacts`` maps artifact kind (``trace`` / ``metrics`` /
    ``history`` / ...) to the path it was written to (``None`` entries
    are dropped).  ``config`` is the resolved run configuration;
    ``extra`` is for caller-specific fields (result summaries, bench
    modes).  The git SHA and package version are recorded
    automatically.
    """
    try:
        from repro import __version__ as package_version
    except ImportError:  # pragma: no cover - package always importable
        package_version = None
    manifest: Dict[str, Any] = {
        "kind": "repro-run-manifest",
        "schema_version": 1,
        "git_sha": git_revision(),
        "package_version": package_version,
        "python": sys.version.split()[0],
        "argv": list(sys.argv),
        "artifacts": {
            kind: str(artifact)
            for kind, artifact in (artifacts or {}).items()
            if artifact is not None
        },
        "config": to_jsonable(config or {}),
    }
    if extra:
        manifest.update(to_jsonable(extra))
    atomic_write_text(path, json.dumps(manifest, indent=2) + "\n")
    return manifest


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` from the registry the server carries."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        body = self.server.registry.to_openmetrics().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging."""


class MetricsHTTPServer:
    """Opt-in OpenMetrics scrape endpoint over a live registry.

    ``port=0`` (the default) binds an ephemeral port; read it back
    from :attr:`port` / :attr:`url`.  The server thread is a daemon,
    so a crashed run never hangs on it, but call :meth:`close` (or use
    the instance as a context manager) for an orderly shutdown.
    Rendering happens per request in the scraper's thread; the GIL
    makes the registry's dict reads safe against the training thread's
    writes.
    """

    def __init__(self, registry, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.registry = registry
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
