"""The round hook that feeds engine activity into a Telemetry bundle.

:class:`TelemetryHook` implements the :class:`repro.fl.hooks.RoundHook`
protocol (structurally -- this package stays import-free of
:mod:`repro.fl` so either can load first) and publishes three things:

- **metrics**: per-worker counters for dispatches/contributions and
  parameters moved, a gauge for each worker's current pruning ratio,
  histograms over completion times, train losses and round times, and
  fleet-health gauges (per-round drop/carryover/straggler/retry/fault
  rates derived from this round's counter deltas, plus the engine's
  ``fleet_sampled_fraction``) so a 100k-worker round is diagnosable
  from a handful of scalars;
- **trace events**: one ``round_record`` event per round summarising
  the :class:`~repro.fl.history.RoundRecord`, plus one
  ``eucb_snapshot`` event when the strategy exposes ``snapshot()``
  (FedMP's per-worker bandit state: arm means, confidence radii,
  pull counts and the interval partition);
- **record extras**: the same bandit snapshot under
  ``record.extras["eucb"]`` so saved histories carry the decision
  state round by round.

The engine calls :meth:`attach` once at construction, which is how the
hook reaches the strategy for snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.telemetry.runtime import Telemetry

#: simulated-seconds buckets for round/completion times (the host-time
#: defaults bottom out far below typical simulated durations)
SIM_TIME_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

LOSS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
)


class TelemetryHook:
    """Publish every observable round event into ``telemetry``."""

    #: counters whose per-round deltas become ``fleet_<name>_rate``
    #: gauges (rate = this round's increment / this round's
    #: participants)
    FLEET_RATE_COUNTERS = (
        ("straggler", "stragglers_total"),
        ("retry", "retries_total"),
        ("fault_drop", "faults_injected_total", ("kind", "drop")),
        ("fault_stale", "faults_injected_total", ("kind", "stale")),
    )

    def __init__(self, telemetry: Telemetry,
                 snapshot_bandit: bool = True) -> None:
        self.telemetry = telemetry
        self.snapshot_bandit = snapshot_bandit
        self._engine = None
        self._counter_marks: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # RoundHook protocol
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Remember the engine so round ends can reach the strategy."""
        self._engine = engine

    def on_dispatch(self, round_index: int, dispatch) -> None:
        metrics = self.telemetry.metrics
        worker = dispatch.worker_id
        metrics.counter("dispatches_total", worker=worker).inc()
        metrics.counter("download_params_total", worker=worker).inc(
            dispatch.download_params
        )
        metrics.gauge("pruning_ratio", worker=worker).set(dispatch.ratio)
        metrics.histogram("completion_time_s", buckets=SIM_TIME_BUCKETS,
                          worker=worker).observe(dispatch.costs.total_s)

    def on_contribution(self, round_index: int, dispatch, contribution,
                        train_loss: float) -> None:
        metrics = self.telemetry.metrics
        worker = dispatch.worker_id
        metrics.counter("contributions_total", worker=worker).inc()
        metrics.counter("upload_params_total", worker=worker).inc(
            dispatch.upload_params
        )
        metrics.histogram("train_loss", buckets=LOSS_BUCKETS).observe(
            train_loss
        )

    def on_aggregate(self, round_index: int, contributions) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("aggregations_total").inc()
        metrics.histogram(
            "contributions_per_round",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        ).observe(len(contributions))

    def on_round_end(self, record) -> None:
        metrics = self.telemetry.metrics
        metrics.histogram("round_time_s", buckets=SIM_TIME_BUCKETS).observe(
            record.round_time_s
        )
        metrics.histogram("overhead_s").observe(record.overhead_s)
        wall = record.extras.get("wall_time_s")
        if isinstance(wall, (int, float)):
            metrics.histogram("wall_time_s").observe(wall)

        self._fleet_health(record)

        snapshot = self._bandit_snapshot()
        if snapshot is not None:
            record.extras["eucb"] = snapshot
            self.telemetry.event("eucb_snapshot",
                                 round=record.round_index,
                                 snapshot=snapshot)
        self.telemetry.event(
            "round_record",
            round=record.round_index,
            sim_time_s=record.sim_time_s,
            round_time_s=record.round_time_s,
            train_loss=record.train_loss,
            metric=record.metric,
            ratios={str(wid): ratio
                    for wid, ratio in record.ratios.items()},
            discarded=list(record.discarded),
            carried_over=list(record.carried_over),
        )

    # ------------------------------------------------------------------
    # fleet health
    # ------------------------------------------------------------------
    def _round_participants(self, record) -> int:
        """Members this round at either history granularity."""
        cohorts = getattr(record, "cohorts", None)
        if cohorts:
            return sum(int(entry.get("members", 0)) for entry in cohorts)
        return len(record.ratios)

    def _counter_total(self, name: str,
                       label: Optional[tuple] = None) -> float:
        """Sum of every live instance of counter ``name`` (optionally
        restricted to one label value), without creating instruments."""
        total = 0.0
        for counter in self.telemetry.metrics.counters:
            if counter.name != name:
                continue
            if label is not None and \
                    str(counter.labels.get(label[0])) != label[1]:
                continue
            total += counter.value
        return total

    def _fleet_health(self, record) -> None:
        """Publish per-round health rates as ``fleet_*`` gauges.

        Drop/carryover rates come from the round record itself;
        straggler/retry/fault rates from this round's increment of the
        runtime counters (the hook remembers the previous totals, so
        the gauges read as rates even though the counters are
        cumulative).  All rates are per participating member.
        """
        metrics = self.telemetry.metrics
        if not metrics.enabled:
            return
        participants = max(1, self._round_participants(record))
        metrics.gauge("fleet_round_participants").set(
            self._round_participants(record)
        )
        metrics.gauge("fleet_drop_rate").set(
            len(record.discarded) / participants
        )
        metrics.gauge("fleet_carryover_rate").set(
            len(record.carried_over) / participants
        )
        for spec in self.FLEET_RATE_COUNTERS:
            key, name = spec[0], spec[1]
            label = spec[2] if len(spec) > 2 else None
            total = self._counter_total(name, label)
            delta = total - self._counter_marks.get(key, 0.0)
            self._counter_marks[key] = total
            metrics.gauge(f"fleet_{key}_rate").set(delta / participants)

    # ------------------------------------------------------------------
    # bandit introspection
    # ------------------------------------------------------------------
    def _bandit_snapshot(self) -> Optional[Dict[str, Any]]:
        if not self.snapshot_bandit or self._engine is None:
            return None
        snapshot = getattr(self._engine.strategy, "snapshot", None)
        if snapshot is None:
            return None
        return snapshot()
