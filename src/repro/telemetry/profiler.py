"""Per-layer profiler for :mod:`repro.nn` modules.

:class:`LayerProfiler` wraps every *leaf* module of a model (the
compute layers -- containers delegate to their children) so each
``forward`` / ``backward`` call is timed, and pairs the measured host
time with the analytic per-sample FLOP count from
:mod:`repro.models.flops`.  Attach it to one worker's local training
(``repro.cli run --profile-worker N``) to see where that worker's
round time actually goes, layer by layer.

Wrapping installs instance attributes shadowing the class methods and
removes them again on exit, so a profiled model is bitwise-identical
to an unprofiled one outside the ``attach`` context.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def _leaf_modules(model):
    """(name, module) pairs for the compute layers of ``model``."""
    leaf_iter = getattr(model, "leaf_modules", None)
    if leaf_iter is not None:
        yield from leaf_iter()
        return
    for name, module in model.named_modules():
        if not getattr(module, "_children", None):
            yield name, module


def _layer_flops(module, per_sample_shape) -> Optional[int]:
    """Analytic forward FLOPs per sample, ``None`` when uncountable."""
    from repro.models.flops import count_layer_flops

    return count_layer_flops(module, per_sample_shape)


@dataclass
class LayerRecord:
    """Accumulated measurements for one named layer."""

    name: str
    layer_type: str
    forward_calls: int = 0
    backward_calls: int = 0
    forward_s: float = 0.0
    backward_s: float = 0.0
    samples: int = 0
    #: analytic forward FLOPs/sample at the most recent profiled width
    flops_per_sample: Optional[int] = None
    #: forward FLOPs summed over every profiled sample (None when the
    #: layer type is uncountable, e.g. recurrent cells)
    total_flops: Optional[float] = None
    _flops_known_bad: bool = field(default=False, repr=False)

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "layer_type": self.layer_type,
            "forward_calls": self.forward_calls,
            "backward_calls": self.backward_calls,
            "forward_s": self.forward_s,
            "backward_s": self.backward_s,
            "total_s": self.total_s,
            "samples": self.samples,
            "flops_per_sample": self.flops_per_sample,
            "total_flops": self.total_flops,
        }


class LayerProfiler:
    """Times every leaf layer's forward/backward inside ``attach``.

    ``worker_id`` restricts engine-driven profiling to one worker
    (``None`` profiles whichever model is attached); records accumulate
    across attachments so a full run yields per-layer totals.
    """

    def __init__(self, worker_id: Optional[int] = None) -> None:
        self.worker_id = worker_id
        self.records: Dict[str, LayerRecord] = {}
        self.attach_count = 0

    def matches(self, worker_id: int) -> bool:
        """Should this worker's training be profiled?"""
        return self.worker_id is None or worker_id == self.worker_id

    # ------------------------------------------------------------------
    # wrapping
    # ------------------------------------------------------------------
    @contextmanager
    def attach(self, model):
        """Profile every forward/backward run on ``model`` in the body."""
        wrapped = []
        for name, module in _leaf_modules(model):
            record = self.records.get(name)
            if record is None:
                record = self.records[name] = LayerRecord(
                    name=name, layer_type=type(module).__name__,
                )
            self._wrap(module, record)
            wrapped.append(module)
        self.attach_count += 1
        try:
            yield self
        finally:
            for module in wrapped:
                # the instance attributes shadowing the class methods
                del module.forward
                del module.backward

    def _wrap(self, module, record: LayerRecord) -> None:
        original_forward = module.forward
        original_backward = module.backward
        # FLOPs depend on the attached (possibly pruned) width: resolve
        # once per attachment, from the first forward's input shape
        flops_cache: Dict[str, Any] = {}

        def forward(x, *args, **kwargs):
            start = time.perf_counter()
            out = original_forward(x, *args, **kwargs)
            record.forward_s += time.perf_counter() - start
            record.forward_calls += 1
            shape = getattr(x, "shape", None)
            if shape:
                batch = int(shape[0])
                record.samples += batch
                if "per_sample" not in flops_cache:
                    flops_cache["per_sample"] = (
                        None if record._flops_known_bad
                        else _layer_flops(module, shape[1:])
                    )
                    if flops_cache["per_sample"] is None:
                        record._flops_known_bad = True
                    else:
                        record.flops_per_sample = flops_cache["per_sample"]
                per_sample = flops_cache["per_sample"]
                if per_sample is not None:
                    record.total_flops = (record.total_flops or 0.0) \
                        + per_sample * batch
            return out

        def backward(grad_out, *args, **kwargs):
            start = time.perf_counter()
            grad_in = original_backward(grad_out, *args, **kwargs)
            record.backward_s += time.perf_counter() - start
            record.backward_calls += 1
            return grad_in

        module.forward = forward
        module.backward = backward

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> List[Dict[str, Any]]:
        """Per-layer dicts, most host time first."""
        return [
            record.to_dict()
            for record in sorted(self.records.values(),
                                 key=lambda r: r.total_s, reverse=True)
        ]

    @property
    def total_s(self) -> float:
        return sum(record.total_s for record in self.records.values())

    def publish(self, metrics) -> None:
        """Fold the accumulated totals into a metrics registry."""
        for record in self.records.values():
            metrics.counter("layer_forward_s", layer=record.name).inc(
                record.forward_s
            )
            metrics.counter("layer_backward_s", layer=record.name).inc(
                record.backward_s
            )
            if record.total_flops is not None:
                metrics.counter("layer_flops_total",
                                layer=record.name).inc(record.total_flops)
