"""FedMP reproduction: federated learning through adaptive model pruning.

This package reimplements the full system described in

    Jiang et al., "FedMP: Federated Learning through Adaptive Model
    Pruning in Heterogeneous Edge Computing", ICDE 2022

on a pure-NumPy substrate.  The top-level namespace re-exports the
pieces a downstream user typically needs:

- :mod:`repro.nn` -- the neural-network substrate (layers, losses, SGD),
- :mod:`repro.models` -- the paper's model zoo (CNN, AlexNet, VGG-19,
  ResNet-50, LSTM language model),
- :mod:`repro.pruning` -- l1-norm structured pruning, sub-model
  extraction/recovery and the R2SP residual machinery,
- :mod:`repro.bandit` -- the E-UCB pruning-ratio decision algorithm,
- :mod:`repro.simulation` -- the heterogeneous edge-device simulator,
- :mod:`repro.data` -- synthetic datasets and non-IID partitioners,
- :mod:`repro.fl` -- the parameter server, workers and all training
  strategies (FedMP plus the paper's baselines),
- :mod:`repro.telemetry` -- span tracing, metrics and per-layer
  profiling over the round engine.
"""

__version__ = "1.0.0"

__all__ = [
    "FLConfig",
    "run_federated_training",
    "make_strategy",
    "Telemetry",
    "TelemetryHook",
    "__version__",
]

_LAZY_EXPORTS = {
    "FLConfig": ("repro.fl.config", "FLConfig"),
    "run_federated_training": ("repro.fl.runner", "run_federated_training"),
    "make_strategy": ("repro.fl.strategies", "make_strategy"),
    "Telemetry": ("repro.telemetry.runtime", "Telemetry"),
    "TelemetryHook": ("repro.telemetry.hook", "TelemetryHook"),
}


def __getattr__(name):
    """Lazily resolve top-level exports so ``import repro.nn`` does not
    pull in the whole federated-learning stack."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
