"""Fig. 12: synchronous vs asynchronous settings (Algorithm 2).

Four variants on the same deployment: Syn-FL, Asyn-FL (m = 5 of 10),
FedMP and Asyn-FedMP.  The paper: Asyn-FedMP cuts completion time by
10-35% vs Asyn-FL, and synchronous FedMP remains best overall because
it aggregates information from all workers.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_time, print_table
from repro.experiments.setups import make_bench_task
from conftest import comm_volume_params, run_training

TARGET = 0.85
VARIANTS = [
    ("Syn-FL", "synfl", None),
    ("Asyn-FL", "synfl", 5),
    ("FedMP", "fedmp", None),
    ("Asyn-FedMP", "fedmp", 5),
]

PAPER_NOTE = (
    "paper (Fig. 12, AlexNet/CIFAR-10): Asyn-FedMP reduces completion "
    "time by 10-35% vs Asyn-FL; FedMP outperforms Asyn-FedMP because "
    "it aggregates sub-models from all workers."
)


def test_fig12_sync_vs_async(once):
    bench_task = make_bench_task("cnn")

    def experiment():
        results = {}
        for label, method, async_m in VARIANTS:
            extra_rounds = 16 if async_m else 8
            results[label] = run_training(
                bench_task, method, async_m=async_m,
                target_metric=TARGET,
                max_rounds=bench_task.max_rounds + extra_rounds,
            )
        return results

    results = once(experiment)

    def time_to(label):
        history = results[label]
        reached = history.time_to_target(TARGET)
        return reached if reached is not None else history.total_time_s

    rows = [
        [label, fmt_time(time_to(label)),
         f"{results[label].final_metric():.3f}",
         f"{comm_volume_params(results[label]) / 1e6:.1f}M",
         f"{results[label].percentile_round_time(95):.0f}s"]
        for label, _, _ in VARIANTS
    ]
    print_table(
        f"Fig. 12 -- time to {TARGET:.0%} accuracy ({bench_task.label})",
        ["Variant", "Time to target", "Final accuracy", "Params moved",
         "p95 round"],
        rows, note=PAPER_NOTE,
    )

    # asynchronous pruning beats asynchronous full-model FL
    assert time_to("Asyn-FedMP") < time_to("Asyn-FL"), rows
    # FedMP beats Syn-FL in both settings
    assert time_to("FedMP") < time_to("Syn-FL"), rows
    # the comm-volume hook instrumented every round of every variant
    assert all(
        "download_params" in record.extras and "upload_params" in record.extras
        for history in results.values() for record in history.rounds
    ), "comm-volume extras missing from cached histories"
    # the metrics registry summarised every cached run
    assert all(
        getattr(history, "telemetry_summary", None)
        and history.telemetry_summary["histograms"]
        for history in results.values()
    ), "telemetry summaries missing from cached histories"
