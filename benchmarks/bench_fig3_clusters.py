"""Fig. 3: worker clusters by computing mode and location.

Regenerates the 30-device deployment grid: cluster A (modes 0-1, near),
B (modes 1-2, mid), C (modes 2-3, far), and verifies the monotone
capability ordering the figure encodes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import print_table
from repro.simulation.cluster import make_scenario_devices, scenario_table


def test_fig3_worker_clusters(once):
    def experiment():
        rng = np.random.default_rng(42)
        return make_scenario_devices({"A": 10, "B": 10, "C": 10}, rng)

    devices = once(experiment)
    rows = [
        (device_id, cluster, mode, f"{mbps:.1f}")
        for device_id, cluster, mode, mbps in scenario_table(devices)
    ]
    print_table(
        "Fig. 3 -- 30 workers by cluster (mode x location)",
        ["Device", "Cluster", "Mode", "Mbps"],
        rows,
        note="paper (Fig. 3): clusters A/B/C with decreasing compute "
             "modes and increasing PS distance.",
    )

    by_cluster = {}
    for device in devices:
        by_cluster.setdefault(device.cluster, []).append(device)
    assert set(by_cluster) == {"A", "B", "C"}
    mean_speed = {
        c: np.mean([d.mode.relative_speed for d in ds])
        for c, ds in by_cluster.items()
    }
    mean_bw = {
        c: np.mean([d.bandwidth_bps for d in ds])
        for c, ds in by_cluster.items()
    }
    assert mean_speed["A"] > mean_speed["C"]
    assert mean_bw["A"] > mean_bw["B"] > mean_bw["C"]
