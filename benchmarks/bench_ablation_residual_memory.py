"""Residual-model memory overhead (Section III-C's quantization claim).

"The memory occupied by the residual model is only 10-20% of that by
the original model" once parameters are quantized with fewer bits.
We measure the dense and quantized footprints of real residual models
across pruning ratios and bit widths.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import print_table
from repro.experiments.setups import make_bench_task
from repro.pruning import build_pruning_plan, residual_state_dict
from repro.pruning.quantize import (
    quantization_error,
    quantize_state_dict,
    residual_memory_ratio,
)

RATIOS = (0.3, 0.6)
BITS = (4, 5, 8)


def test_residual_memory_overhead(once):
    bench_task = make_bench_task("cnn")
    task = bench_task.make_task()

    def experiment():
        model = task.build_model(np.random.default_rng(0))
        state = model.state_dict()
        rows = []
        for ratio in RATIOS:
            plan = build_pruning_plan(model, ratio)
            residual = residual_state_dict(state, plan)
            for bits in BITS:
                dense, quantized = residual_memory_ratio(residual, state,
                                                         bits=bits)
                error = quantization_error(
                    residual, quantize_state_dict(residual, bits=bits)
                )
                rows.append((ratio, bits, dense, quantized, error))
        return rows

    rows = once(experiment)
    print_table(
        "Residual-model memory vs quantization bits (CNN)",
        ["Ratio", "Bits", "Dense / model", "Quantized / model",
         "Max quant error"],
        [
            (f"{r:.1f}", b, f"{d:.2f}", f"{q:.3f}", f"{e:.2e}")
            for r, b, d, q, e in rows
        ],
        note="paper (Section III-C): quantized residuals occupy only "
             "10-20% of the original model's memory.",
    )

    for ratio, bits, dense, quantized, error in rows:
        assert quantized < dense
        if bits <= 5:
            assert 0.05 <= quantized <= 0.25, (bits, quantized)
    # error shrinks as bits grow
    by_ratio = {r: [e for rr, b, d, q, e in rows if rr == r] for r in RATIOS}
    for errors in by_ratio.values():
        assert errors[0] > errors[-1]
