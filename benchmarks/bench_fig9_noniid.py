"""Fig. 9: completion time under different non-IID levels.

Label-skew non-IID data (the MNIST/CIFAR construction) slows every
method down; FedMP keeps outperforming the baselines at every level.
The paper's VGG-19 numbers at level 30: FedMP cuts completion time by
30%/23%/16%/12% vs Syn-FL/UP-FL/FedProx/FlexCom.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_speedup, fmt_time, print_table
from repro.experiments.setups import (
    METHOD_LABELS,
    METHOD_ORDER,
    make_bench_task,
)
from conftest import run_training

LEVELS = (0, 80)
TARGET = 0.85  # slightly below the IID target so skewed runs finish

PAPER_NOTE = (
    "paper (Fig. 9): required time grows with the non-IID level for "
    "every method; FedMP stays fastest at every level."
)


def test_fig9_noniid_levels(once):
    bench_task = make_bench_task("cnn")

    def experiment():
        results = {}
        for level in LEVELS:
            results[level] = {
                method: run_training(
                    bench_task, method, non_iid_level=level,
                    target_metric=TARGET,
                    max_rounds=bench_task.max_rounds + 12,
                )
                for method in METHOD_ORDER
            }
        return results

    results = once(experiment)

    def time_to(level, method):
        history = results[level][method]
        reached = history.time_to_target(TARGET)
        return reached if reached is not None else history.total_time_s

    rows = []
    for level in LEVELS:
        times = {m: time_to(level, m) for m in METHOD_ORDER}
        rows.append(
            [f"y={level}"]
            + [fmt_time(times[m]) for m in METHOD_ORDER]
            + [fmt_speedup(times["synfl"], times["fedmp"])]
        )
    print_table(
        f"Fig. 9 -- time to {TARGET:.0%} accuracy vs non-IID level "
        f"({bench_task.label})",
        ["Level"] + [METHOD_LABELS[m] for m in METHOD_ORDER]
        + ["FedMP vs Syn-FL"],
        rows, note=PAPER_NOTE,
    )

    # skew costs Syn-FL time, and FedMP stays competitive at every
    # level (strictly ahead under IID; skew erodes pruned-model
    # convergence faster at bench scale, hence the slack)
    assert time_to(LEVELS[-1], "synfl") > time_to(0, "synfl") * 0.9, rows
    assert time_to(0, "fedmp") <= time_to(0, "synfl"), rows
    for level in LEVELS:
        assert time_to(level, "fedmp") <= time_to(level, "synfl") * 1.3, rows
