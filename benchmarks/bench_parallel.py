"""Serial vs process-pool execution on the Fig. 5 workload.

Runs the same seeded FedMP/R2SP CNN experiment (the Fig. 5 deployment:
medium heterogeneity, 10 devices) under ``executor="serial"`` and
``executor="process"`` (4 processes) and reports:

- wall-clock of the multi-worker local-training phase (the sum of the
  ``local_train`` span durations under serial execution vs the sum of
  the ``parallel_train`` batch spans under the pool) plus end-to-end
  wall time, in two modes:

  * **device-emulated** -- ``emulate_device_factor`` converts each
    dispatch's *simulated* device seconds into real sleep, so the
    latency-dominated regime the paper's testbed lives in (30 Jetson
    TX2 nodes) is reproduced on any host.  This is where the headline
    speedup comes from; it parallelises even on a single-core CI box
    because sleeping burns no CPU.
  * **compute-bound** -- no emulation.  On a multi-core host this also
    speeds up; on a 1-CPU container the training maths serialises and
    the mode documents the runtime's serialization overhead honestly.

- wire bytes per round from the ``wire_bytes_total`` counters, cross
  checked against CommVolumeHook's parameter counts: a dispatch frame
  carries its sub-model as exact float32 (4 bytes/param) plus plan
  indices and framing, so ``dispatch_bytes / (4 * download_params)``
  must sit a little above 1, and likewise for contributions.

Regenerate the committed baseline with::

    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_parallel.json

Both executors are bitwise identical (``repro verify --executor
process`` pins 0 ULPs), so the two runs being *timed* here produce the
same model -- only the clock differs.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time
from pathlib import Path

from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.engine import Engine
from repro.fl.hooks import CommVolumeHook
from repro.fl.schedulers import make_scheduler
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import ListSink, Tracer

ROUNDS = 3
NUM_PROCS = 4
#: real seconds slept per simulated device-second; 0.2 makes emulated
#: latency (~0.3-0.9s per worker-round) dominate bench-scale training
EMULATE_FACTOR = 0.2
FLOAT32_BYTES = 4
#: framing overhead band for the consistency check: payloads are exact
#: float32, so anything past 4 bytes/param is headers, tensor names and
#: packed plan indices
OVERHEAD_BAND = (1.0, 1.5)


def _counter_sum(metrics: MetricsRegistry, name: str, **labels) -> float:
    return sum(
        counter.value for counter in metrics.counters
        if counter.name == name and all(
            str(counter.labels.get(key)) == str(value)
            for key, value in labels.items()
        )
    )


def measure(executor: str, emulate_factor: float) -> dict:
    bench = make_bench_task("cnn")
    task = bench.make_task(0.0)
    devices = make_devices("medium")
    config = bench.make_config(
        "fedmp", max_rounds=ROUNDS, eval_every=ROUNDS, seed=17,
        target_metric=None, executor=executor, num_procs=NUM_PROCS,
        emulate_device_factor=emulate_factor,
    )
    sink = ListSink()
    telemetry = Telemetry(tracer=Tracer(sink=sink),
                          metrics=MetricsRegistry())
    comm = CommVolumeHook()
    engine = Engine(task, devices, config, hooks=[comm],
                    telemetry=telemetry)
    start = time.perf_counter()
    try:
        make_scheduler(config).run(engine)
    finally:
        engine.close()
    wall_s = time.perf_counter() - start

    phase_span = "parallel_train" if executor == "process" \
        else "local_train"
    train_phase_s = sum(span["duration_s"]
                        for span in sink.spans(phase_span))
    out = {
        "executor": executor,
        "emulate_device_factor": emulate_factor,
        "wall_s_total": round(wall_s, 3),
        "train_phase_s": round(train_phase_s, 3),
    }
    if executor == "process":
        metrics = telemetry.metrics
        wire = {
            kind: _counter_sum(metrics, "wire_bytes_total", kind=kind)
            for kind in ("dispatch", "template", "contribution")
        }
        out["wire_bytes"] = wire
        out["wire_bytes_per_round"] = {
            kind: round(value / ROUNDS, 1) for kind, value in wire.items()
        }
        out["retries_total"] = _counter_sum(metrics, "retries_total")
        out["stragglers_total"] = _counter_sum(metrics, "stragglers_total")
        out["comm_hook_params"] = {
            "download": comm.total_download_params,
            "upload": comm.total_upload_params,
        }
    return out


def wire_consistency(process_run: dict) -> dict:
    """``wire_bytes_total`` vs CommVolumeHook's parameter counts."""
    wire = process_run["wire_bytes"]
    params = process_run["comm_hook_params"]
    dispatch_ratio = wire["dispatch"] / (FLOAT32_BYTES * params["download"])
    contribution_ratio = (
        wire["contribution"] / (FLOAT32_BYTES * params["upload"])
    )
    low, high = OVERHEAD_BAND
    return {
        "dispatch_bytes_per_param": round(
            wire["dispatch"] / params["download"], 3),
        "contribution_bytes_per_param": round(
            wire["contribution"] / params["upload"], 3),
        "dispatch_overhead_ratio": round(dispatch_ratio, 4),
        "contribution_overhead_ratio": round(contribution_ratio, 4),
        "consistent": bool(
            low <= dispatch_ratio <= high
            and low <= contribution_ratio <= high
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON payload to this path")
    args = parser.parse_args()

    modes = {}
    for label, factor in (("emulated", EMULATE_FACTOR),
                          ("compute_bound", 0.0)):
        serial = measure("serial", factor)
        process = measure("process", factor)
        modes[label] = {
            "serial": serial,
            "process": process,
            "train_phase_speedup": round(
                serial["train_phase_s"] / process["train_phase_s"], 2),
            "wall_speedup": round(
                serial["wall_s_total"] / process["wall_s_total"], 2),
        }

    payload = {
        "workload": ("Fig. 5 deployment: CNN/MNIST bench task, medium "
                     "heterogeneity (10 devices), fedmp/r2sp, "
                     f"{ROUNDS} rounds"),
        "num_procs": NUM_PROCS,
        "host_cpu_count": multiprocessing.cpu_count(),
        "modes": modes,
        "wire_consistency": wire_consistency(modes["emulated"]["process"]),
        "notes": (
            "train_phase_speedup compares the local-training phase "
            "(local_train spans serially vs parallel_train batches under "
            "the pool). The emulated mode is the headline: device "
            "latency is slept in real time, so it parallelises "
            "regardless of host core count. The compute-bound mode "
            "degenerates to pure codec/transport overhead on a 1-CPU "
            "host."
        ),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")

    headline = modes["emulated"]["train_phase_speedup"]
    if headline < 1.5:
        raise SystemExit(
            f"emulated train-phase speedup {headline}x is below the 1.5x "
            f"acceptance bar"
        )
    if not payload["wire_consistency"]["consistent"]:
        raise SystemExit("wire bytes inconsistent with CommVolumeHook")


if __name__ == "__main__":
    main()
