"""Serial vs process-pool execution on the Fig. 5 workload.

Runs the same seeded FedMP/R2SP CNN experiment (the Fig. 5 deployment:
medium heterogeneity, 10 devices) under ``executor="serial"`` and
``executor="process"`` (4 processes) and reports:

- wall-clock of the multi-worker local-training phase (the sum of the
  ``local_train`` + ``cohort_train`` span durations under serial
  execution vs the sum of the ``parallel_train`` batch spans under the
  pool) plus end-to-end wall time, in three modes:

  * **device-emulated** -- ``emulate_device_factor`` converts each
    dispatch's *simulated* device seconds into real sleep, so the
    latency-dominated regime the paper's testbed lives in (30 Jetson
    TX2 nodes) is reproduced on any host.  This is where the headline
    speedup comes from; it parallelises even on a single-core CI box
    because sleeping burns no CPU.
  * **compute-bound** -- no emulation, exact wire profile.  On a
    multi-core host the pool must beat serial execution (>1.0x is
    gated when the host has >= 2 CPUs); on a 1-CPU container the
    training maths serialises and the mode documents the runtime's
    serialization overhead honestly.
  * **compute-bound sparse** -- no emulation under the
    ``sparse+quantized`` wire profile.  This is the transport-economics
    mode: templates ride shared memory (one segment per plan
    signature) and contributions ship top-k quantized deltas, and the
    report gates total wire bytes/param below the dense 4.0 floor.

- wire bytes per round from the ``wire_bytes_total`` counters, cross
  checked against CommVolumeHook's parameter counts: under the exact
  profile a dispatch frame carries its sub-model as exact float32
  (4 bytes/param) plus plan indices and framing, so
  ``dispatch_bytes / (4 * download_params)`` must sit a little above
  1, and likewise for contributions.

Regenerate the committed baseline with::

    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_parallel.json

The exact profile is bitwise identical across executors (``repro
verify --executor process`` pins 0 ULPs), so those runs produce the
same model -- only the clock differs.  The sparse mode is lossy by
design and is benchmarked for wire volume, not parity.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time
from pathlib import Path

from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.engine import Engine
from repro.fl.hooks import CommVolumeHook
from repro.fl.schedulers import make_scheduler
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import ListSink, Tracer

ROUNDS = 3
NUM_PROCS = 4
#: real seconds slept per simulated device-second; 0.2 makes emulated
#: latency (~0.3-0.9s per worker-round) dominate bench-scale training
EMULATE_FACTOR = 0.2
FLOAT32_BYTES = 4
#: framing overhead band for the exact-profile consistency check:
#: payloads are exact float32, so anything past 4 bytes/param is
#: headers, tensor names and packed plan indices
OVERHEAD_BAND = (1.0, 1.5)
#: acceptance bar: contribution-leg wire bytes per uploaded parameter
#: under the sparse profile must beat the dense float32 floor (the
#: sparse profile governs the contribution leg; dispatches stay dense
#: in every profile, and fedmp's adaptive ratios mint a fresh plan
#: signature nearly every round, so the template leg cannot amortise
#: on this workload and is reported separately)
SPARSE_BYTES_PER_PARAM_BAR = 4.0


def _counter_sum(metrics: MetricsRegistry, name: str, **labels) -> float:
    return sum(
        counter.value for counter in metrics.counters
        if counter.name == name and all(
            str(counter.labels.get(key)) == str(value)
            for key, value in labels.items()
        )
    )


def measure(executor: str, emulate_factor: float,
            wire_profile: str = "exact") -> dict:
    bench = make_bench_task("cnn")
    task = bench.make_task(0.0)
    devices = make_devices("medium")
    config = bench.make_config(
        "fedmp", max_rounds=ROUNDS, eval_every=ROUNDS, seed=17,
        target_metric=None, executor=executor, num_procs=NUM_PROCS,
        emulate_device_factor=emulate_factor, wire_profile=wire_profile,
    )
    sink = ListSink()
    telemetry = Telemetry(tracer=Tracer(sink=sink),
                          metrics=MetricsRegistry())
    comm = CommVolumeHook()
    engine = Engine(task, devices, config, hooks=[comm],
                    telemetry=telemetry)
    start = time.perf_counter()
    try:
        make_scheduler(config).run(engine)
    finally:
        engine.close()
    wall_s = time.perf_counter() - start

    if executor == "process":
        phase_spans = sink.spans("parallel_train")
    else:
        # serial rounds may take the vectorised cohort path, whose
        # training time lands in cohort_train spans, not local_train
        phase_spans = sink.spans("local_train") + sink.spans("cohort_train")
    train_phase_s = sum(span["duration_s"] for span in phase_spans)
    out = {
        "executor": executor,
        "emulate_device_factor": emulate_factor,
        "wire_profile": wire_profile,
        "wall_s_total": round(wall_s, 3),
        "train_phase_s": round(train_phase_s, 3),
    }
    if executor == "process":
        metrics = telemetry.metrics
        wire = {
            kind: _counter_sum(metrics, "wire_bytes_total", kind=kind)
            for kind in ("dispatch", "template", "contribution")
        }
        out["wire_bytes"] = wire
        out["wire_bytes_per_round"] = {
            kind: round(value / ROUNDS, 1) for kind, value in wire.items()
        }
        out["retries_total"] = _counter_sum(metrics, "retries_total")
        out["stragglers_total"] = _counter_sum(metrics, "stragglers_total")
        out["template_evictions_total"] = _counter_sum(
            metrics, "dispatch_cache_evictions_total")
        out["comm_hook_params"] = {
            "download": comm.total_download_params,
            "upload": comm.total_upload_params,
        }
        total_params = (
            comm.total_download_params + comm.total_upload_params
        )
        out["total_wire_bytes_per_param"] = round(
            sum(wire.values()) / total_params, 3)
        out["contribution_bytes_per_param"] = round(
            wire["contribution"] / comm.total_upload_params, 3)
    return out


def wire_consistency(process_run: dict) -> dict:
    """``wire_bytes_total`` vs CommVolumeHook's parameter counts
    (meaningful for the exact profile, where payloads are dense)."""
    wire = process_run["wire_bytes"]
    params = process_run["comm_hook_params"]
    dispatch_ratio = wire["dispatch"] / (FLOAT32_BYTES * params["download"])
    contribution_ratio = (
        wire["contribution"] / (FLOAT32_BYTES * params["upload"])
    )
    low, high = OVERHEAD_BAND
    return {
        "dispatch_bytes_per_param": round(
            wire["dispatch"] / params["download"], 3),
        "contribution_bytes_per_param": round(
            wire["contribution"] / params["upload"], 3),
        "dispatch_overhead_ratio": round(dispatch_ratio, 4),
        "contribution_overhead_ratio": round(contribution_ratio, 4),
        "consistent": bool(
            low <= dispatch_ratio <= high
            and low <= contribution_ratio <= high
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON payload to this path")
    args = parser.parse_args()

    modes = {}
    for label, factor, profile in (
        ("emulated", EMULATE_FACTOR, "exact"),
        ("compute_bound", 0.0, "exact"),
        ("compute_bound_sparse", 0.0, "sparse+quantized"),
    ):
        serial = measure("serial", factor)
        process = measure("process", factor, wire_profile=profile)
        modes[label] = {
            "serial": serial,
            "process": process,
            "train_phase_speedup": round(
                serial["train_phase_s"] / process["train_phase_s"], 2),
            "wall_speedup": round(
                serial["wall_s_total"] / process["wall_s_total"], 2),
        }

    host_cpus = multiprocessing.cpu_count()
    payload = {
        "workload": ("Fig. 5 deployment: CNN/MNIST bench task, medium "
                     "heterogeneity (10 devices), fedmp/r2sp, "
                     f"{ROUNDS} rounds"),
        "num_procs": NUM_PROCS,
        "host_cpu_count": host_cpus,
        "modes": modes,
        "wire_consistency": wire_consistency(modes["emulated"]["process"]),
        "sparse_wire_bytes_per_param": modes["compute_bound_sparse"][
            "process"]["contribution_bytes_per_param"],
        "notes": (
            "train_phase_speedup compares the local-training phase "
            "(local_train + cohort_train spans serially vs "
            "parallel_train batches under the pool). The emulated mode "
            "is the headline: device latency is slept in real time, so "
            "sleeps overlap regardless of host core count, but the "
            "training maths between them still needs real cores -- on "
            "a 1-CPU host the compute serialises and dilutes the "
            "emulated speedup, so the 1.5x bar applies from 2 CPUs and "
            "a 1-CPU host gates >1.0x. The compute-bound modes' >1.0x "
            "gate likewise applies from 2 CPUs; on a 1-CPU host they "
            "document the runtime's transport overhead honestly. "
            "sparse_wire_bytes_per_param prices the contribution leg "
            "(the leg the sparse profile governs: top-k quantized "
            "deltas); dispatches stay dense in every profile, and "
            "templates ride shared memory once per plan signature -- "
            "fedmp's adaptive ratios mint fresh signatures nearly "
            "every round, so the template leg shows up at close to "
            "dispatch volume on this workload by design."
        ),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")

    headline = modes["emulated"]["train_phase_speedup"]
    headline_bar = 1.5 if host_cpus >= 2 else 1.0
    if headline < headline_bar:
        raise SystemExit(
            f"emulated train-phase speedup {headline}x is below the "
            f"{headline_bar}x acceptance bar for a {host_cpus}-CPU host"
        )
    if not payload["wire_consistency"]["consistent"]:
        raise SystemExit("wire bytes inconsistent with CommVolumeHook")
    sparse_bpp = payload["sparse_wire_bytes_per_param"]
    if sparse_bpp >= SPARSE_BYTES_PER_PARAM_BAR:
        raise SystemExit(
            f"sparse-profile wire volume {sparse_bpp} bytes/param is not "
            f"below the {SPARSE_BYTES_PER_PARAM_BAR} dense floor"
        )
    if host_cpus >= 2:
        for label in ("compute_bound", "compute_bound_sparse"):
            speedup = modes[label]["train_phase_speedup"]
            if speedup <= 1.0:
                raise SystemExit(
                    f"{label} train-phase speedup {speedup}x does not "
                    f"beat serial execution on a {host_cpus}-CPU host"
                )


if __name__ == "__main__":
    main()
