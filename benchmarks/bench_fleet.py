"""Fleet-scale round-throughput benchmark (cohort-sharded rounds).

Measures simulated-FL round throughput (rounds/s of host wall time)
on synthetic fleets of 1k / 10k / 100k workers, comparing three
operating points on the same seeded task -- see
:mod:`repro.experiments.fleet`, where the workload lives so the
``repro bench check`` regression gate can re-run it from the
installed package.

Regenerate the committed baseline with::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_fleet.json

``--smoke`` runs a single 100k-worker cohort-sharded round (the CI
fleet-smoke job) and skips the slow per-member fleet sweeps.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments.fleet import FLEETS, sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="one 100k-worker cohort-sharded round only "
                             "(the CI fleet-smoke job)")
    parser.add_argument("--fleets", type=int, nargs="+", default=None,
                        help="override the fleet-size sweep")
    args = parser.parse_args()

    fleets = tuple(args.fleets) if args.fleets else (
        (100_000,) if args.smoke else FLEETS
    )
    report = sweep(fleets, smoke=args.smoke, progress=print)
    text = json.dumps(report, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"report written to {args.out}")
    else:
        print(text)


if __name__ == "__main__":
    main()
