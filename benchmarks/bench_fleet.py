"""Fleet-scale round-throughput benchmark (cohort-sharded rounds).

Measures simulated-FL round throughput (rounds/s of host wall time)
on synthetic fleets of 1k / 10k / 100k workers, comparing three
operating points on the same seeded task:

- ``member_full`` -- the pre-cohort engine: every worker is dispatched
  its own sub-model clone and trained individually, every round (the
  only operating point the per-member path supports at fleet scale);
- ``member_sampled`` -- per-member dispatch/training, but only
  ``clients_per_round`` sampled workers per round;
- ``cohort_sampled`` -- the cohort-sharded path: sampled workers are
  bucketed by (ratio, cluster), one shared sub-model per bucket, local
  training vectorised across each cohort, per-cohort aggregation
  partial sums.

The workload is a deliberately small shared-shard MLP task so the
benchmark stresses the per-round engine machinery (dispatch, pricing,
training-loop overhead, aggregation) rather than raw model flops; all
three points run bit-identical arithmetic per trained member.

Regenerate the committed baseline with::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_fleet.json

``--smoke`` runs a single 100k-worker cohort-sharded round (the CI
fleet-smoke job) and skips the slow per-member fleet sweeps.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.module import Sequential
from repro.simulation.cluster import make_scenario_devices

CLIENTS_PER_ROUND = 256
FLEETS = (1_000, 10_000, 100_000)

MODES = {
    "member_full": dict(cohort_rounds="off", clients_per_round=None),
    "member_sampled": dict(cohort_rounds="off",
                           clients_per_round=CLIENTS_PER_ROUND),
    "cohort_sampled": dict(cohort_rounds="on",
                           clients_per_round=CLIENTS_PER_ROUND),
}


def _build_mlp(num_classes=10, input_shape=(1, 28, 28), rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape
    model = Sequential(
        ("flatten", Flatten()),
        ("fc1", Linear(channels * height * width, 64, rng=rng)),
        ("relu1", ReLU()),
        ("fc2", Linear(64, num_classes, rng=rng)),
    )
    model.input_shape = input_shape
    model.num_classes = num_classes
    model.name = "fleet_mlp"
    return model


class FleetTask(ClassificationTask):
    """Shared-shard MLP task: every worker trains the same small shard,
    so fleet size scales the *engine* work, not the dataset."""

    def build_model(self, rng):
        return _build_mlp(self.dataset.num_classes,
                          self.dataset.input_shape, rng)

    def partition(self, num_workers, rng):
        shard = (self.dataset.train_x, self.dataset.train_y)
        return [shard] * num_workers


def make_task() -> FleetTask:
    dataset = make_synthetic_mnist(train_per_class=8, test_per_class=2,
                                   rng=np.random.default_rng(0))
    return FleetTask(dataset, "cnn")


def make_fleet(count: int):
    half = count // 2
    return make_scenario_devices({"A": count - half, "B": half},
                                 np.random.default_rng(5))


def _rounds_for(mode: str, fleet: int) -> int:
    # the per-member full-fleet point trains O(fleet) workers per
    # round; keep its wall time bounded at the big sizes
    if mode == "member_full":
        return 3 if fleet <= 1_000 else (2 if fleet <= 10_000 else 1)
    return 3


def measure(task: FleetTask, devices: List, mode: str,
            rounds: int) -> dict:
    config = FLConfig(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                      max_rounds=rounds, local_iterations=2,
                      batch_size=8, eval_every=10_000, seed=7,
                      **MODES[mode])
    start = time.perf_counter()
    engine = Engine(task, devices, config)
    build_s = time.perf_counter() - start
    start = time.perf_counter()
    try:
        history = make_scheduler(config).run(engine)
    finally:
        engine.close()
    wall_s = time.perf_counter() - start
    sampled = config.clients_per_round or len(devices)
    return {
        "rounds": len(history.rounds),
        "members_trained_per_round": min(sampled, len(devices)),
        "engine_build_s": round(build_s, 3),
        "wall_s_total": round(wall_s, 4),
        "rounds_per_s": round(len(history.rounds) / wall_s, 4),
    }


def sweep(fleets: Tuple[int, ...], smoke: bool) -> dict:
    task = make_task()
    entries = []
    for fleet in fleets:
        devices = make_fleet(fleet)
        entry = {"fleet": fleet}
        modes = ("cohort_sampled",) if smoke else tuple(MODES)
        for mode in modes:
            rounds = 1 if smoke else _rounds_for(mode, fleet)
            entry[mode] = measure(task, devices, mode, rounds)
            print(f"fleet={fleet:>7} {mode:<15} "
                  f"{entry[mode]['rounds_per_s']:>9.4f} rounds/s "
                  f"(build {entry[mode]['engine_build_s']:.2f}s)")
        if not smoke:
            entry["speedup_vs_member_full"] = round(
                entry["cohort_sampled"]["rounds_per_s"]
                / entry["member_full"]["rounds_per_s"], 2)
            entry["speedup_vs_member_sampled"] = round(
                entry["cohort_sampled"]["rounds_per_s"]
                / entry["member_sampled"]["rounds_per_s"], 2)
        entries.append(entry)
    return {
        "benchmark": "fleet_scale_rounds",
        "model": "fleet_mlp (784-64-10, shared shard)",
        "clients_per_round": CLIENTS_PER_ROUND,
        "local_iterations": 2,
        "batch_size": 8,
        "smoke": smoke,
        "fleets": entries,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="one 100k-worker cohort-sharded round only "
                             "(the CI fleet-smoke job)")
    parser.add_argument("--fleets", type=int, nargs="+", default=None,
                        help="override the fleet-size sweep")
    args = parser.parse_args()

    fleets = tuple(args.fleets) if args.fleets else (
        (100_000,) if args.smoke else FLEETS
    )
    report = sweep(fleets, smoke=args.smoke)
    text = json.dumps(report, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"report written to {args.out}")
    else:
        print(text)


if __name__ == "__main__":
    main()
