"""Ablation: E-UCB vs the capability-oracle ceiling.

Section IV-C notes that "with the knowledge of heterogeneous
capabilities, some more straightforward methods can be used to
determine the pruning ratios" -- but that knowledge is private.  The
oracle strategy reads the true device profiles and equalises expected
completion times analytically; E-UCB must learn the same assignment
from observed times alone.  The gap between them prices the cost of
not knowing the capabilities.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_time, print_table
from repro.experiments.setups import make_bench_task, make_devices
from conftest import run_training


def test_oracle_vs_eucb(once):
    bench_task = make_bench_task("cnn")
    devices = make_devices("high", seed=42)

    def experiment():
        results = {}
        for strategy in ("synfl", "oracle", "fedmp"):
            overrides = {}
            if strategy == "oracle":
                overrides["strategy_kwargs"] = {
                    "max_ratio": bench_task.bandit_kwargs.get("max_ratio", 0.7)
                }
            results[strategy] = run_training(
                bench_task, strategy,
                devices=devices, devices_key="high-oracle",
                target_metric=bench_task.target_metric,
                max_rounds=bench_task.max_rounds + 8,
                **overrides,
            )
        return results

    results = once(experiment)

    def time_to(strategy):
        history = results[strategy]
        reached = history.time_to_target(bench_task.target_metric)
        return reached if reached is not None else history.total_time_s

    rows = [
        ["Syn-FL (no pruning)", fmt_time(time_to("synfl"))],
        ["Oracle (knows capabilities)", fmt_time(time_to("oracle"))],
        ["FedMP / E-UCB (learns online)", fmt_time(time_to("fedmp"))],
    ]
    print_table(
        f"Ablation -- oracle ceiling vs E-UCB "
        f"(CNN, high heterogeneity, target "
        f"{bench_task.target_metric:.0%})",
        ["Strategy", "Time to target"], rows,
        note="the oracle uses private capability information the paper "
             "rules out; E-UCB should approach it from above.",
    )

    # both pruning strategies beat the no-pruning baseline
    assert time_to("oracle") < time_to("synfl"), rows
    assert time_to("fedmp") < time_to("synfl"), rows
    # learning online costs something relative to the oracle, but E-UCB
    # stays within a small constant factor
    assert time_to("fedmp") <= 3.0 * time_to("oracle"), rows
