"""Dispatch->aggregate hot-path micro-benchmark.

Measures round wall-time and peak per-run allocations (tracemalloc)
for the fast path (per-round dispatch cache + scatter-add
aggregation) against the pre-PR slow path (fresh plan/extraction per
dispatch, ``recover_state_dict`` per contribution, materialised
residual models), on the same seeded FedMP/R2SP run.

Regenerate the committed baseline with::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --out BENCH_hotpath.json

Wall-time and the allocation pass are measured in separate runs so
tracemalloc's overhead does not skew the timings. Absolute numbers are
host-dependent; the committed baseline documents the expected *ratio*
between the two paths.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry

ROUNDS = 6

CONFIG = dict(
    strategy="fedmp",
    sync_scheme="r2sp",
    max_rounds=ROUNDS,
    local_iterations=2,
    batch_size=8,
    lr=0.05,
    eval_every=ROUNDS,
    seed=11,
    strategy_kwargs={"warmup_rounds": 1},
)


def build_engine(fast: bool, with_metrics: bool = False) -> Engine:
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("medium", np.random.default_rng(7))
    config = FLConfig(fast_path=fast, **CONFIG)
    telemetry = Telemetry(metrics=MetricsRegistry()) if with_metrics else None
    engine = Engine(task, devices, config, telemetry=telemetry)
    if not fast:
        engine.aggregator.dense = True
    return engine


def _counter_total(engine: Engine, name: str) -> float:
    return sum(counter.value
               for counter in engine.telemetry.metrics.counters
               if counter.name == name)


def measure(fast: bool) -> dict:
    # timing pass
    engine = build_engine(fast)
    start = time.perf_counter()
    make_scheduler(engine.config).run(engine)
    wall_s = time.perf_counter() - start

    # allocation pass (separate run: tracemalloc skews wall-time)
    engine = build_engine(fast, with_metrics=True)
    tracemalloc.start()
    make_scheduler(engine.config).run(engine)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "rounds": ROUNDS,
        "wall_s_total": round(wall_s, 4),
        "wall_ms_per_round": round(1000.0 * wall_s / ROUNDS, 2),
        "peak_alloc_mb": round(peak / 2 ** 20, 3),
        "dispatch_cache_hits": _counter_total(
            engine, "dispatch_cache_hits_total"),
        "dispatch_alloc_saved_params": _counter_total(
            engine, "dispatch_alloc_saved_params_total"),
        "alloc_saved_arrays": _counter_total(
            engine, "dispatch_alloc_saved_arrays_total")
        + _counter_total(engine, "aggregate_alloc_saved_arrays_total"),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args()

    slow = measure(fast=False)
    fast = measure(fast=True)
    report = {
        "benchmark": "dispatch_aggregate_hotpath",
        "config": {k: v for k, v in CONFIG.items()},
        "slow_path": slow,
        "fast_path": fast,
        "speedup_wall": round(slow["wall_s_total"] / fast["wall_s_total"], 3),
        "peak_alloc_ratio": round(
            slow["peak_alloc_mb"] / fast["peak_alloc_mb"], 3),
    }
    text = json.dumps(report, indent=2, sort_keys=False) + "\n"
    if args.out is not None:
        args.out.write_text(text)
    print(text, end="")


if __name__ == "__main__":
    main()
