"""Fig. 7: R2SP vs BSP synchronisation under FedMP, accuracy vs rounds.

The ablation behind the paper's synchronisation contribution: with BSP
(no residual recovery), pruned parameters lose mass every round and the
final accuracy degrades; R2SP keeps the full model trainable.
"""

from __future__ import annotations

from repro.experiments.reporting import print_series, print_table
from repro.experiments.setups import make_bench_task
from conftest import run_training

MODELS = ("cnn", "alexnet", "vgg19", "resnet50")

PAPER_NOTE = (
    "paper (Fig. 7): R2SP beats BSP on every model; e.g. AlexNet/"
    "CIFAR-10 82.3% vs 77.4% after 500 rounds."
)


def test_fig7_r2sp_vs_bsp(once):
    def experiment():
        results = {}
        for model_key in MODELS:
            bench_task = make_bench_task(model_key)
            results[model_key] = {
                # the R2SP run is the same experiment Fig. 6 caches
                "r2sp": run_training(bench_task, "fedmp",
                                     target_metric=None),
                "bsp": run_training(bench_task, "fedmp",
                                    sync_scheme="bsp", target_metric=None),
            }
        return results

    results = once(experiment)
    rows = []
    for model_key in MODELS:
        bench_task = make_bench_task(model_key)
        print_series(
            f"Fig. 7 -- {bench_task.label}",
            {
                scheme.upper(): results[model_key][scheme].round_curve()
                for scheme in ("r2sp", "bsp")
            },
            x_label="round", y_label="accuracy",
        )
        rows.append([
            bench_task.label,
            f"{results[model_key]['r2sp'].final_metric():.3f}",
            f"{results[model_key]['bsp'].final_metric():.3f}",
        ])
    print_table(
        "Fig. 7 (reduced) -- final accuracy by synchronisation scheme",
        ["Model", "R2SP", "BSP"], rows, note=PAPER_NOTE,
    )

    better = sum(
        results[m]["r2sp"].final_metric()
        >= results[m]["bsp"].final_metric() - 1e-9
        for m in MODELS
    )
    assert better >= len(MODELS) - 1, rows
    # at least one task shows a clear gap (the paper's AlexNet case)
    assert any(
        results[m]["r2sp"].final_metric()
        > results[m]["bsp"].final_metric() + 0.02
        for m in MODELS
    ), rows
