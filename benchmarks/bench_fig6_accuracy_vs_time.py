"""Fig. 6: test accuracy vs (simulated) training time, all methods.

Prints the accuracy-over-time series for every method on all four CNN
tasks (the same cached runs Table III reduces) and verifies the
paper's headline: FedMP reaches the per-task target accuracy first.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_speedup, fmt_time, print_series, print_table
from repro.experiments.setups import (
    METHOD_LABELS,
    METHOD_ORDER,
    make_bench_task,
)
from conftest import run_training

MODELS = ("cnn", "alexnet", "vgg19", "resnet50")

PAPER_NOTE = (
    "paper (Fig. 6): FedMP reaches each target first; e.g. AlexNet/"
    "CIFAR-10 80% in 10906s vs Syn-FL 24017s (2.2x), ~2x vs UP-FL, "
    "1.8x vs FedProx, 1.6x vs FlexCom."
)


def test_fig6_accuracy_vs_time(once):
    def experiment():
        return {
            model_key: {
                method: run_training(
                    make_bench_task(model_key), method, target_metric=None
                )
                for method in METHOD_ORDER
            }
            for model_key in MODELS
        }

    all_histories = once(experiment)

    rows = []
    for model_key in MODELS:
        bench_task = make_bench_task(model_key)
        histories = all_histories[model_key]
        print_series(
            f"Fig. 6 -- {bench_task.label}",
            {
                METHOD_LABELS[m]: histories[m].accuracy_curve()
                for m in METHOD_ORDER
            },
            x_label="sim s", y_label="accuracy",
        )
        target = bench_task.target_metric
        times = {
            m: histories[m].time_to_target(target) for m in METHOD_ORDER
        }
        rows.append(
            [bench_task.label, f"{target:.2f}"]
            + [fmt_time(times[m]) for m in METHOD_ORDER]
            + [fmt_speedup(times["synfl"], times["fedmp"])]
        )
    print_table(
        "Fig. 6 (reduced) -- time to target accuracy",
        ["Model", "Target"] + [METHOD_LABELS[m] for m in METHOD_ORDER]
        + ["FedMP vs Syn-FL"],
        rows, note=PAPER_NOTE,
    )

    # On the wide models FedMP reaches the target no later than Syn-FL;
    # the narrow VGG/ResNet substitutes tolerate less pruning at bench
    # scale (EXPERIMENTS.md, deviation 1), so they only get a sanity
    # bound there.
    strict_wins = 0
    for model_key in MODELS:
        histories = all_histories[model_key]
        target = make_bench_task(model_key).target_metric
        fed = histories["fedmp"].time_to_target(target)
        syn = histories["synfl"].time_to_target(target)
        if fed is None or syn is None:
            continue
        if model_key in ("cnn", "alexnet"):
            assert fed <= syn * 1.1, (model_key, fed, syn)
        else:
            assert fed <= syn * 2.5, (model_key, fed, syn)
        if fed < syn:
            strict_wins += 1
    assert strict_wins >= 1
