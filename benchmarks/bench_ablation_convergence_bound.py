"""Theorem 1 in numbers: the convergence bound vs the pruning ratio.

Evaluates every term of the Theorem 1 bound with the *actual* pruning
errors Q_n^k produced by the structured-pruning engine on the CNN at a
sweep of ratios.  The paper's reading: "the fewer parameters the
sub-model contains, the larger the pruning error is, leading to a
looser convergence bound" -- i.e. the bound must be monotone in the
ratio, with only the pruning term moving.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import theorem1_bound
from repro.experiments.reporting import print_table
from repro.experiments.setups import make_bench_task
from repro.pruning import build_pruning_plan, pruning_error

RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_theorem1_bound_vs_ratio(once):
    bench_task = make_bench_task("cnn")
    task = bench_task.make_task()

    def experiment():
        model = task.build_model(np.random.default_rng(0))
        state = model.state_dict()
        rows = []
        for ratio in RATIOS:
            q_value = pruning_error(state, build_pruning_plan(model, ratio))
            # 20 rounds x 10 workers, all at this ratio
            errors = [[q_value] * 10 for _ in range(20)]
            terms = theorem1_bound(
                initial_loss=2.3, optimal_loss=0.0, lr=0.05,
                total_iterations=20 * bench_task.local_iterations,
                num_workers=10, tau=bench_task.local_iterations,
                pruning_errors=errors,
                smoothness=1.0, sigma=1.0, grad_bound=1.0,
            )
            rows.append((ratio, q_value, terms))
        return rows

    rows = once(experiment)
    print_table(
        "Theorem 1 -- convergence bound terms vs pruning ratio (CNN)",
        ["Ratio", "Q (pruning error)", "Gap term", "Prune term",
         "Noise term", "Drift term", "Total bound"],
        [
            (
                f"{ratio:.1f}", f"{q:.1f}",
                f"{t.optimisation_gap:.3f}", f"{t.pruning_error:.3f}",
                f"{t.gradient_noise:.3f}", f"{t.local_drift:.3f}",
                f"{t.total:.3f}",
            )
            for ratio, q, t in rows
        ],
        note="paper (Theorem 1): the bound loosens with the pruning "
             "error; only the pruning term depends on the ratio.",
    )

    totals = [t.total for _, _, t in rows]
    qs = [q for _, q, _ in rows]
    assert all(a < b for a, b in zip(qs, qs[1:]))
    assert all(a < b for a, b in zip(totals, totals[1:]))
    # the non-pruning terms are ratio-independent
    noise = {round(t.gradient_noise, 12) for _, _, t in rows}
    assert len(noise) == 1
