"""Fig. 2: effect of a fixed pruning ratio on accuracy under a budget.

The paper's motivating observation: with a shared time budget, accuracy
*rises* for small ratios (cheaper rounds -> more of them) and falls for
aggressive ratios (capacity destroyed).  We sweep fixed uniform ratios
on CNN/MNIST and AlexNet/CIFAR-10 with the round budget fixed in
*simulated time*, then check the inverted-U / crossover shape.
"""

from __future__ import annotations

from repro.experiments.reporting import print_table
from repro.experiments.setups import make_bench_task
from conftest import run_training

RATIOS = [0.0, 0.2, 0.4, 0.6, 0.8]
#: simulated-seconds budgets, scaled analogues of the paper's setting
BUDGETS = {"cnn": 120.0}

PAPER_NOTE = (
    "paper (Fig. 2): accuracy first increases then decreases with the "
    "pruning ratio; a moderately pruned model beats ratio 0 under the "
    "same time budget."
)


def _accuracy_at_budget(task_key: str, ratio: float) -> float:
    bench_task = make_bench_task(task_key)
    history = run_training(
        bench_task, "fixed",
        strategy_kwargs={"ratio": ratio},
        time_budget_s=BUDGETS[task_key],
        max_rounds=60,
        target_metric=None,
    )
    value = history.metric_at_time(BUDGETS[task_key])
    return value if value is not None else 0.0


def test_fig2_pruning_ratio_vs_accuracy(once):
    def experiment():
        return {
            task_key: [_accuracy_at_budget(task_key, r) for r in RATIOS]
            for task_key in ("cnn",)
        }

    results = once(experiment)
    rows = [
        [f"ratio {ratio:.1f}"] + [
            f"{results[key][i]:.3f}" for key in results
        ]
        for i, ratio in enumerate(RATIOS)
    ]
    print_table(
        "Fig. 2 -- accuracy at a fixed time budget vs pruning ratio",
        ["Pruning ratio"] + [make_bench_task(k).label for k in results],
        rows, note=PAPER_NOTE,
    )

    for key in results:
        accuracies = results[key]
        best_index = max(range(len(RATIOS)), key=lambda i: accuracies[i])
        # the best ratio is a *moderate* one, and the most aggressive
        # ratio does worse than the best
        assert 0 < best_index < len(RATIOS) - 1, (key, accuracies)
        assert accuracies[best_index] > accuracies[-1], (key, accuracies)
        # moderate pruning beats no pruning under the budget
        assert accuracies[best_index] >= accuracies[0], (key, accuracies)
