"""Fig. 11: PS-side algorithm overhead vs number of workers.

Measures the real wall-clock cost of one round's pruning-ratio
decisions (E-UCB) plus distributed model pruning (plan + sub-model
extraction) for 10/20/30 workers.  The paper: overhead grows with the
worker count but stays far below per-round training/transmission time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.reporting import print_table
from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.config import FLConfig
from repro.fl.strategies import make_strategy

WORKER_COUNTS = (10, 20, 30)
ROUNDS = 5

PAPER_NOTE = (
    "paper (Fig. 11): per-round decision + pruning overhead increases "
    "with workers but stays orders of magnitude below the hundreds of "
    "seconds of per-round training/transmission time."
)


def test_fig11_algorithm_overhead(once):
    bench_task = make_bench_task("cnn")
    task = bench_task.make_task()

    def experiment():
        rows = []
        for count in WORKER_COUNTS:
            devices = make_devices(seed=42, count=count)
            worker_ids = [d.device_id for d in devices]
            config = FLConfig(strategy="fedmp",
                              strategy_kwargs=dict(bench_task.bandit_kwargs))
            strategy = make_strategy("fedmp", worker_ids, config,
                                     rng=np.random.default_rng(0))
            model = task.build_model(np.random.default_rng(1))
            extract_rng = np.random.default_rng(2)

            decision_total = 0.0
            pruning_total = 0.0
            for round_index in range(ROUNDS):
                start = time.perf_counter()
                ratios = strategy.select_ratios(round_index)
                decision_total += time.perf_counter() - start

                start = time.perf_counter()
                for worker_id, ratio in ratios.items():
                    plan = task.build_plan(model, ratio)
                    task.extract(model, plan, extract_rng)
                pruning_total += time.perf_counter() - start

                from repro.fl.strategies.base import RoundObservation
                from repro.simulation.timing import RoundCosts

                strategy.observe_round(RoundObservation(
                    round_index=round_index,
                    costs={
                        wid: RoundCosts(10.0 + wid, 1.0, 1.0)
                        for wid in worker_ids
                    },
                    delta_loss=0.1,
                ))
            rows.append((
                count, decision_total / ROUNDS, pruning_total / ROUNDS,
            ))
        return rows

    rows = once(experiment)
    print_table(
        "Fig. 11 -- mean per-round PS overhead (real seconds)",
        ["Workers", "Ratio decision (s)", "Model pruning (s)", "Total (s)"],
        [
            (c, f"{d:.4f}", f"{p:.4f}", f"{d + p:.4f}")
            for c, d, p in rows
        ],
        note=PAPER_NOTE,
    )

    totals = [d + p for _, d, p in rows]
    # overhead grows with worker count ...
    assert totals[-1] > totals[0], rows
    # ... but stays far below a typical simulated round (tens of seconds)
    assert totals[-1] < 10.0, rows
