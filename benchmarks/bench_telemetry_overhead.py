"""Telemetry overhead on the fleet-scale cohort round.

Runs the committed fleet workload (:mod:`repro.experiments.fleet`)
twice on the same seeded task -- once with telemetry fully disabled
(``DISABLED_TELEMETRY``, the default) and once with the span tracer
writing JSONL and the metrics registry live -- and reports the
wall-time overhead the instrumentation adds.  The observability
acceptance bar is < 5% on a 100k-worker cohort-sampled round::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

The cohort path keeps trace volume at O(cohorts), not O(members), so
the overhead must stay flat as the fleet grows.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.experiments.fleet import make_fleet, make_task, measure
from repro.telemetry import (
    JsonlSink,
    MetricsRegistry,
    Telemetry,
    Tracer,
)


def run_pair(fleet: int, rounds: int, trace_dir: Path) -> dict:
    task = make_task()
    devices = make_fleet(fleet)
    mode = "cohort_sampled"

    # warm-up: first run pays numpy/import one-offs for both arms
    measure(task, devices, mode, 1)

    disabled = measure(task, devices, mode, rounds)

    trace_path = trace_dir / f"fleet_{fleet}.jsonl"
    telemetry = Telemetry(tracer=Tracer(JsonlSink(trace_path)),
                          metrics=MetricsRegistry())
    enabled = measure(task, devices, mode, rounds, telemetry=telemetry)
    telemetry.close()

    overhead = (enabled["wall_s_total"] / disabled["wall_s_total"]) - 1.0
    return {
        "fleet": fleet,
        "rounds": rounds,
        "disabled_wall_s": disabled["wall_s_total"],
        "enabled_wall_s": enabled["wall_s_total"],
        "overhead_pct": round(overhead * 100.0, 2),
        "trace_bytes": trace_path.stat().st_size,
        "trace_records": sum(1 for _ in trace_path.open()),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleet", type=int, default=100_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--budget-pct", type=float, default=5.0,
                        help="fail (exit 1) above this overhead")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        result = run_pair(args.fleet, args.rounds, Path(tmp))
    result["benchmark"] = "telemetry_overhead"
    result["budget_pct"] = args.budget_pct

    text = json.dumps(result, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text)
    print(text)
    if result["overhead_pct"] > args.budget_pct:
        print(f"FAIL: {result['overhead_pct']}% overhead exceeds the "
              f"{args.budget_pct}% budget")
        return 1
    print(f"ok: {result['overhead_pct']}% overhead within the "
          f"{args.budget_pct}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
