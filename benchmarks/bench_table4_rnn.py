"""Table IV: the RNN extension -- LSTM/PTB perplexity and speedup.

Trains the two-layer LSTM language model with ISS pruning (Section VI)
under Syn-FL, UP-FL and FedMP, reports the perplexity achieved within
a shared time budget and each method's speedup to the target
perplexity.  The paper: FedMP reaches both the lowest perplexity in
budget and a 1.6x speedup to perplexity 150; UP-FL is *slower* than
Syn-FL (0.8x) because uniform ISS pruning hurts the LSTM.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_time, print_table
from repro.experiments.setups import make_bench_task
from conftest import run_training

METHODS = ("synfl", "upfl", "fedmp")
LABELS = {"synfl": "Syn-FL", "upfl": "UP-FL", "fedmp": "FedMP"}

PAPER_NOTE = (
    "paper (Table IV): test perplexity in budget 148.15 (Syn-FL) / "
    "149.81 (UP-FL) / 146.95 (FedMP); speedup to perplexity 150: "
    "1.0x / 0.8x / 1.6x."
)


def test_table4_rnn_perplexity(once):
    bench_task = make_bench_task("lstm")

    def experiment():
        return {
            method: run_training(
                bench_task, method, target_metric=None,
                max_rounds=bench_task.max_rounds + 6,
            )
            for method in METHODS
        }

    results = once(experiment)
    budget = 0.7 * results["synfl"].total_time_s
    target = bench_task.target_metric  # perplexity 150 analogue
    syn_time = results["synfl"].time_to_target(target)

    rows = []
    for method in METHODS:
        history = results[method]
        within_budget = history.metric_at_time(budget)
        reached = history.time_to_target(target)
        if syn_time is not None and reached is not None:
            speedup = f"{syn_time / reached:.1f}x"
        else:
            speedup = "--"
        rows.append([
            LABELS[method],
            f"{within_budget:.1f}" if within_budget else "--",
            fmt_time(reached),
            speedup,
        ])
    print_table(
        f"Table IV -- LSTM/PTB: perplexity within {budget:.0f}s and "
        f"speedup to perplexity {target:.0f}",
        ["Method", "PPL in budget", "Time to target", "Speedup"],
        rows, note=PAPER_NOTE,
    )

    fed = results["fedmp"]
    syn = results["synfl"]
    # FedMP's budgeted perplexity is at least as good as Syn-FL's
    assert fed.metric_at_time(budget) <= syn.metric_at_time(budget) * 1.05
    # and it reaches the target no later
    fed_time = fed.time_to_target(target)
    assert fed_time is not None
    if syn_time is not None:
        assert fed_time <= syn_time * 1.05
