"""Fig. 10: completion time vs number of workers (scalability).

Worker counts 10/20/30 with the half-A/half-B composition of Section
V-G.  The paper: FedMP's completion time grows only slightly with more
workers and keeps a 2.4x / 1.6x advantage over Syn-FL / FlexCom at 30.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_speedup, fmt_time, print_table
from repro.experiments.setups import (
    METHOD_LABELS,
    METHOD_ORDER,
    make_bench_task,
    make_devices,
)
from conftest import run_training

WORKER_COUNTS = (10, 20, 30)

PAPER_NOTE = (
    "paper (Fig. 10, AlexNet/CIFAR-10): completion time increases "
    "slightly with workers; at 30 workers FedMP keeps 2.4x / 2.0x / "
    "2.0x / 1.6x speedup over Syn-FL / UP-FL / FedProx / FlexCom."
)


def test_fig10_worker_scaling(once):
    bench_task = make_bench_task("cnn")

    def experiment():
        results = {}
        for count in WORKER_COUNTS:
            devices = make_devices(seed=42, count=count)
            results[count] = {
                method: run_training(
                    bench_task, method,
                    devices=devices, devices_key=f"n{count}",
                    target_metric=bench_task.target_metric,
                    max_rounds=bench_task.max_rounds + 8,
                )
                for method in METHOD_ORDER
            }
        return results

    results = once(experiment)

    def time_to(count, method):
        history = results[count][method]
        reached = history.time_to_target(bench_task.target_metric)
        return reached if reached is not None else history.total_time_s

    rows = []
    for count in WORKER_COUNTS:
        times = {m: time_to(count, m) for m in METHOD_ORDER}
        rows.append(
            [f"{count} workers"]
            + [fmt_time(times[m]) for m in METHOD_ORDER]
            + [fmt_speedup(times["synfl"], times["fedmp"])]
        )
    print_table(
        f"Fig. 10 -- time to {bench_task.target_metric:.0%} accuracy vs "
        f"worker count ({bench_task.label})",
        ["Workers"] + [METHOD_LABELS[m] for m in METHOD_ORDER]
        + ["FedMP vs Syn-FL"],
        rows, note=PAPER_NOTE,
    )

    # at the paper's default fleet size FedMP leads outright; at larger
    # fleets the bench-scale shards shrink (60 samples/class over up to
    # 30 workers) and pruned-model convergence noise can erode the
    # lead, so the larger counts get a sanity factor (EXPERIMENTS.md)
    assert time_to(10, "fedmp") < time_to(10, "synfl"), rows
    for count in WORKER_COUNTS:
        assert time_to(count, "fedmp") <= 1.6 * time_to(count, "synfl"), rows
