"""Fig. 5: average per-round computation/communication time vs ratio.

Pure cost-model experiment (no training): extract sub-models at each
ratio, price one round on every device of the default deployment, and
report the mean computation and communication seconds.  Both terms must
decrease monotonically with the pruning ratio.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import print_table
from repro.experiments.setups import make_bench_task, make_devices
from repro.models import count_model_flops
from repro.pruning import build_pruning_plan, extract_submodel
from repro.simulation.timing import TimingModel

RATIOS = [0.0, 0.2, 0.4, 0.6, 0.8]

PAPER_NOTE = (
    "paper (Fig. 5): both average computation and communication time "
    "per round decrease as the pruning ratio grows."
)


def test_fig5_round_time_vs_ratio(once):
    bench_task = make_bench_task("cnn")
    task = bench_task.make_task()
    devices = make_devices("medium")

    def experiment():
        rng = np.random.default_rng(0)
        model = task.build_model(rng)
        rows = []
        for ratio in RATIOS:
            plan = task.build_plan(model, ratio)
            sub = task.extract(model, plan, rng)
            flops = task.count_flops(sub)
            params = sub.num_parameters()
            comp, comm = [], []
            for device in devices:
                timing = TimingModel(device, jitter_sigma=0.0)
                costs = timing.round_costs(
                    flops, params, params,
                    batch_size=bench_task.batch_size,
                    local_iterations=bench_task.local_iterations,
                )
                comp.append(costs.computation_s)
                comm.append(costs.communication_s)
            rows.append((ratio, params, float(np.mean(comp)),
                         float(np.mean(comm))))
        return rows

    rows = once(experiment)
    print_table(
        "Fig. 5 -- per-round time vs pruning ratio (CNN, medium scenario)",
        ["Ratio", "Sub-model params", "Mean comp (s)", "Mean comm (s)"],
        [(f"{r:.1f}", p, f"{c:.2f}", f"{m:.2f}") for r, p, c, m in rows],
        note=PAPER_NOTE,
    )

    comps = [row[2] for row in rows]
    comms = [row[3] for row in rows]
    assert all(a > b for a, b in zip(comps, comps[1:]))
    assert all(a > b for a, b in zip(comms, comms[1:]))
