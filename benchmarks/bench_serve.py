"""Loopback-socket service throughput vs the in-process engine.

Runs the bench CNN workload twice per fleet size:

- **serial** -- the plain in-process ``Engine`` + scheduler, the same
  path ``repro run`` takes.  This is the throughput ceiling: no
  sockets, no framing, no roster bookkeeping.
- **served** -- a ``FedMPService`` bound to a loopback socket with one
  ``ServiceClient`` thread per worker slot.  Training maths is
  identical (the exact wire profile is byte-transparent), so the gap
  between the two walls is the price of the service plane: framing,
  request dispatch, roster/heartbeat bookkeeping and the pull-based
  round trip per dispatch.

Clients run as threads, so local training serialises on the GIL in
both modes and the comparison isolates protocol overhead rather than
parallel speedup (that is ``bench_parallel.py``'s job).  Reported per
fleet:

- ``rounds_per_s`` of the served run (higher is better),
- ``relative_throughput`` = serial wall / served wall (1.0 means the
  service plane is free; the gate requires it above 0.4 -- loose
  enough for a loaded host, while ``repro bench check`` gates drift
  against the committed baseline), and
- wire bytes per round from the ``wire_bytes_total`` counters.

Regenerate the committed baseline with::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.serve import FedMPService, ServiceClient
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry

ROUNDS = 3
FLEETS = (4, 16)
#: hard floor for serial wall / served wall; drift against the
#: committed baseline is gated separately by ``repro bench check``
RELATIVE_THROUGHPUT_BAR = 0.4


def _counter_sum(metrics: MetricsRegistry, name: str, **labels) -> float:
    return sum(
        counter.value for counter in metrics.counters
        if counter.name == name and all(
            str(counter.labels.get(key)) == str(value)
            for key, value in labels.items()
        )
    )


def _make_config(bench, fleet: int):
    return bench.make_config(
        "fedmp", max_rounds=ROUNDS, eval_every=ROUNDS, seed=17,
        target_metric=None,
    )


def measure_serial(bench, fleet: int) -> dict:
    task = bench.make_task(0.0)
    devices = make_devices("medium", count=fleet)
    engine = Engine(task, devices, _make_config(bench, fleet))
    start = time.perf_counter()
    try:
        make_scheduler(engine.config).run(engine)
    finally:
        engine.close()
    wall_s = time.perf_counter() - start
    return {"wall_s": round(wall_s, 3),
            "rounds_per_s": round(ROUNDS / wall_s, 3)}


def measure_served(bench, fleet: int) -> dict:
    task = bench.make_task(0.0)
    devices = make_devices("medium", count=fleet)
    telemetry = Telemetry(metrics=MetricsRegistry())
    service = FedMPService(task, devices, _make_config(bench, fleet),
                           telemetry=telemetry, min_workers=fleet)
    box: dict = {}

    def serve():
        try:
            box["history"] = service.run()
        except BaseException as exc:
            box["error"] = exc

    clients = [ServiceClient(service.address) for _ in range(fleet)]
    threads = [threading.Thread(target=serve, daemon=True)]
    threads += [threading.Thread(target=client.run, daemon=True)
                for client in clients]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=1800)
    wall_s = time.perf_counter() - start
    if any(thread.is_alive() for thread in threads):
        service.shutdown()
        raise SystemExit(f"served fleet of {fleet} hung")
    if "error" in box:
        raise box["error"]

    metrics = telemetry.metrics
    wire = {
        kind: _counter_sum(metrics, "wire_bytes_total", kind=kind)
        for kind in ("dispatch", "template", "contribution")
    }
    return {
        "wall_s": round(wall_s, 3),
        "rounds_per_s": round(ROUNDS / wall_s, 3),
        "wire_bytes_per_round": {
            kind: round(value / ROUNDS, 1) for kind, value in wire.items()
        },
        "fleet_counters": dict(service.counters),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON payload to this path")
    args = parser.parse_args()

    bench = make_bench_task("cnn")
    fleets = []
    for fleet in FLEETS:
        serial = measure_serial(bench, fleet)
        served = measure_served(bench, fleet)
        fleets.append({
            "fleet": fleet,
            "serial": serial,
            "served": served,
            "rounds_per_s": served["rounds_per_s"],
            "relative_throughput": round(
                serial["wall_s"] / served["wall_s"], 3),
        })

    payload = {
        "benchmark": "serve_loopback",
        "workload": ("bench CNN/MNIST task, fedmp/r2sp, "
                     f"{ROUNDS} rounds, loopback-socket service with "
                     "one client thread per worker"),
        "fleets": fleets,
        "notes": (
            "relative_throughput = serial wall / served wall on the "
            "same workload; client threads share the GIL with the "
            "service, so this prices the protocol plane (framing, "
            "pull round-trips, roster bookkeeping), not parallelism."
        ),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")

    for entry in fleets:
        if entry["relative_throughput"] < RELATIVE_THROUGHPUT_BAR:
            raise SystemExit(
                f"fleet {entry['fleet']}: served run reached only "
                f"{entry['relative_throughput']}x of serial throughput "
                f"(bar: {RELATIVE_THROUGHPUT_BAR}x)"
            )


if __name__ == "__main__":
    main()
