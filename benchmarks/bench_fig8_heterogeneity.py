"""Fig. 8: completion time under Low/Medium/High heterogeneity.

All five methods race to the target accuracy under the three scenarios
of Section V-E.  The paper's shape: everyone slows down as
heterogeneity grows, FedMP stays fastest, and its advantage over
Syn-FL widens (1.3x Low -> 2.8x Medium -> 4.1x High on CNN/MNIST).
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_speedup, fmt_time, print_table
from repro.experiments.setups import (
    METHOD_LABELS,
    METHOD_ORDER,
    make_bench_task,
    make_devices,
)
from conftest import run_training

SCENARIOS = ("low", "medium", "high")

PAPER_NOTE = (
    "paper (Fig. 8): time-to-target grows with heterogeneity for all "
    "methods; FedMP fastest everywhere, with speedup over Syn-FL "
    "1.3x (Low) -> 2.8x (Medium) -> 4.1x (High) on CNN/MNIST and "
    "3.6/3.0/2.3/2.0x over the baselines on AlexNet at High."
)


def test_fig8_heterogeneity_levels(once):
    bench_task = make_bench_task("cnn")

    def experiment():
        results = {}
        for scenario in SCENARIOS:
            devices = make_devices(scenario)
            results[scenario] = {
                method: run_training(
                    bench_task, method,
                    devices=devices, devices_key=scenario,
                    target_metric=bench_task.target_metric,
                    max_rounds=bench_task.max_rounds + 8,
                )
                for method in METHOD_ORDER
            }
        return results

    results = once(experiment)

    def time_to(scenario, method):
        history = results[scenario][method]
        reached = history.time_to_target(bench_task.target_metric)
        return reached if reached is not None else history.total_time_s

    rows = []
    for scenario in SCENARIOS:
        times = {m: time_to(scenario, m) for m in METHOD_ORDER}
        rows.append(
            [scenario]
            + [fmt_time(times[m]) for m in METHOD_ORDER]
            + [fmt_speedup(times["synfl"], times["fedmp"])]
        )
    print_table(
        f"Fig. 8 -- time to {bench_task.target_metric:.0%} accuracy "
        f"({bench_task.label})",
        ["Scenario"] + [METHOD_LABELS[m] for m in METHOD_ORDER]
        + ["FedMP vs Syn-FL"],
        rows, note=PAPER_NOTE,
    )

    # Syn-FL (no heterogeneity handling) degrades from low to high
    assert time_to("high", "synfl") > time_to("low", "synfl"), rows
    # FedMP beats Syn-FL where heterogeneity gives pruning leverage
    # (medium/high); under the homogeneous 'low' scenario it only needs
    # to stay competitive (the paper's own low-speedup is just 1.3x)
    for scenario in ("medium", "high"):
        assert time_to(scenario, "fedmp") < time_to(scenario, "synfl") * 1.05, rows
    assert time_to("low", "fedmp") <= 1.6 * time_to("low", "synfl"), rows
    # the FedMP advantage does not shrink from low to high
    speedups = {
        s: time_to(s, "synfl") / time_to(s, "fedmp") for s in SCENARIOS
    }
    assert speedups["high"] >= speedups["low"] * 0.8, speedups
