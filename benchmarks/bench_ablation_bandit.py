"""Ablations on the E-UCB design choices (DESIGN.md section 5).

1. **Discount factor lambda** -- the paper fixes lambda = 0.95
   (Section V-A); we sweep it to show the reward-tracking trade-off.
2. **Reward shape** -- Eq. 8's fit-to-capability reward vs the naive
   loss-per-second reward.

Both ablations run FedMP on the CNN task to the target accuracy.
"""

from __future__ import annotations

from repro.experiments.reporting import fmt_time, print_table
from repro.experiments.setups import make_bench_task
from conftest import run_training

LAMBDAS = (0.8, 0.95, 0.995)


def _run_with(bench_task, **bandit_overrides):
    kwargs = dict(bench_task.bandit_kwargs)
    kwargs.update(bandit_overrides)
    history = run_training(
        bench_task, "fedmp", strategy_kwargs=kwargs,
        target_metric=bench_task.target_metric,
        max_rounds=bench_task.max_rounds + 8,
    )
    reached = history.time_to_target(bench_task.target_metric)
    return reached if reached is not None else history.total_time_s


def test_ablation_discount_factor(once):
    bench_task = make_bench_task("cnn")

    def experiment():
        return {lam: _run_with(bench_task, discount=lam) for lam in LAMBDAS}

    times = once(experiment)
    print_table(
        "Ablation -- E-UCB discount factor lambda (CNN, time to target)",
        ["lambda", "Time to target"],
        [[f"{lam}", fmt_time(times[lam])] for lam in LAMBDAS],
        note="paper: lambda = 0.95 (Garivier & Moulines discounted UCB); "
             "all values must stay in the same effectiveness band.",
    )
    # no discount choice catastrophically breaks training
    best = min(times.values())
    assert max(times.values()) <= 4.0 * best, times


def test_ablation_reward_shape(once):
    bench_task = make_bench_task("cnn")

    def experiment():
        return {
            "eq8 (paper)": _run_with(bench_task, reward="eq8"),
            "loss/second": _run_with(bench_task, reward="time"),
        }

    times = once(experiment)
    print_table(
        "Ablation -- E-UCB reward shape (CNN, time to target)",
        ["Reward", "Time to target"],
        [[name, fmt_time(value)] for name, value in times.items()],
        note="Eq. 8 rewards ratios that align each worker's completion "
             "time with the round mean; the naive reward only chases "
             "faster rounds.",
    )
    # both shapes must reach the target; Eq. 8 is competitive
    assert times["eq8 (paper)"] <= times["loss/second"] * 1.5, times
