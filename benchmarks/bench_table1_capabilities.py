"""Table I: qualitative comparison of efficient-FL methods.

Regenerates the capability matrix from the strategy implementations'
own metadata and checks the paper's claims: FedMP is the only method
ticking every column.
"""

from __future__ import annotations

from repro.experiments.reporting import print_table
from repro.fl.strategies import STRATEGIES, capability_table

COLUMNS = [
    "Method",
    "Eff. Comp", "Eff. Comm", "HW Indep",
    "Comp Het", "Comm Het", "Convergence",
]

PAPER_NOTE = (
    "paper (Table I): FedMP is the only method with every column "
    "checked; Jiang et al. (UP-FL) lacks hardware independence; "
    "FlexCom covers communication but not computation; FedProx covers "
    "computation heterogeneity without efficiency gains."
)


def test_table1_capabilities(once):
    def experiment():
        return capability_table()

    rows = once(experiment)
    print_table(
        "Table I -- comparison of methods for efficient FL",
        COLUMNS,
        [[STRATEGIES[name].name] + flags for name, flags in rows],
        note=PAPER_NOTE,
    )

    flags = dict(rows)
    assert flags["fedmp"] == ["yes"] * 6
    for name in ("synfl", "upfl", "fedprox", "flexcom"):
        assert flags[name] != ["yes"] * 6
