"""Shared machinery for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures
at bench scale and prints it next to the paper's reported numbers.
Training runs are cached per pytest session (Table III and Fig. 6 share
runs, for example), and every benchmark body executes exactly once via
``benchmark.pedantic(rounds=1, iterations=1)``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.experiments import run_cached
from repro.experiments.setups import BenchTask, make_devices
from repro.fl.hooks import CommVolumeHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.telemetry import MetricsRegistry, Telemetry, TelemetryHook


def run_training(bench_task: BenchTask, strategy: str, devices=None,
                 devices_key: str = "medium", non_iid_level: float = 0.0,
                 **config_overrides):
    """Run (or fetch from cache) one training experiment.

    The built-in instrumentation hooks are attached inside the factory
    so the per-round ``extras`` (wall time, parameters moved) are baked
    into the cached history records and survive cache hits.  A metrics
    registry rides along too; its p50/p95/p99 summaries are stashed on
    the history as ``telemetry_summary`` so cache hits keep them.
    """
    key_parts = [
        bench_task.key, strategy, devices_key, f"noniid={non_iid_level}",
    ] + [f"{k}={v}" for k, v in sorted(config_overrides.items())]
    key = "|".join(str(part) for part in key_parts)

    def factory():
        nonlocal devices
        if devices is None:
            devices = make_devices("medium")
        task = bench_task.make_task(non_iid_level)
        config = bench_task.make_config(strategy, **config_overrides)
        telemetry = Telemetry(metrics=MetricsRegistry())
        history = run_federated_training(
            task, devices, config,
            hooks=[TimingHook(), CommVolumeHook(),
                   TelemetryHook(telemetry)],
            telemetry=telemetry,
        )
        history.telemetry_summary = telemetry.metrics.to_dict()
        return history

    return run_cached(key, factory)


def comm_volume_params(history) -> float:
    """Total parameters moved (both directions) across a history."""
    return sum(
        record.extras.get("download_params", 0.0)
        + record.extras.get("upload_params", 0.0)
        for record in history.rounds
    )


@pytest.fixture
def once(benchmark):
    """Run the benchmarked experiment exactly once."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
