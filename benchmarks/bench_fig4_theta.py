"""Fig. 4: effect of the pruning granularity theta on training time.

Sweeps E-UCB's granularity on the CNN and AlexNet tasks and reports the
normalised completion time to the target accuracy.  The paper finds
theta in [0.01, 0.05] near-optimal and performance degrading as theta
grows toward 0.25.
"""

from __future__ import annotations

from repro.experiments.reporting import print_table
from repro.experiments.setups import make_bench_task
from conftest import run_training

THETAS = [0.01, 0.05, 0.15, 0.25]
TASKS = ("cnn",)

PAPER_NOTE = (
    "paper (Fig. 4): completion time is flat for theta in [0.01, 0.05] "
    "and increases drastically for theta in (0.05, 0.25]."
)


def _completion_time(task_key: str, theta: float) -> float:
    bench_task = make_bench_task(task_key)
    kwargs = dict(bench_task.bandit_kwargs)
    kwargs["theta"] = theta
    history = run_training(
        bench_task, "fedmp",
        strategy_kwargs=kwargs,
        target_metric=bench_task.target_metric,
        max_rounds=bench_task.max_rounds + 10,
    )
    reached = history.time_to_target(bench_task.target_metric)
    # unreached counts as the full run time (a pessimistic bound)
    return reached if reached is not None else history.total_time_s


def test_fig4_theta_granularity(once):
    def experiment():
        return {
            key: [_completion_time(key, theta) for theta in THETAS]
            for key in TASKS
        }

    results = once(experiment)
    rows = []
    for i, theta in enumerate(THETAS):
        row = [f"theta={theta:.2f}"]
        for key in TASKS:
            normalised = results[key][i] / max(min(results[key]), 1e-9)
            row.append(f"{normalised:.2f}")
        rows.append(row)
    print_table(
        "Fig. 4 -- normalised completion time vs granularity theta",
        ["Granularity"] + [make_bench_task(k).label for k in TASKS],
        rows, note=PAPER_NOTE,
    )

    for key in TASKS:
        times = results[key]
        small_best = min(times[0], times[1])   # theta in {0.01, 0.05}
        # a theta in the paper's recommended band is never beaten by the
        # coarsest granularity by a wide margin
        assert times[-1] >= 0.8 * small_best, (key, times)
