"""Table III: test accuracy of each method within a fixed time budget.

One budget per model (a scaled analogue of the paper's
20000/30000/50000/100000 seconds), five methods, four models.  The
paper's shape: FedMP achieves the highest accuracy within budget on
every model; the baselines cluster below it.
"""

from __future__ import annotations

from repro.experiments.reporting import print_table
from repro.experiments.setups import (
    METHOD_LABELS,
    METHOD_ORDER,
    make_bench_task,
)
from conftest import run_training

MODELS = ("cnn", "alexnet", "vgg19", "resnet50")

PAPER_ROWS = {
    "cnn": ("20000s", "93.83% / 94.31% / 95.82% / 96.21% / 97.17%"),
    "alexnet": ("30000s", "81.59% / 81.74% / 81.78% / 81.91% / 82.34%"),
    "vgg19": ("50000s", "85.04% / 84.93% / 85.15% / 85.33% / 85.66%"),
    "resnet50": ("100000s", "47.15% / 46.43% / 47.55% / 47.37% / 47.85%"),
}


def _histories(model_key: str):
    bench_task = make_bench_task(model_key)
    return {
        method: run_training(bench_task, method, target_metric=None)
        for method in METHOD_ORDER
    }


def _budget_for(histories) -> float:
    """Mid-run budget: where Syn-FL is ~60% through its total time, so
    methods still differ (everything saturates at the far end)."""
    return 0.6 * histories["synfl"].total_time_s


def test_table3_accuracy_within_budget(once):
    def experiment():
        table = {}
        for model_key in MODELS:
            histories = _histories(model_key)
            budget = _budget_for(histories)
            table[model_key] = (
                budget,
                {
                    method: histories[method].metric_at_time(budget) or 0.0
                    for method in METHOD_ORDER
                },
            )
        return table

    table = once(experiment)
    rows = []
    for model_key in MODELS:
        budget, accuracies = table[model_key]
        rows.append(
            [make_bench_task(model_key).label, f"{budget:.0f}s"]
            + [f"{accuracies[m]:.3f}" for m in METHOD_ORDER]
        )
    print_table(
        "Table III -- accuracy within the time budget",
        ["Model", "Budget"] + [METHOD_LABELS[m] for m in METHOD_ORDER],
        rows,
        note="paper (Table III, budgets / Syn-FL..FedMP): "
             + "; ".join(f"{k}: {v[0]} -> {v[1]}"
                         for k, v in PAPER_ROWS.items()),
    )

    wins = 0
    for model_key in MODELS:
        _, accuracies = table[model_key]
        best = max(accuracies.values())
        if accuracies["fedmp"] >= best - 0.02:
            wins += 1
        # on the wide models FedMP at least matches the no-pruning
        # baseline within the budget; the narrow VGG/ResNet substitutes
        # get a looser bound (EXPERIMENTS.md, deviation 1)
        slack = 0.05 if model_key in ("cnn", "alexnet") else 0.30
        assert accuracies["fedmp"] >= accuracies["synfl"] - slack, (
            model_key, accuracies,
        )
    # FedMP wins (or near-ties) the budgeted comparison on at least half
    assert wins >= 2, table
