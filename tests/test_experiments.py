"""Experiment plumbing: setups, reporting, result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import clear_cache, run_cached
from repro.experiments.reporting import (
    fmt_speedup,
    fmt_time,
    print_series,
    print_table,
)
from repro.experiments.setups import (
    BENCH_TASKS,
    METHOD_ORDER,
    bench_scale,
    make_bench_task,
    make_devices,
)


def test_bench_tasks_cover_all_paper_workloads():
    assert set(BENCH_TASKS) == {"cnn", "alexnet", "vgg19", "resnet50", "lstm"}


def test_method_order_matches_paper_columns():
    assert METHOD_ORDER == ["synfl", "upfl", "fedprox", "flexcom", "fedmp"]


def test_make_bench_task_unknown():
    with pytest.raises(KeyError):
        make_bench_task("transformer")


def test_bench_task_builds_runnable_pieces(rng):
    bench_task = make_bench_task("cnn")
    task = bench_task.make_task()
    model = task.build_model(rng)
    assert model.num_parameters() > 0
    config = bench_task.make_config("fedmp", max_rounds=3)
    assert config.max_rounds == 3
    assert config.strategy == "fedmp"
    assert config.strategy_kwargs  # bandit kwargs applied


def test_bench_task_bandit_kwargs_only_for_bandit_strategies():
    bench_task = make_bench_task("cnn")
    assert bench_task.make_config("synfl").strategy_kwargs == {}
    assert "max_ratio" in bench_task.make_config("upfl").strategy_kwargs


def test_bench_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
    assert bench_scale() == 2.5
    bench_task = make_bench_task("cnn")
    assert bench_task.make_config("synfl").max_rounds == round(
        bench_task.max_rounds * 2.5
    )


def test_make_devices_count_composition():
    devices = make_devices(seed=1, count=20)
    assert len(devices) == 20
    clusters = sorted(d.cluster for d in devices)
    assert clusters.count("A") == 10
    assert clusters.count("B") == 10


def test_run_cached_computes_once():
    clear_cache()
    calls = []

    def factory():
        calls.append(1)
        return 42

    assert run_cached("k", factory) == 42
    assert run_cached("k", factory) == 42
    assert len(calls) == 1
    clear_cache()


def test_print_table_and_series_smoke(capsys):
    print_table("Title", ["A", "B"], [["1", "2"], ["3", "4"]], note="n")
    print_series("S", {"m": [(1.0, 0.5), (2.0, 0.7)]})
    out = capsys.readouterr().out
    assert "Title" in out
    assert "(1, 0.500)" in out


def test_formatters():
    assert fmt_time(12.3) == "12s"
    assert fmt_time(None) == "--"
    assert fmt_speedup(10.0, 5.0) == "2.00x"
    assert fmt_speedup(None, 5.0) == "--"
    assert fmt_speedup(10.0, None) == "--"
